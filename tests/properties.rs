//! Property-based tests over randomly generated workloads and databases.
//!
//! Seeded and dependency-free: each property runs a fixed number of cases, and case `i`
//! derives every shape parameter from an `StdRng` seeded by a per-property constant
//! mixed with `i`. Every run therefore explores the same reproducible family of random
//! workloads, and a failure report names the property and case (hence the exact seeds)
//! that produced it.

use bea::core::bounded::{analyze_cq, BoundedConfig, BoundedVerdict};
use bea::core::cover;
use bea::core::envelope::{lower_envelope_cq, upper_envelope_cq, EnvelopeConfig};
use bea::core::plan::{
    bounded_plan, bounded_plan_for_report, bounded_plan_ucq, lower_plan_with, LowerOptions,
};
use bea::core::reason::{instance::eval_cq as eval_cq_small, instance::SmallInstance};
use bea::core::specialize::{generic_template, instantiate, specialize_cq, SpecializeConfig};
use bea::engine::{
    eval_cq, eval_ucq, execute_physical_with_options, execute_plan, execute_plan_on,
    execute_plan_with_options, ExecOptions,
};
use bea::storage::{
    discover_constraints, shards_from_env, DiscoveryOptions, IndexedDatabase, ShardedDatabase,
    Store,
};
use bea::workload::{accidents, ecommerce, graph, querygen};
use bea_core::access::AccessSchema;
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::query::ucq::UnionQuery;
use bea_core::reason::ReasonConfig;
use bea_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of randomized cases per property (mirrors the proptest config this suite
/// replaced).
const CASES: u64 = 12;

/// Run `body` for `CASES` deterministic cases, attributing any panic to its case.
fn run_cases(property: &str, tag: u64, mut body: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let seed = tag ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = outcome {
            eprintln!("property `{property}` failed at case {case} (rng seed {seed:#x})");
            std::panic::resume_unwind(panic);
        }
    }
}

/// Like [`run_cases`], but `body` reports how many interesting instances it exercised;
/// the property must not be vacuous across the whole run (the seeds are fixed, so this
/// is deterministic).
fn run_cases_counting(property: &str, tag: u64, mut body: impl FnMut(&mut StdRng) -> usize) {
    let mut exercised = 0;
    run_cases(property, tag, |rng| {
        exercised += body(rng);
    });
    assert!(
        exercised > 0,
        "property `{property}` never exercised a covered query — generator or coverage broke"
    );
}

/// A small accidents database plus its access schema, parameterized by seed and size.
fn accidents_fixture(seed: u64, days: u32) -> (bea::storage::Database, AccessSchema) {
    let catalog = accidents::catalog();
    let schema = accidents::access_schema(&catalog);
    let db = accidents::generate(&accidents::AccidentsConfig {
        num_days: days,
        avg_accidents_per_day: 15,
        avg_casualties_per_accident: 2,
        num_districts: 5,
        seed,
    })
    .expect("generation succeeds");
    (db, schema)
}

/// The core differential property shared by the three scenario families: for every
/// covered query of a random workload over `db`, the **streaming** bounded executor
/// (forced single-threaded), the **parallel** streaming executor (4 worker threads),
/// the **materialized** bounded executor, the **sharded** streaming executor (the same
/// plan fanned out over a partitioned store — `BEA_SHARDS` shards, at least 2) and the
/// **naive** baseline compute exactly the same answer; the bounded strategies read
/// exactly the same data (boundedness is a property of the plan — not of the execution
/// strategy, the thread count, or the shard count); nothing fetches more than the
/// statically derived bound (Theorem 3.11, constructive direction); and the streaming
/// pipeline's peak row residency never exceeds the materialized executor's.
fn assert_bounded_plans_agree_with_naive(
    schema: &AccessSchema,
    db: bea::storage::Database,
    workload: &[ConjunctiveQuery],
) -> usize {
    // At least 2 shards so the sharded leg always exercises real fan-out; the CI
    // matrix raises it through BEA_SHARDS.
    let shards = shards_from_env().max(2);
    let sharded = ShardedDatabase::build(db.clone(), schema.clone(), shards).unwrap();
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());
    assert!(sharded.satisfies_schema());

    let mut exercised = 0;
    for query in workload {
        let report = cover::coverage(query, schema);
        if !report.is_covered() {
            continue;
        }
        exercised += 1;
        let plan = bounded_plan_for_report(query, schema, &report).unwrap();
        assert!(plan.is_bounded_under(schema));
        let (bounded, stats) =
            execute_plan_with_options(&plan, &indexed, &ExecOptions::new().with_threads(1))
                .unwrap();
        let (parallel, parallel_stats) =
            execute_plan_with_options(&plan, &indexed, &ExecOptions::new().with_threads(4))
                .unwrap();
        let (materialized, materialized_stats) =
            execute_plan_with_options(&plan, &indexed, &ExecOptions::materialized()).unwrap();
        let (sharded_out, sharded_stats) = execute_plan_on(
            &plan,
            Store::Sharded(&sharded),
            &ExecOptions::new().with_threads(1),
        )
        .unwrap();
        let (naive, _) = eval_cq(query, indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive), "mismatch for {query}");
        assert!(parallel.same_rows(&naive), "parallel mismatch for {query}");
        assert!(
            materialized.same_rows(&naive),
            "materialized mismatch for {query}"
        );
        assert!(
            sharded_out.same_rows(&naive),
            "sharded mismatch for {query} at {shards} shards"
        );
        assert!(
            stats.same_data_access(&sharded_stats),
            "shard count changed the data access for {query}: {stats} vs {sharded_stats}"
        );
        assert_eq!(
            stats.values_cloned, sharded_stats.values_cloned,
            "shard count changed the copy traffic for {query}"
        );
        assert_eq!(
            stats.allocs_per_probe, sharded_stats.allocs_per_probe,
            "shard count changed the probe-path buffer demand for {query}"
        );
        // Boundedness per shard: the partitions serve exactly the plan's fetch total.
        assert_eq!(
            sharded_stats.rows_fetched_by_shard.values().sum::<u64>(),
            sharded_stats.tuples_fetched,
            "per-shard fetch counts drifted from the total for {query}"
        );
        assert!(
            stats.same_data_access(&materialized_stats),
            "streaming and materialized executions read different data for {query}: \
             {stats} vs {materialized_stats}"
        );
        assert!(
            stats.same_data_access(&parallel_stats),
            "thread count changed the data access for {query}: {stats} vs {parallel_stats}"
        );
        assert!(
            stats.peak_rows_resident <= materialized_stats.peak_rows_resident,
            "streaming held more rows ({}) than the materialized executor ({}) for {query}",
            stats.peak_rows_resident,
            materialized_stats.peak_rows_resident
        );
        // Copy traffic: whenever the plan moves a nontrivial amount of data, the
        // columnar pipeline moves no more values than the row-at-a-time executor (on
        // near-empty results the columnar path's fixed costs — key gathers, cache
        // bookkeeping — can exceed the row path's handful of clones by single digits,
        // which is noise, not traffic; the ≥2× drop on real fan-out is asserted by
        // `columnar_pipeline_halves_copy_traffic_on_target_scenarios`). The traffic is
        // a function of the plan, not of the schedule.
        if materialized_stats.values_cloned >= 100 {
            assert!(
                stats.values_cloned <= materialized_stats.values_cloned,
                "columnar pipeline cloned more values ({}) than the row path ({}) for {query}",
                stats.values_cloned,
                materialized_stats.values_cloned
            );
        }
        assert_eq!(
            stats.values_cloned, parallel_stats.values_cloned,
            "thread count changed the copy traffic for {query}"
        );
        // Probe-path buffer demand is deterministic across the streaming legs too
        // (the materialized executor is excluded: it has no probe path and reports 0).
        assert_eq!(
            stats.allocs_per_probe, parallel_stats.allocs_per_probe,
            "thread count changed the probe-path buffer demand for {query}"
        );
        let cost = plan.cost(schema, indexed.size());
        assert!(
            stats.tuples_fetched <= cost.max_fetched_tuples,
            "plan for {query} fetched {} tuples, above its a-priori bound {}",
            stats.tuples_fetched,
            cost.max_fetched_tuples
        );
        assert!(bounded.len() as u64 <= report.output_bound(schema, indexed.size()).unwrap());
    }
    exercised
}

#[test]
fn covered_plans_agree_with_naive_evaluation() {
    run_cases_counting("covered_plans_agree_with_naive_evaluation", 0xACC1, |rng| {
        let seed = rng.gen_range(0u64..1_000);
        let qseed = rng.gen_range(0u64..1_000);
        let (db, schema) = accidents_fixture(seed, 3);
        let catalog = accidents::catalog();
        let workload = querygen::random_workload_from_db(
            &catalog,
            Some(&schema),
            &db,
            12,
            &querygen::QueryGenConfig {
                seed: qseed,
                ..querygen::QueryGenConfig::default()
            },
        )
        .unwrap();
        assert_bounded_plans_agree_with_naive(&schema, db, &workload)
    });
}

#[test]
fn covered_plans_agree_with_naive_evaluation_on_ecommerce() {
    run_cases_counting(
        "covered_plans_agree_with_naive_evaluation_on_ecommerce",
        0xECC0,
        |rng| {
            let seed = rng.gen_range(0u64..1_000);
            let qseed = rng.gen_range(0u64..1_000);
            let catalog = ecommerce::catalog();
            let schema = ecommerce::access_schema(&catalog);
            let db = ecommerce::generate(&ecommerce::EcommerceConfig {
                num_customers: 60,
                num_categories: 5,
                products_per_category: 12,
                avg_orders_per_customer: 6,
                num_cities: 4,
                seed,
            })
            .unwrap();
            let workload = querygen::random_workload_from_db(
                &catalog,
                Some(&schema),
                &db,
                12,
                &querygen::QueryGenConfig {
                    seed: qseed,
                    ..querygen::QueryGenConfig::default()
                },
            )
            .unwrap();
            assert_bounded_plans_agree_with_naive(&schema, db, &workload)
        },
    );
}

#[test]
fn covered_plans_agree_with_naive_evaluation_on_graph() {
    run_cases_counting(
        "covered_plans_agree_with_naive_evaluation_on_graph",
        0x64AF,
        |rng| {
            let seed = rng.gen_range(0u64..1_000);
            let qseed = rng.gen_range(0u64..1_000);
            let catalog = graph::catalog();
            let config = graph::GraphConfig {
                num_persons: 120,
                max_degree: 10,
                avg_degree: 4,
                num_cities: 3,
                num_tags: 5,
                max_likes: 3,
                seed,
            };
            let schema = graph::access_schema(&catalog, &config);
            let db = graph::generate(&config).unwrap();
            let workload = querygen::random_workload_from_db(
                &catalog,
                Some(&schema),
                &db,
                12,
                &querygen::QueryGenConfig {
                    seed: qseed,
                    ..querygen::QueryGenConfig::default()
                },
            )
            .unwrap();
            assert_bounded_plans_agree_with_naive(&schema, db, &workload)
        },
    );
}

/// The columnar pipeline's acceptance property (PR 4): on the scenarios with real
/// fan-out — the accidents Q0 plan and the multi-pipeline batch of anchored Q0
/// branches — the copy traffic (`values_cloned`) drops at least 2× against the
/// row-at-a-time executor, at 1 *and* 4 worker threads, while the answers, the data
/// access and the residency guarantees are untouched.
#[test]
fn columnar_pipeline_halves_copy_traffic_on_target_scenarios() {
    use bea::bench::scenarios::{AccidentsScenario, ParallelScenario};

    let accidents = AccidentsScenario::with_total_tuples(20_000, 42).unwrap();
    let batch = ParallelScenario::with_branches(6, 20_000, 42).unwrap();

    // (plan, database, scenario name) for both row-vs-columnar comparisons.
    let cases: [(&bea::core::plan::QueryPlan, &IndexedDatabase, &str); 2] = [
        (&accidents.plan, &accidents.indexed, "accidents q0"),
        (&batch.plan, &batch.indexed, "parallel q0 batch"),
    ];
    for (plan, indexed, name) in cases {
        let (row_table, row_stats) =
            execute_plan_with_options(plan, indexed, &ExecOptions::materialized()).unwrap();
        for threads in [1usize, 4] {
            let (columnar_table, columnar_stats) =
                execute_plan_with_options(plan, indexed, &ExecOptions::new().with_threads(threads))
                    .unwrap();
            assert!(
                columnar_table.same_rows(&row_table),
                "{name}: executors disagree at {threads} threads"
            );
            assert!(
                columnar_stats.same_data_access(&row_stats),
                "{name}: executors read different data at {threads} threads"
            );
            // Residency: schedule-independent comparison only — the 4-thread peak
            // legitimately grows with pipeline overlap (it stays exact via the shared
            // ledger), so "no worse than the row path" is asserted where it is an
            // invariant, at 1 thread.
            if threads == 1 {
                assert!(
                    columnar_stats.peak_rows_resident <= row_stats.peak_rows_resident,
                    "{name}: columnar residency regressed at {threads} threads"
                );
            }
            assert!(
                columnar_stats.values_cloned * 2 <= row_stats.values_cloned,
                "{name} at {threads} threads: columnar cloned {} values, row path {} — \
                 less than the required 2× drop",
                columnar_stats.values_cloned,
                row_stats.values_cloned
            );
        }
    }
}

/// The zero-allocation anchored fast path (PR 6): a probe loop that keeps hitting one
/// cached `KeyedLookupOp` key must allocate nothing per probe after warm-up. The plan
/// fetches the `m` R-rows of one anchor (all sharing join key 7), then joins each
/// against S through the fused keyed-lookup pattern — so the lookup cache warms on the
/// first probe and every subsequent probe must be served without demanding a single
/// buffer. `allocs_per_probe` counts buffer-demand events deterministically, hence the
/// assertable form: the *total* at `m = 512` equals the total at `m = 1` (zero
/// marginal allocations per warmed probe), at threads ∈ {1, 4} × shards ∈ {1, 4}; and
/// the pooling machinery changes neither the rows nor any data-access counter.
#[test]
fn warmed_anchored_probes_allocate_nothing() {
    use bea::core::plan::{PlanBuilder, Predicate};
    use bea_core::access::AccessConstraint;
    use bea_core::schema::Catalog;

    // R(a, b, c) with constraint a → (b, c); S(k, v) with constraint k → v.
    let catalog = {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b", "c"]).unwrap();
        c.declare("S", ["k", "v"]).unwrap();
        c
    };
    let schema = AccessSchema::from_constraints([
        AccessConstraint::new(&catalog, "R", &["a"], &["b", "c"], 4096).unwrap(),
        AccessConstraint::new(&catalog, "S", &["k"], &["v"], 10).unwrap(),
    ]);

    // fetch the anchor's R-rows, then the fused product → select → project becomes
    // one KeyedLookup on S (key = R.b) with a fused projection — the anchored probe.
    let plan = {
        let mut b = PlanBuilder::new();
        let anchor = b.constant(Value::int(1), "x");
        let r = b.fetch(
            anchor,
            vec![0],
            "R",
            vec![0],
            vec![1, 2],
            0,
            vec!["a".into(), "b".into(), "c".into()],
        );
        let s = b.fetch(
            r,
            vec![1],
            "S",
            vec![0],
            vec![1],
            1,
            vec!["k".into(), "v".into()],
        );
        let joined = b.product(r, s);
        let selected = b.select(joined, vec![Predicate::ColEqCol(1, 3)]);
        // Keep the distinct c column: the m output rows must survive set semantics.
        let out = b.project(selected, vec![2, 4]);
        b.finish("AnchoredProbeLoop", out).unwrap()
    };

    let database_with_rows = |m: i64| {
        let mut db = bea::storage::Database::new(catalog.clone());
        db.extend(
            "R",
            (0..m).map(|i| vec![Value::int(1), Value::int(7), Value::int(i)]),
        )
        .unwrap();
        db.extend("S", [vec![Value::int(7), Value::int(100)]])
            .unwrap();
        db
    };

    // Every (threads, shards) corner must report the same per-size totals.
    let mut totals: Vec<(u64, u64)> = Vec::new(); // (allocs at m = 1, allocs at m = 512)
    for shards in [1u32, 4] {
        for threads in [1usize, 4] {
            let options = ExecOptions::new().with_threads(threads);
            let mut per_size = Vec::new();
            for m in [1i64, 512] {
                let db = database_with_rows(m);
                let indexed = IndexedDatabase::build(db.clone(), schema.clone()).unwrap();
                let (table, stats) = if shards == 1 {
                    execute_plan_with_options(&plan, &indexed, &options).unwrap()
                } else {
                    let sharded = ShardedDatabase::build(db, schema.clone(), shards).unwrap();
                    execute_plan_on(&plan, Store::Sharded(&sharded), &options).unwrap()
                };
                // Pooling must be invisible to everything but the allocation counter:
                // the answers and the data-access counters match the unpooled
                // materialized executor exactly.
                let (reference, reference_stats) =
                    execute_plan_with_options(&plan, &indexed, &ExecOptions::materialized())
                        .unwrap();
                assert!(
                    table.same_rows(&reference),
                    "pooled probe loop changed the answers at m = {m}, \
                     {threads} threads, {shards} shards"
                );
                assert_eq!(table.len() as i64, m, "one output row per R-row");
                assert!(
                    stats.same_data_access(&reference_stats),
                    "pooled probe loop changed the data access at m = {m}: \
                     {stats} vs {reference_stats}"
                );
                assert!(stats.allocs_per_probe > 0, "cold probes must be charged");
                per_size.push(stats.allocs_per_probe);
            }
            totals.push((per_size[0], per_size[1]));
        }
    }
    for (allocs_warm_start, allocs_after_512_probes) in &totals {
        assert_eq!(
            allocs_warm_start, allocs_after_512_probes,
            "warmed anchored probes demanded buffers: 512-probe total {} exceeds the \
             warm-up-only total {} — the fast path allocated per probe",
            allocs_after_512_probes, allocs_warm_start
        );
    }
    // Thread and shard counts never change the totals either.
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "allocation totals varied across the thread × shard matrix: {totals:?}"
    );
}

/// Morsel-size invariance (PR 7): splitting a heavy pipeline's probe stream into
/// morsels is invisible to everything but wall-clock time. A two-hop lookup chain
/// whose first hop fans one anchor out to `m` rows (several source batches) is run at
/// every corner of morsel size ∈ {1, auto, never-split} × threads ∈ {1, 4} × shards
/// ∈ {1, 4}; every corner must produce the same rows, the same data access
/// (`same_data_access`), the same copy traffic (`values_cloned`) and the same
/// probe-path buffer demand (`allocs_per_probe` — warmed probes stay free at every
/// morsel size, the satellite assertion riding on PR 6's fast path). Whole source
/// batches are never cut across morsels, which is what makes every per-batch counter
/// charge partition-invariant.
#[test]
fn morsel_size_never_changes_what_is_computed() {
    use bea::core::plan::{PlanBuilder, Predicate};
    use bea_core::access::AccessConstraint;
    use bea_core::schema::Catalog;

    let catalog = {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["k", "v"]).unwrap();
        c
    };
    let schema = AccessSchema::from_constraints([
        AccessConstraint::new(&catalog, "R", &["a"], &["b"], 2048u64).unwrap(),
        AccessConstraint::new(&catalog, "S", &["k"], &["v"], 1u64).unwrap(),
    ]);

    // One anchor key fans out to 1400 R-rows with *distinct* join keys — the first
    // hop materializes in several batches (the split's morsel source) and the second
    // hop genuinely fills 1400 distinct lookup-cache keys.
    const FAN_OUT: i64 = 1400;
    let mut db = bea::storage::Database::new(catalog.clone());
    db.extend(
        "R",
        (0..FAN_OUT).map(|i| vec![Value::int(1), Value::int(10_000 + i)]),
    )
    .unwrap();
    db.extend(
        "S",
        (0..FAN_OUT).map(|i| vec![Value::int(10_000 + i), Value::int(i)]),
    )
    .unwrap();

    let plan = {
        let mut b = PlanBuilder::new();
        let anchor = b.constant(Value::int(1), "x");
        let r = b.fetch(
            anchor,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let s = b.fetch(
            r,
            vec![1],
            "S",
            vec![0],
            vec![1],
            1,
            vec!["k".into(), "v".into()],
        );
        let joined = b.product(r, s);
        let selected = b.select(joined, vec![Predicate::ColEqCol(1, 2)]);
        let out = b.project(selected, vec![1, 3]);
        b.finish("MorselChain", out).unwrap()
    };

    // Not vacuous: with exchange points the chain lowers to a pipeline the scheduler
    // may split (a morsel-splittable sink over a materialized source).
    let physical = lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true))
        .expect("chain lowers");
    assert!(
        physical
            .pipeline_dag()
            .pipelines()
            .iter()
            .any(|p| p.morsel_source.is_some()),
        "the chain must lower to a morsel-splittable pipeline"
    );

    let indexed = IndexedDatabase::build(db.clone(), schema.clone()).unwrap();
    let (baseline, baseline_stats) =
        execute_plan_with_options(&plan, &indexed, &ExecOptions::new().with_threads(1)).unwrap();
    assert_eq!(baseline.len() as i64, FAN_OUT);

    for shards in [1u32, 4] {
        let sharded = (shards > 1)
            .then(|| ShardedDatabase::build(db.clone(), schema.clone(), shards).unwrap());
        for threads in [1usize, 4] {
            // 1 = one morsel per source batch, 0 = the resolved default,
            // usize::MAX = never split; all must be indistinguishable.
            for morsel_size in [1usize, 0, usize::MAX] {
                let options = ExecOptions::new()
                    .with_threads(threads)
                    .with_morsel_size(morsel_size);
                let (table, stats) = match &sharded {
                    Some(store) => execute_plan_on(&plan, Store::Sharded(store), &options).unwrap(),
                    None => execute_plan_with_options(&plan, &indexed, &options).unwrap(),
                };
                let corner =
                    format!("morsel size {morsel_size} / {threads} threads / {shards} shards");
                assert!(table.same_rows(&baseline), "rows changed at {corner}");
                assert!(
                    stats.same_data_access(&baseline_stats),
                    "data access changed at {corner}: {stats} vs {baseline_stats}"
                );
                assert_eq!(
                    stats.values_cloned, baseline_stats.values_cloned,
                    "copy traffic changed at {corner}"
                );
                assert_eq!(
                    stats.allocs_per_probe, baseline_stats.allocs_per_probe,
                    "probe-path buffer demand changed at {corner}"
                );
            }
        }
    }
}

/// Shard-count invariance: the same covered queries executed against partitioned
/// stores with shards ∈ {1, 2, 8}, at threads ∈ {1, 4}, produce identical rows,
/// identical data access (`same_data_access`) and identical copy traffic
/// (`values_cloned`) — partitioning the constraint indexes relocates the bounded work
/// across shards (the per-shard counts always sum to the unchanged total) without
/// altering what is computed, read or moved. Shards = 1 is additionally pinned to the
/// unsharded `IndexedDatabase` baseline, closing the "shard 1 ≡ today's store" loop.
#[test]
fn sharded_execution_is_invariant_across_shard_counts() {
    run_cases_counting(
        "sharded_execution_is_invariant_across_shard_counts",
        0x5AAD,
        |rng| {
            let seed = rng.gen_range(0u64..1_000);
            let qseed = rng.gen_range(0u64..1_000);
            let (db, schema) = accidents_fixture(seed, 2);
            let catalog = accidents::catalog();
            let workload = querygen::random_workload_from_db(
                &catalog,
                Some(&schema),
                &db,
                8,
                &querygen::QueryGenConfig {
                    seed: qseed,
                    ..querygen::QueryGenConfig::default()
                },
            )
            .unwrap();
            let stores: Vec<ShardedDatabase> = [1u32, 2, 8]
                .into_iter()
                .map(|shards| ShardedDatabase::build(db.clone(), schema.clone(), shards).unwrap())
                .collect();
            let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();

            let mut exercised = 0;
            for query in &workload {
                if !cover::is_covered(query, &schema) {
                    continue;
                }
                exercised += 1;
                let plan = bounded_plan(query, &schema).unwrap();
                let (baseline, baseline_stats) =
                    execute_plan_with_options(&plan, &indexed, &ExecOptions::new().with_threads(1))
                        .unwrap();
                for sharded in &stores {
                    for threads in [1usize, 4] {
                        let (table, stats) = execute_plan_on(
                            &plan,
                            Store::Sharded(sharded),
                            &ExecOptions::new().with_threads(threads),
                        )
                        .unwrap();
                        let shards = sharded.shard_count();
                        assert!(
                            table.same_rows(&baseline),
                            "rows changed at {shards} shards / {threads} threads for {query}"
                        );
                        assert!(
                            stats.same_data_access(&baseline_stats),
                            "data access changed at {shards} shards / {threads} threads \
                             for {query}: {stats} vs {baseline_stats}"
                        );
                        assert_eq!(
                            stats.values_cloned, baseline_stats.values_cloned,
                            "copy traffic changed at {shards} shards / {threads} threads \
                             for {query}"
                        );
                        assert_eq!(
                            stats.rows_fetched_by_shard.values().sum::<u64>(),
                            stats.tuples_fetched,
                            "per-shard counts drifted from the total at {shards} shards \
                             for {query}"
                        );
                        assert!(stats
                            .rows_fetched_by_shard
                            .keys()
                            .all(|&shard| shard < shards));
                    }
                }
            }
            exercised
        },
    );
}

/// Parallel pipeline execution is deterministic: on a genuinely multi-pipeline plan (a
/// union of anchored Q0 branches, lowered with exchange points), the same seed at
/// threads ∈ {1, 2, 4} produces identical output tables — rows *and* row order — and
/// identical data-access statistics, and agrees with the naive UCQ baseline. Residency
/// may legitimately differ with the schedule (overlap), which is why it is excluded
/// from `same_data_access`.
#[test]
fn parallel_execution_is_deterministic_across_thread_counts() {
    run_cases(
        "parallel_execution_is_deterministic_across_thread_counts",
        0x9A7A,
        |rng| {
            let seed = rng.gen_range(0u64..1_000);
            let (db, schema) = accidents_fixture(seed, 4);
            let catalog = accidents::catalog();
            let branches: Vec<ConjunctiveQuery> = (0..3)
                .map(|day| {
                    accidents::q0(
                        &catalog,
                        &accidents::district_value(day % 5),
                        &accidents::date_value(day),
                    )
                    .unwrap()
                })
                .collect();
            let union = UnionQuery::from_branches("Q0union", branches).unwrap();
            let plan = bounded_plan_ucq(&union, &schema, &ReasonConfig::default()).unwrap();
            let physical =
                lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true))
                    .unwrap();
            assert!(
                physical.pipeline_dag().len() >= 3,
                "exchange lowering should cut the union into independent pipelines"
            );
            let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();

            let runs: Vec<_> = [1usize, 2, 4]
                .into_iter()
                .map(|threads| {
                    execute_physical_with_options(
                        &physical,
                        &indexed,
                        &ExecOptions::new().with_threads(threads),
                    )
                    .unwrap()
                })
                .collect();
            let (base_table, base_stats) = &runs[0];
            for (table, stats) in &runs[1..] {
                assert_eq!(base_table.columns(), table.columns());
                assert_eq!(
                    base_table.rows(),
                    table.rows(),
                    "thread count changed the output (or its order)"
                );
                assert!(
                    base_stats.same_data_access(stats),
                    "thread count changed the data access: {base_stats} vs {stats}"
                );
            }
            let (naive, _) = eval_ucq(&union, indexed.database()).unwrap();
            assert!(base_table.same_rows(&naive), "mismatch against naive UCQ");
        },
    );
}

/// The multi-query session (PR 8) is a scheduling change, not a semantic one: N
/// covered queries submitted *concurrently* from N client threads against one shared
/// sharded store return exactly the rows — and exactly the per-query data access,
/// copy traffic and probe-path buffer demand — of serial [`execute_plan_on`] runs,
/// so the per-query stats stay additive across the batch. With an aggregate fetch
/// budget set, admission is deterministic: the rejected set is exactly the queries
/// whose static fetch bound exceeds the budget (a property of the plan, not of the
/// load or the submission interleaving), every accepted query still matches its
/// serial run, and the admitted bounds' high-water mark never exceeds the budget.
/// Thread and shard counts come from the environment, so the CI matrix drives all
/// four `BEA_THREADS` × `BEA_SHARDS` corners through this property.
#[test]
fn concurrent_sessions_match_serial_execution_and_reject_deterministically() {
    use bea::engine::{Rejection, Session, SessionConfig, SharedStore, SubmitError};

    run_cases_counting(
        "concurrent_sessions_match_serial_execution_and_reject_deterministically",
        0xC0AC,
        |rng| {
            let seed = rng.gen_range(0u64..1_000);
            let qseed = rng.gen_range(0u64..1_000);
            let (db, schema) = accidents_fixture(seed, 3);
            let catalog = accidents::catalog();
            let workload = querygen::random_workload_from_db(
                &catalog,
                Some(&schema),
                &db,
                10,
                &querygen::QueryGenConfig {
                    seed: qseed,
                    ..querygen::QueryGenConfig::default()
                },
            )
            .unwrap();
            let shards = shards_from_env().max(2);
            let sharded = ShardedDatabase::build(db, schema.clone(), shards).unwrap();
            let store = SharedStore::from(sharded);

            let plans: Vec<_> = workload
                .iter()
                .filter(|query| cover::is_covered(query, &schema))
                .map(|query| bounded_plan(query, &schema).unwrap())
                .collect();
            if plans.is_empty() {
                return 0;
            }
            let db_size = store.store().size();
            let bounds: Vec<u64> = plans
                .iter()
                .map(|plan| plan.cost(&schema, db_size).max_fetched_tuples)
                .collect();

            // Serial baseline: each plan alone, same store, same env-resolved options.
            let serial: Vec<_> = plans
                .iter()
                .map(|plan| execute_plan_on(plan, store.store(), &ExecOptions::new()).unwrap())
                .collect();

            // Leg 1 — no budget: everything admitted, all queries in flight at once
            // from one submitter thread each, interleaving in the shared job queue.
            let session = Session::new(store.clone(), SessionConfig::new());
            let concurrent: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = plans
                    .iter()
                    .map(|plan| {
                        let session = &session;
                        scope.spawn(move || {
                            let handle = session.submit(plan).expect("no budget, no veto");
                            handle.wait().expect("healthy query")
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("submitter thread"))
                    .collect()
            });
            for (i, ((table, stats), (serial_table, serial_stats))) in
                concurrent.iter().zip(&serial).enumerate()
            {
                let query = plans[i].query_name();
                assert_eq!(
                    table.rows(),
                    serial_table.rows(),
                    "concurrent admission changed the output (or its order) for {query}"
                );
                assert!(
                    stats.same_data_access(serial_stats),
                    "concurrent admission changed the data access for {query}: \
                     {stats} vs {serial_stats}"
                );
                assert_eq!(
                    stats.values_cloned, serial_stats.values_cloned,
                    "concurrent admission changed the copy traffic for {query}"
                );
                assert_eq!(
                    stats.allocs_per_probe, serial_stats.allocs_per_probe,
                    "concurrent admission changed the probe-path buffer demand for {query}"
                );
            }
            // Per-query equality makes the batch totals additive — the property the
            // admission report's aggregate counters rely on.
            assert_eq!(
                concurrent
                    .iter()
                    .map(|(_, s)| s.tuples_fetched)
                    .sum::<u64>(),
                serial.iter().map(|(_, s)| s.tuples_fetched).sum::<u64>(),
            );
            let report = session.admission_stats();
            assert_eq!(report.submitted, plans.len() as u64);
            assert_eq!(report.completed, plans.len() as u64);
            assert_eq!((report.rejected, report.failed), (0, 0));
            session.shutdown();

            // Leg 2 — budget = the smallest bound (at least 1: a zero config budget
            // means "unlimited"): the rejected set is exactly the queries priced
            // above it, independent of submission interleaving.
            let budget = (*bounds.iter().min().unwrap()).max(1);
            let session = Session::new(
                store.clone(),
                SessionConfig::new().with_fetch_budget(budget),
            );
            let outcomes: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = plans
                    .iter()
                    .enumerate()
                    .map(|(i, plan)| {
                        let session = &session;
                        let bounds = &bounds;
                        scope.spawn(move || match session.submit(plan) {
                            Ok(handle) => {
                                assert_eq!(
                                    handle.ticket().fetch_bound,
                                    bounds[i],
                                    "the ticket prices the plan's static cost"
                                );
                                Ok(handle.wait().expect("admitted query"))
                            }
                            Err(SubmitError::Rejected { ticket, rejection }) => {
                                assert_eq!(ticket.fetch_bound, bounds[i]);
                                match rejection {
                                    Rejection::FetchBound { bound, budget: b } => {
                                        assert_eq!((bound, b), (bounds[i], budget));
                                    }
                                    other => panic!("unexpected veto: {other}"),
                                }
                                Err(())
                            }
                            Err(other) => panic!("unexpected submit failure: {other}"),
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("submitter thread"))
                    .collect()
            });
            let mut rejected = 0u64;
            for (i, outcome) in outcomes.iter().enumerate() {
                let over_budget = bounds[i] > budget;
                match outcome {
                    Err(()) => {
                        rejected += 1;
                        assert!(
                            over_budget,
                            "query {} (bound {}) was rejected under budget {budget}",
                            plans[i].query_name(),
                            bounds[i]
                        );
                    }
                    Ok((table, _)) => {
                        assert!(
                            !over_budget,
                            "query {} (bound {}) was admitted over budget {budget}",
                            plans[i].query_name(),
                            bounds[i]
                        );
                        assert_eq!(
                            table.rows(),
                            serial[i].0.rows(),
                            "budgeted admission changed the output for {}",
                            plans[i].query_name()
                        );
                    }
                }
            }
            let report = session.admission_stats();
            assert_eq!(report.rejected, rejected);
            assert_eq!(
                rejected,
                bounds.iter().filter(|&&b| b > budget).count() as u64,
                "the rejected set is exactly the over-budget queries"
            );
            assert!(
                report.peak_admitted_bound <= budget,
                "admitted bounds peaked at {} over the budget {budget}",
                report.peak_admitted_bound
            );
            session.shutdown();
            plans.len()
        },
    );
}

/// The session's cross-query fetch cache (PR 9) is a *traffic* optimization, never a
/// semantic one: N repeated submissions of one anchored lookup query through a
/// [`Session`] with a cache budget return identical rows in identical order every
/// time; the first submission performs exactly the data access, copy traffic and
/// probe-path buffer demand of an uncached solo [`execute_plan_on`] run (admission
/// keeps pricing the uncached worst case); and every later submission fetches *zero*
/// tuples from the store and demands *zero* probe-path buffers — each posting list
/// is served by one hash probe and a refcount bump. With the cache disabled
/// (`BEA_CACHE_ROWS` unset and no configured budget) all N submissions reproduce
/// today's counters byte-for-byte. Thread and shard counts come from the
/// environment, so the CI matrix drives all four `BEA_THREADS` × `BEA_SHARDS`
/// corners through this property; morsel sizes are swept explicitly.
#[test]
fn repeated_session_submissions_are_served_from_the_fetch_cache() {
    use bea::core::plan::{PlanBuilder, Predicate};
    use bea::engine::{Session, SessionConfig, SharedStore, CACHE_ROWS_ENV};
    use bea_core::access::AccessConstraint;
    use bea_core::schema::Catalog;

    run_cases(
        "repeated_session_submissions_are_served_from_the_fetch_cache",
        0xCAC4E,
        |rng| {
            // R(a → b), keys 1..=key_space with a random per-key fanout.
            let key_space = rng.gen_range(4i64..=12);
            let fanout = rng.gen_range(1i64..=3);
            let catalog = {
                let mut c = Catalog::new();
                c.declare("R", ["a", "b"]).unwrap();
                c
            };
            let schema = AccessSchema::from_constraints([AccessConstraint::new(
                &catalog,
                "R",
                &["a"],
                &["b"],
                10,
            )
            .unwrap()]);
            let mut db = bea::storage::Database::new(catalog);
            db.extend(
                "R",
                (1..=key_space).flat_map(|k| {
                    (0..fanout).map(move |j| vec![Value::int(k), Value::int(100 * k + j)])
                }),
            )
            .unwrap();

            // A union of anchored lookups over a random distinct key set; each
            // branch's fetch → product → select fuses into one KeyedLookup.
            let mut keys: Vec<i64> = (1..=key_space).collect();
            for i in (1..keys.len()).rev() {
                keys.swap(i, rng.gen_range(0..=i));
            }
            keys.truncate(rng.gen_range(2..=4));
            let plan = {
                let mut b = PlanBuilder::new();
                let branch = |b: &mut PlanBuilder, key: i64| {
                    let k = b.constant(Value::int(key), "k");
                    let fetched = b.fetch(
                        k,
                        vec![0],
                        "R",
                        vec![0],
                        vec![1],
                        0,
                        vec!["a".into(), "b".into()],
                    );
                    let prod = b.product(k, fetched);
                    b.select(prod, vec![Predicate::ColEqCol(0, 1)])
                };
                let mut acc = branch(&mut b, keys[0]);
                for &key in &keys[1..] {
                    let next = branch(&mut b, key);
                    acc = b.union(acc, next);
                }
                b.finish("CachedRepeat", acc).unwrap()
            };

            let shards = shards_from_env().max(2);
            let sharded = ShardedDatabase::build(db, schema, shards).unwrap();
            let store = SharedStore::from(sharded);

            const REPEATS: usize = 4;
            for morsel_size in [0usize, 1] {
                // Uncached solo baseline at the same env-resolved options.
                let options = ExecOptions::new().with_morsel_size(morsel_size);
                let (serial_table, serial_stats) =
                    execute_plan_on(&plan, store.store(), &options).unwrap();

                // Enabled leg: a budget far above the working set — nothing evicts.
                let session = Session::new(
                    store.clone(),
                    SessionConfig::new()
                        .with_morsel_size(morsel_size)
                        .with_cache_budget_rows(1 << 20),
                );
                for submission in 0..REPEATS {
                    let (table, stats) = session.submit(&plan).unwrap().wait().unwrap();
                    assert_eq!(
                        table.rows(),
                        serial_table.rows(),
                        "submission {submission} changed the rows (or their order) \
                         at morsel size {morsel_size}"
                    );
                    if submission == 0 {
                        // Cold: the cache fills but every uncached counter is
                        // byte-for-byte the solo run's — admission and accounting
                        // keep pricing the uncached worst case.
                        assert!(
                            stats.same_data_access(&serial_stats),
                            "the cold submission changed the data access: \
                             {stats} vs {serial_stats}"
                        );
                        assert_eq!(stats.values_cloned, serial_stats.values_cloned);
                        assert_eq!(stats.allocs_per_probe, serial_stats.allocs_per_probe);
                    } else {
                        // Warm: zero store traffic, zero probe-path buffer demand.
                        assert_eq!(
                            stats.tuples_fetched, 0,
                            "warm submission {submission} fetched from the store"
                        );
                        assert_eq!(stats.index_lookups, 0);
                        assert_eq!(
                            stats.allocs_per_probe, 0,
                            "warm submission {submission} demanded probe buffers"
                        );
                        assert_eq!(stats.cache_hits, keys.len() as u64);
                        assert_eq!(
                            stats.rows_served_from_cache, serial_stats.tuples_fetched,
                            "every posting the solo run fetched is served from the \
                             cache when warm"
                        );
                    }
                }
                let cache = session.cache_stats();
                assert_eq!(cache.resident_rows, serial_stats.tuples_fetched);
                assert_eq!(cache.evictions, 0);
                session.shutdown();

                // Disabled leg: no configured budget. Guarded on the environment so
                // a CI matrix leg that *sets* BEA_CACHE_ROWS doesn't turn this into
                // a cached session behind our back.
                if std::env::var_os(CACHE_ROWS_ENV).is_none() {
                    let session = Session::new(
                        store.clone(),
                        SessionConfig::new().with_morsel_size(morsel_size),
                    );
                    for _ in 0..REPEATS {
                        let (table, stats) = session.submit(&plan).unwrap().wait().unwrap();
                        assert_eq!(table.rows(), serial_table.rows());
                        assert!(
                            stats.same_data_access(&serial_stats),
                            "a disabled cache must reproduce the uncached engine: \
                             {stats} vs {serial_stats}"
                        );
                        assert_eq!(stats.values_cloned, serial_stats.values_cloned);
                        assert_eq!(stats.allocs_per_probe, serial_stats.allocs_per_probe);
                        assert_eq!((stats.cache_hits, stats.rows_served_from_cache), (0, 0));
                    }
                    session.shutdown();
                }
            }
        },
    );
}

/// cov(Q, A) is deterministic and monotone in the access schema (Lemma 3.9).
#[test]
fn coverage_is_deterministic_and_monotone() {
    run_cases("coverage_is_deterministic_and_monotone", 0xC0F0, |rng| {
        let qseed = rng.gen_range(0u64..2_000);
        let split = rng.gen_range(1usize..4);
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let workload = querygen::random_workload(
            &catalog,
            Some(&schema),
            8,
            &querygen::QueryGenConfig {
                seed: qseed,
                ..querygen::QueryGenConfig::default()
            },
        )
        .unwrap();
        let partial = AccessSchema::from_constraints(schema.constraints()[..split].to_vec());
        for query in &workload {
            let (cov1, _) = cover::covered_variables(query, &schema);
            let (cov2, _) = cover::covered_variables(query, &schema);
            assert_eq!(&cov1, &cov2);
            let (cov_partial, _) = cover::covered_variables(query, &partial);
            assert!(cov_partial.is_subset(&cov1));
            // Covered queries remain covered when constraints are added.
            if cover::is_covered(query, &partial) {
                assert!(cover::is_covered(query, &schema));
            }
        }
    });
}

/// The bounded-evaluability analysis is sound: whenever it claims an A-equivalent
/// covered rewriting, the rewriting gives the same answers as the original query on
/// instances satisfying the schema.
#[test]
fn analysis_rewrites_are_equivalent_on_data() {
    run_cases("analysis_rewrites_are_equivalent_on_data", 0xBE90, |rng| {
        let seed = rng.gen_range(0u64..500);
        let qseed = rng.gen_range(0u64..500);
        let (db, schema) = accidents_fixture(seed, 2);
        let catalog = accidents::catalog();
        let workload = querygen::random_workload_from_db(
            &catalog,
            Some(&schema),
            &db,
            8,
            &querygen::QueryGenConfig {
                seed: qseed,
                join_probability: 0.5,
                ..querygen::QueryGenConfig::default()
            },
        )
        .unwrap();
        for query in &workload {
            match analyze_cq(query, &schema, &BoundedConfig::default()).unwrap() {
                BoundedVerdict::EquivalentCovered { rewritten, .. } => {
                    let (a, _) = eval_cq(query, &db).unwrap();
                    let (b, _) = eval_cq(&rewritten, &db).unwrap();
                    assert!(a.same_rows(&b), "rewriting changed answers for {query}");
                }
                BoundedVerdict::Unsatisfiable => {
                    let (a, _) = eval_cq(query, &db).unwrap();
                    assert!(
                        a.is_empty(),
                        "A-unsatisfiable query answered on D ⊨ A: {query}"
                    );
                }
                _ => {}
            }
        }
    });
}

/// Envelopes sandwich the exact answer on instances satisfying the schema, within
/// their derived bounds (Section 4).
#[test]
fn envelopes_sandwich_exact_answers() {
    run_cases("envelopes_sandwich_exact_answers", 0xE47E, |rng| {
        let seed = rng.gen_range(0u64..500);
        let qseed = rng.gen_range(0u64..500);
        let (db, schema) = accidents_fixture(seed, 2);
        let catalog = accidents::catalog();
        let workload = querygen::random_workload_from_db(
            &catalog,
            Some(&schema),
            &db,
            6,
            &querygen::QueryGenConfig {
                seed: qseed,
                join_probability: 0.4,
                ..querygen::QueryGenConfig::default()
            },
        )
        .unwrap();
        let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
        let config = EnvelopeConfig::default();

        for query in &workload {
            if cover::is_covered(query, &schema) {
                continue;
            }
            let (exact, _) = eval_cq(query, indexed.database()).unwrap();
            if let Some(upper) = upper_envelope_cq(query, &schema, &config).unwrap() {
                let plan = bounded_plan(&upper.query, &schema).unwrap();
                let (answer, _) = execute_plan(&plan, &indexed).unwrap();
                assert!(exact.row_set().is_subset(&answer.row_set()));
                let bound = upper.approximation_bound(&schema, indexed.size()).unwrap();
                assert!((answer.len() - exact.len()) as u64 <= bound);
            }
            if let Some(lower) = lower_envelope_cq(query, &schema, &catalog, 1, &config).unwrap() {
                let plan = bounded_plan(&lower.query, &schema).unwrap();
                let (answer, _) = execute_plan(&plan, &indexed).unwrap();
                assert!(answer.row_set().is_subset(&exact.row_set()));
            }
        }
    });
}

/// Bounded specialization is generic: when the QSP analysis picks a parameter tuple,
/// *every* valuation of those parameters yields a covered query (Section 5).
#[test]
fn specialization_is_generic_over_valuations() {
    run_cases("specialization_is_generic_over_valuations", 0x59EC, |rng| {
        let day = rng.gen_range(0u32..500);
        let district = rng.gen_range(0u32..500);
        let catalog = accidents::catalog();
        let schema = accidents::access_schema(&catalog);
        let query = accidents::parameterized_query(&catalog).unwrap();
        let spec = specialize_cq(&query, &schema, 2, &SpecializeConfig::default())
            .unwrap()
            .expect("Example 5.1 specializes");
        // The template itself is covered…
        assert!(spec.report.is_covered());
        // …and so is every concrete instantiation, whatever the values are.
        let bindings: Vec<(&str, Value)> = spec
            .parameter_names
            .iter()
            .map(|name| {
                let value = if name == "date" {
                    accidents::date_value(day)
                } else {
                    accidents::district_value(district)
                };
                (name.as_str(), value)
            })
            .collect();
        let concrete = instantiate(&query, &bindings).unwrap();
        assert!(cover::is_covered(&concrete, &schema));
        // Unchosen parameters stay parameters; the generic template marks the chosen ones
        // as constants.
        let template = generic_template(&query, &spec.parameters).unwrap();
        for &p in &spec.parameters {
            assert!(template.constant_vars().contains(&p));
        }
    });
}

/// Constraint discovery is sound: constraints mined from an instance are satisfied by
/// that instance, at every discovery setting.
#[test]
fn discovered_constraints_hold() {
    run_cases("discovered_constraints_hold", 0xD15C, |rng| {
        let seed = rng.gen_range(0u64..1_000);
        let max_key = rng.gen_range(1usize..3);
        let (db, _) = accidents_fixture(seed, 2);
        let discovered = discover_constraints(
            &db,
            &DiscoveryOptions {
                max_key_size: max_key,
                max_cardinality: 100_000,
                include_empty_keys: true,
            },
        )
        .unwrap();
        assert!(!discovered.is_empty());
        let schema = AccessSchema::from_constraints(discovered);
        let indexed = IndexedDatabase::build(db, schema).unwrap();
        assert!(indexed.satisfies_schema());
    });
}

/// The graph workload's personalized pattern is always answerable boundedly once the
/// person is fixed, and the bounded answer matches the baseline for every person.
#[test]
fn personalized_graph_search_matches_naive() {
    run_cases("personalized_graph_search_matches_naive", 0x6A50, |rng| {
        let seed = rng.gen_range(0u64..300);
        let me = rng.gen_range(0i64..200);
        let catalog = graph::catalog();
        let config = graph::GraphConfig {
            num_persons: 200,
            max_degree: 12,
            avg_degree: 5,
            num_cities: 3,
            num_tags: 6,
            max_likes: 3,
            seed,
        };
        let schema = graph::access_schema(&catalog, &config);
        let db = graph::generate(&config).unwrap();
        let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
        assert!(indexed.satisfies_schema());

        let query =
            graph::personalized_query(&catalog, me, &graph::city_value(0), &graph::tag_value(0))
                .unwrap();
        assert!(cover::is_covered(&query, &schema));
        let plan = bounded_plan(&query, &schema).unwrap();
        let (bounded, stats) = execute_plan(&plan, &indexed).unwrap();
        let (naive, _) = eval_cq(&query, indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive));
        // Personalized search touches at most (1 + 2·max_degree) + a few person/likes
        // lookups — far less than the database size for any graph.
        assert!(stats.tuples_fetched <= 1 + 3 * u64::from(config.max_degree) + 10);
    });
}

/// The tiny evaluator used inside the reasoning procedures agrees with the engine's
/// baseline evaluator on small instances.
#[test]
fn small_instance_evaluator_agrees_with_engine() {
    run_cases(
        "small_instance_evaluator_agrees_with_engine",
        0x5A11,
        |rng| {
            let seed = rng.gen_range(0u64..1_000);
            let qseed = rng.gen_range(0u64..1_000);
            let catalog = accidents::catalog();
            let schema = accidents::access_schema(&catalog);
            let (db, _) = accidents_fixture(seed, 1);
            let workload = querygen::random_workload_from_db(
                &catalog,
                Some(&schema),
                &db,
                5,
                &querygen::QueryGenConfig {
                    seed: qseed,
                    max_atoms: 2,
                    ..querygen::QueryGenConfig::default()
                },
            )
            .unwrap();

            // Copy a small sample of the database into a SmallInstance.
            let mut small = SmallInstance::new();
            let mut copied = 0;
            for relation in db.relations() {
                for row in relation.rows().iter().take(40) {
                    small.insert(relation.name(), row.clone());
                    copied += 1;
                }
            }
            assert!(copied > 0);
            let mut small_db = bea::storage::Database::new(catalog.clone());
            for relation in db.relations() {
                small_db
                    .extend(relation.name(), relation.rows().iter().take(40).cloned())
                    .unwrap();
            }

            for query in &workload {
                let from_reasoner = eval_cq_small(query, &small);
                let (from_engine, _) = eval_cq(query, &small_db).unwrap();
                assert_eq!(
                    from_reasoner,
                    from_engine.row_set(),
                    "evaluators disagree on {query}"
                );
            }
        },
    );
}

//! Workload-driven integration tests: generate data and query workloads with
//! `bea-workload`, run the full pipeline (analysis → plan → bounded execution) and check
//! the results against the naive baseline.

use bea::core::bounded::{analyze_cq, bounded_plan_via_analysis, BoundedConfig};
use bea::core::cover;
use bea::core::plan::bounded_plan_for_report;
use bea::engine::{eval_cq, execute_plan};
use bea::storage::{discover_constraints, DiscoveryOptions, IndexedDatabase};
use bea::workload::{accidents, ecommerce, graph, querygen};
use bea_core::access::AccessSchema;

/// Every covered query of a random accidents workload evaluates identically under the
/// bounded plan and the naive baseline, while fetching no more than the plan's a-priori
/// bound.
#[test]
fn accidents_workload_bounded_equals_naive() {
    let catalog = accidents::catalog();
    let schema = accidents::access_schema(&catalog);
    let db = accidents::generate(&accidents::AccidentsConfig {
        num_days: 6,
        avg_accidents_per_day: 40,
        avg_casualties_per_accident: 2,
        num_districts: 8,
        seed: 21,
    })
    .unwrap();
    let workload = querygen::random_workload_from_db(
        &catalog,
        Some(&schema),
        &db,
        60,
        &querygen::QueryGenConfig {
            seed: 77,
            ..querygen::QueryGenConfig::default()
        },
    )
    .unwrap();

    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());

    let mut covered_count = 0;
    let mut nonempty = 0;
    for query in &workload {
        let report = cover::coverage(query, &schema);
        if !report.is_covered() {
            continue;
        }
        covered_count += 1;
        let plan = bounded_plan_for_report(query, &schema, &report).unwrap();
        assert!(plan.is_bounded_under(&schema));
        let (bounded, stats) = execute_plan(&plan, &indexed).unwrap();
        let (naive, _) = eval_cq(query, indexed.database()).unwrap();
        assert!(
            bounded.same_rows(&naive),
            "bounded and naive answers differ for {query}"
        );
        let cost = plan.cost(&schema, indexed.size());
        assert!(
            stats.tuples_fetched <= cost.max_fetched_tuples,
            "executed fetches exceed the static bound for {query}"
        );
        if !bounded.is_empty() {
            nonempty += 1;
        }
    }
    assert!(
        covered_count >= 20,
        "too few covered queries: {covered_count}"
    );
    assert!(
        nonempty >= 5,
        "too few queries with non-empty answers: {nonempty}"
    );
}

/// The same pipeline on the social-graph workload, via the full analysis entry point
/// (which may rewrite queries before planning).
#[test]
fn graph_workload_via_analysis() {
    let catalog = graph::catalog();
    let config = graph::GraphConfig {
        num_persons: 400,
        max_degree: 15,
        avg_degree: 6,
        num_cities: 4,
        num_tags: 8,
        max_likes: 4,
        seed: 5,
    };
    let schema = graph::access_schema(&catalog, &config);
    let db = graph::generate(&config).unwrap();
    let workload = querygen::random_workload_from_db(
        &catalog,
        Some(&schema),
        &db,
        40,
        &querygen::QueryGenConfig {
            seed: 13,
            ..querygen::QueryGenConfig::default()
        },
    )
    .unwrap();
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());

    let analysis_config = BoundedConfig::default();
    let mut planned = 0;
    for query in &workload {
        let Some(plan) = bounded_plan_via_analysis(query, &schema, &analysis_config).unwrap()
        else {
            continue;
        };
        planned += 1;
        let (bounded, _) = execute_plan(&plan, &indexed).unwrap();
        let (naive, _) = eval_cq(query, indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive), "mismatch for {query}");
    }
    assert!(planned >= 10, "too few planned queries: {planned}");
}

/// Constraint discovery on generated data yields constraints the data satisfies, and
/// richer discovered schemas cover at least as many workload queries as ψ1–ψ4 alone.
#[test]
fn discovered_constraints_extend_coverage() {
    let catalog = accidents::catalog();
    let handcrafted = accidents::access_schema(&catalog);
    let db = accidents::generate(&accidents::AccidentsConfig {
        num_days: 4,
        avg_accidents_per_day: 30,
        avg_casualties_per_accident: 2,
        num_districts: 5,
        seed: 8,
    })
    .unwrap();

    let discovered = discover_constraints(
        &db,
        &DiscoveryOptions {
            max_key_size: 1,
            max_cardinality: 2_000,
            include_empty_keys: false,
        },
    )
    .unwrap();
    assert!(discovered.len() >= 8);
    let discovered_schema = AccessSchema::from_constraints(discovered);
    let indexed = IndexedDatabase::build(db, discovered_schema.clone()).unwrap();
    assert!(
        indexed.satisfies_schema(),
        "mined constraints must hold on the data they were mined from"
    );

    let workload = querygen::random_workload(
        &catalog,
        Some(&handcrafted),
        80,
        &querygen::QueryGenConfig {
            seed: 3,
            ..querygen::QueryGenConfig::default()
        },
    )
    .unwrap();
    let covered = |schema: &AccessSchema| {
        workload
            .iter()
            .filter(|q| cover::is_covered(q, schema))
            .count()
    };
    // The discovered schema contains key/cardinality constraints for every attribute
    // pair, so it covers at least as much of the workload as the four hand-written ones.
    assert!(covered(&discovered_schema) >= covered(&handcrafted));
}

/// The e-commerce parameterized workload: every query that the QSP analysis accepts
/// executes boundedly for several concrete valuations drawn from the data.
#[test]
fn ecommerce_specializations_execute() {
    use bea::core::specialize::{instantiate, specialize_cq, SpecializeConfig};
    use bea_core::value::Value;

    let catalog = ecommerce::catalog();
    let schema = ecommerce::access_schema(&catalog);
    let db = ecommerce::generate(&ecommerce::EcommerceConfig {
        num_customers: 80,
        num_categories: 6,
        products_per_category: 12,
        avg_orders_per_customer: 6,
        num_cities: 4,
        seed: 44,
    })
    .unwrap();
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());

    let query = ecommerce::orders_of_customer(&catalog).unwrap();
    let spec = specialize_cq(&query, &schema, 1, &SpecializeConfig::default())
        .unwrap()
        .unwrap();
    assert_eq!(spec.parameter_names, vec!["uid".to_owned()]);

    for uid in [0i64, 7, 41, 79] {
        let concrete = instantiate(&query, &[("uid", Value::Int(uid))]).unwrap();
        let verdict = analyze_cq(&concrete, &schema, &BoundedConfig::default()).unwrap();
        assert!(verdict.is_bounded());
        let plan = bounded_plan_via_analysis(&concrete, &schema, &BoundedConfig::default())
            .unwrap()
            .unwrap();
        let (bounded, stats) = execute_plan(&plan, &indexed).unwrap();
        let (naive, naive_stats) = eval_cq(&concrete, indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive));
        assert!(stats.tuples_fetched < naive_stats.tuples_scanned);
    }
}

//! Integration tests reproducing the paper's worked examples end-to-end through the
//! public API: text syntax → analysis → plan → execution, compared against the naive
//! baseline.

use bea::core::bounded::{analyze_cq, BoundedConfig, BoundedVerdict};
use bea::core::cover;
use bea::core::envelope::{lower_envelope_cq, upper_envelope_cq, EnvelopeConfig};
use bea::core::plan::bounded_plan;
use bea::core::reason::ReasonConfig;
use bea::core::specialize::{instantiate, specialize_cq, SpecializeConfig};
use bea::engine::{eval_cq, execute_plan};
use bea::parser::{parse_access_schema, parse_catalog, parse_query};
use bea::storage::{Database, IndexedDatabase};
use bea_core::value::Value;

/// Example 1.1: Q0 is boundedly evaluable under ψ1–ψ4 and the bounded plan agrees with
/// the baseline while fetching a bounded number of tuples.
#[test]
fn example_1_1_end_to_end() {
    let catalog = parse_catalog(
        "relation Accident(aid, district, date);
         relation Casualty(cid, aid, class, vid);
         relation Vehicle(vid, driver, age);",
    )
    .unwrap();
    let schema = parse_access_schema(
        &catalog,
        "Accident(date -> aid, 610);
         Casualty(aid -> vid, 192);
         Accident(aid -> district, date, 1);
         Vehicle(vid -> driver, age, 1);",
    )
    .unwrap();
    let q0 = parse_query(
        &catalog,
        r#"Q0(age) :- Accident(aid, "Queen's Park", "1/5/2005"),
                      Casualty(cid, aid, class, vid),
                      Vehicle(vid, driver, age)."#,
    )
    .unwrap();
    let q0 = q0.as_cq().unwrap();

    let verdict = analyze_cq(q0, &schema, &BoundedConfig::default()).unwrap();
    assert!(matches!(verdict, BoundedVerdict::Covered(_)));

    // Build a small instance and compare bounded vs naive evaluation.
    let mut db = Database::new(catalog.clone());
    for (aid, district, date) in [
        (1, "Queen's Park", "1/5/2005"),
        (2, "Queen's Park", "2/5/2005"),
        (3, "Leith", "1/5/2005"),
    ] {
        db.insert(
            "Accident",
            vec![Value::int(aid), Value::str(district), Value::str(date)],
        )
        .unwrap();
    }
    for (cid, aid, vid) in [(10, 1, 100), (11, 1, 101), (12, 2, 102), (13, 3, 103)] {
        db.insert(
            "Casualty",
            vec![
                Value::int(cid),
                Value::int(aid),
                Value::int(0),
                Value::int(vid),
            ],
        )
        .unwrap();
    }
    for (vid, age) in [(100, 30), (101, 40), (102, 50), (103, 60)] {
        db.insert(
            "Vehicle",
            vec![
                Value::int(vid),
                Value::str(format!("d{vid}")),
                Value::int(age),
            ],
        )
        .unwrap();
    }

    let plan = bounded_plan(q0, &schema).unwrap();
    assert!(plan.is_bounded_under(&schema));
    let (naive, naive_stats) = eval_cq(q0, &db).unwrap();
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());
    let (bounded, stats) = execute_plan(&plan, &indexed).unwrap();

    assert!(bounded.same_rows(&naive));
    assert_eq!(
        bounded.row_set(),
        [vec![Value::int(30)], vec![Value::int(40)]]
            .into_iter()
            .collect()
    );
    // The bounded plan fetched fewer tuples than the database holds; the baseline
    // scanned all of them.
    assert!(stats.tuples_fetched < naive_stats.tuples_scanned);
    assert_eq!(stats.tuples_scanned, 0);
    // Its worst case is also bounded a priori (independent of |D|).
    let cost = plan.cost(&schema, u64::MAX / 4);
    assert!(cost.max_fetched_tuples <= 610 + 610 + 2 * 610 * 192);
}

/// Example 3.1 through the analysis API: Q1 unknown/not bounded, Q2 bounded via
/// unsatisfiability, Q3 covered.
#[test]
fn example_3_1_verdicts() {
    let catalog = parse_catalog(
        "relation R1(a, b, e, f);
         relation R2(a, b);
         relation R3(a, b, c);",
    )
    .unwrap();
    let config = BoundedConfig::default();

    let a1 = parse_access_schema(&catalog, "R1(a -> b, 5); R1(e -> f, 5);").unwrap();
    let q1 = parse_query(&catalog, "Q1(x, y) :- R1(x1, x, x2, y), x1 = 1, x2 = 1.").unwrap();
    let verdict = analyze_cq(q1.as_cq().unwrap(), &a1, &config).unwrap();
    assert!(!verdict.is_bounded());

    let a2 = parse_access_schema(&catalog, "R2(a -> b, 1);").unwrap();
    let q2 = parse_query(&catalog, "Q2(x) :- R2(x, x1), R2(x, x2), x1 = 1, x2 = 2.").unwrap();
    let verdict = analyze_cq(q2.as_cq().unwrap(), &a2, &config).unwrap();
    assert_eq!(verdict, BoundedVerdict::Unsatisfiable);

    let a3 = parse_access_schema(&catalog, "R3(-> c, 1); R3(a, b -> c, 9);").unwrap();
    let q3 = parse_query(
        &catalog,
        "Q3(x, y) :- R3(x1, x2, x), R3(z1, z2, y), R3(x, y, z3), x1 = 1, x2 = 1.",
    )
    .unwrap();
    let verdict = analyze_cq(q3.as_cq().unwrap(), &a3, &config).unwrap();
    assert!(matches!(verdict, BoundedVerdict::Covered(_)));
}

/// Example 4.1: envelopes for Q1 sandwich the exact answer on instances satisfying A.
#[test]
fn example_4_1_envelopes_sandwich_the_answer() {
    let catalog = parse_catalog("relation R(a, b);").unwrap();
    let schema = parse_access_schema(&catalog, "R(a -> b, 3);").unwrap();
    let q1 = parse_query(&catalog, "Q1(x) :- R(w, x), R(y, w), R(x, z), w = 1.").unwrap();
    let q1 = q1.as_cq().unwrap();
    assert!(!cover::is_covered(q1, &schema));

    let upper = upper_envelope_cq(q1, &schema, &EnvelopeConfig::default())
        .unwrap()
        .expect("upper envelope exists");
    let lower = lower_envelope_cq(q1, &schema, &catalog, 2, &EnvelopeConfig::default())
        .unwrap()
        .expect("lower envelope exists");

    // An instance satisfying R(a → b, 3).
    let mut db = Database::new(catalog.clone());
    for (a, b) in [(1, 2), (1, 3), (2, 1), (3, 5), (5, 1), (2, 7)] {
        db.insert("R", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());

    let (exact, _) = eval_cq(q1, indexed.database()).unwrap();
    let upper_plan = bounded_plan(&upper.query, &schema).unwrap();
    let (upper_answer, _) = execute_plan(&upper_plan, &indexed).unwrap();
    let lower_plan = bounded_plan(&lower.query, &schema).unwrap();
    let (lower_answer, _) = execute_plan(&lower_plan, &indexed).unwrap();

    // Ql(D) ⊆ Q(D) ⊆ Qu(D).
    assert!(lower_answer.row_set().is_subset(&exact.row_set()));
    assert!(exact.row_set().is_subset(&upper_answer.row_set()));
    // The gaps respect the derived constant bounds.
    let nu = upper.approximation_bound(&schema, 1_000).unwrap();
    assert!((upper_answer.len() - exact.len()) as u64 <= nu);
    let input_report = cover::coverage(q1, &schema);
    let nl = lower.approximation_bound(&input_report, &schema, 1_000);
    assert!((exact.len() - lower_answer.len()) as u64 <= nl);
}

/// Example 4.5: the split-based lower envelope is A-equivalent to the query, so the two
/// agree on every instance satisfying the schema.
#[test]
fn example_4_5_split_envelope_agrees_on_data() {
    let catalog = parse_catalog("relation R(a, b, c);").unwrap();
    let schema = parse_access_schema(&catalog, "R(a -> b, 4); R(b -> c, 1);").unwrap();
    let q = parse_query(&catalog, "Q(x, y) :- R(1, x, y).").unwrap();
    let q = q.as_cq().unwrap();
    let envelope = lower_envelope_cq(q, &schema, &catalog, 1, &EnvelopeConfig::default())
        .unwrap()
        .expect("Example 4.5 has a 1-expansion lower envelope");
    assert!(envelope.used_split);

    let mut db = Database::new(catalog.clone());
    for (a, b, c) in [(1, 10, 100), (1, 11, 110), (2, 10, 100), (2, 12, 120)] {
        db.insert("R", vec![Value::int(a), Value::int(b), Value::int(c)])
            .unwrap();
    }
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());

    let (exact, _) = eval_cq(q, indexed.database()).unwrap();
    let plan = bounded_plan(&envelope.query, &schema).unwrap();
    let (approx, _) = execute_plan(&plan, &indexed).unwrap();
    assert!(approx.same_rows(&exact));
    assert_eq!(exact.len(), 2);
}

/// Example 5.1: the parameterized accidents query specializes with `date`, and the
/// specialized query runs boundedly for any valuation.
#[test]
fn example_5_1_specialization_runs() {
    let catalog = bea::workload::accidents::catalog();
    let schema = bea::workload::accidents::access_schema(&catalog);
    let query = bea::workload::accidents::parameterized_query(&catalog).unwrap();

    let spec = specialize_cq(&query, &schema, 2, &SpecializeConfig::default())
        .unwrap()
        .expect("Example 5.1 is boundedly specializable");
    assert_eq!(spec.parameter_names, vec!["date".to_owned()]);

    let db = bea::workload::accidents::generate(&bea::workload::accidents::AccidentsConfig {
        num_days: 4,
        avg_accidents_per_day: 30,
        avg_casualties_per_accident: 2,
        num_districts: 6,
        seed: 99,
    })
    .unwrap();
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    assert!(indexed.satisfies_schema());

    for day in 0..4 {
        let concrete = instantiate(
            &query,
            &[("date", bea::workload::accidents::date_value(day))],
        )
        .unwrap();
        assert!(cover::is_covered(&concrete, &schema));
        let plan = bounded_plan(&concrete, &schema).unwrap();
        let (bounded, stats) = execute_plan(&plan, &indexed).unwrap();
        let (naive, _) = eval_cq(&concrete, indexed.database()).unwrap();
        assert!(bounded.same_rows(&naive));
        assert!(stats.tuples_fetched > 0);
        assert!(!bounded.is_empty(), "every generated day has accidents");
    }
}

/// Lemma 3.3 flavour: A-equivalence is genuinely coarser than classical equivalence, and
/// the executor agrees with it on instances satisfying A.
#[test]
fn a_equivalent_rewriting_agrees_on_satisfying_instances() {
    let catalog = parse_catalog("relation R(a, b);").unwrap();
    let schema = parse_access_schema(&catalog, "R(a -> b, 4);").unwrap();
    // Q has a redundant second atom; the analysis rewrites it away.
    let q = parse_query(&catalog, "Q(y) :- R(x, y), R(z, y), x = 1.").unwrap();
    let q = q.as_cq().unwrap();
    let verdict = analyze_cq(q, &schema, &BoundedConfig::default()).unwrap();
    let BoundedVerdict::EquivalentCovered { rewritten, .. } = &verdict else {
        panic!("expected an equivalent covered rewriting, got {verdict:?}");
    };
    assert!(bea::core::reason::containment::a_equivalent(
        q,
        rewritten,
        &schema,
        &ReasonConfig::default()
    )
    .unwrap());

    let mut db = Database::new(catalog.clone());
    for (a, b) in [(1, 5), (1, 6), (2, 5), (3, 9)] {
        db.insert("R", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    let indexed = IndexedDatabase::build(db, schema.clone()).unwrap();
    let plan = bounded_plan(rewritten, &schema).unwrap();
    let (bounded, _) = execute_plan(&plan, &indexed).unwrap();
    let (naive, _) = eval_cq(q, indexed.database()).unwrap();
    assert!(bounded.same_rows(&naive));
}

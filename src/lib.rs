//! # bea — Bounded Evaluability Analysis
//!
//! Facade crate re-exporting the `bea` workspace: an implementation of
//! *"Querying Big Data by Accessing Small Data"* (Fan, Geerts, Cao, Deng, Lu — PODS 2015).
//!
//! The workspace provides:
//!
//! * [`core`] — query IR (CQ / UCQ / ∃FO⁺ / FO), access schemas, the covered-query
//!   effective syntax, A-satisfiability / A-containment reasoning, bounded-evaluability
//!   analysis, bounded query plans, envelopes and query specialization.
//! * [`storage`] — an in-memory relational store with the hash indexes mandated by
//!   access constraints, constraint validation and constraint discovery.
//! * [`engine`] — a bounded-plan executor with access accounting and a naive
//!   full-scan baseline evaluator.
//! * [`parser`] — a datalog-style text syntax for queries and access constraints.
//! * [`workload`] — synthetic data and query generators used by the examples,
//!   tests and benchmarks.
//! * [`bench`] — the experiment harness behind the `exp_*` binaries and criterion
//!   benches: scenario builders, chain-query families, report helpers.
//!
//! ## Quickstart
//!
//! ```
//! use bea::parser::{parse_query, parse_access_schema};
//! use bea::core::cover::coverage;
//!
//! let catalog = bea::workload::accidents::catalog();
//! let schema = parse_access_schema(
//!     &catalog,
//!     "Accident(date -> aid, 610);
//!      Casualty(aid -> vid, 192);
//!      Accident(aid -> district, date, 1);
//!      Vehicle(vid -> driver, age, 1);",
//! ).unwrap();
//! let q0 = parse_query(
//!     &catalog,
//!     r#"Q(age) :- Accident(aid, d, t), Casualty(cid, aid, cls, vid),
//!                 Vehicle(vid, dri, age), d = "Queen's Park", t = "1/5/2005"."#,
//! ).unwrap();
//! let report = coverage(q0.as_cq().unwrap(), &schema);
//! assert!(report.is_covered());
//! ```

pub use bea_bench as bench;
pub use bea_core as core;
pub use bea_engine as engine;
pub use bea_parser as parser;
pub use bea_storage as storage;
pub use bea_workload as workload;

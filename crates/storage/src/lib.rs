//! # bea-storage — relational storage with access-constraint indexes
//!
//! The substrate the paper assumes: an in-memory relational store whose physical design
//! is driven by an access schema. For every access constraint `R(X → Y, N)` the store
//! maintains a hash index on `X`, so that `D_{XY}(X = ā)` can be retrieved without
//! scanning `R` — which is exactly the `fetch` operation of boundedly evaluable query
//! plans.
//!
//! * [`relation`] / [`database`] — relations, instances, catalog validation.
//! * [`index`] — hash indexes keyed on attribute subsets.
//! * [`indexed`] — [`indexed::IndexedDatabase`]: a database plus the indexes mandated by
//!   an access schema, with constraint validation (`D ⊨ A`).
//! * [`sharded`] — [`sharded::ShardedDatabase`]: the same indexes partitioned into
//!   shards by a deterministic hash of the constraint key ([`sharded::shard_of`]), so a
//!   fetch probes only the shard owning its key and boundedness survives partitioning;
//!   [`sharded::Store`] is the executor-facing handle over either flavor. Shard layout:
//!   a key's full posting list lives in exactly one shard, per-key results are
//!   identical to the unsharded store, and `shard_count = 1` *is* the unsharded store.
//! * [`discovery`] — mining access constraints from data (the paper notes that the
//!   constraints of Example 1.1 "are discovered by simple aggregate queries on D₀").
//! * [`io`] — minimal tab-separated import/export, for persisting generated workloads.

pub mod database;
pub mod discovery;
pub mod index;
pub mod indexed;
pub mod io;
pub mod relation;
pub mod sharded;

pub use database::Database;
pub use discovery::{discover_constraints, measure_cardinality, DiscoveryOptions};
pub use indexed::{ConstraintViolation, FetchIter, IndexedDatabase};
pub use relation::Relation;
pub use sharded::{shard_of, shards_from_env, ShardedDatabase, Store, SHARDS_ENV};

//! A database instance: one relation instance per relation of a catalog.

use crate::relation::Relation;
use bea_core::error::{Error, Result};
use bea_core::schema::Catalog;
use bea_core::value::Row;
use std::collections::BTreeMap;

/// A database instance over a catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Database {
    catalog: Catalog,
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Create an empty instance of a catalog (every declared relation starts empty).
    pub fn new(catalog: Catalog) -> Self {
        let relations = catalog
            .relations()
            .map(|schema| (schema.name().to_owned(), Relation::new(schema.clone())))
            .collect();
        Self { catalog, relations }
    }

    /// The catalog this instance conforms to.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The relation instance with the given name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation {
                relation: name.to_owned(),
            })
    }

    /// Mutable access to a relation instance.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| Error::UnknownRelation {
                relation: name.to_owned(),
            })
    }

    /// Insert a tuple into a relation.
    pub fn insert(&mut self, relation: &str, row: Row) -> Result<()> {
        self.relation_mut(relation)?.insert(row)
    }

    /// Insert many tuples into a relation.
    pub fn extend(&mut self, relation: &str, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        self.relation_mut(relation)?.extend(rows)
    }

    /// All relation instances, in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Total number of tuples `|D|`.
    pub fn size(&self) -> u64 {
        self.relations.values().map(|r| r.len() as u64).sum()
    }

    /// True when every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// A short per-relation summary (name and cardinality), useful for logging.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .relations
            .values()
            .map(|r| format!("{}: {} tuples", r.name(), r.len()))
            .collect();
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["x"]).unwrap();
        c
    }

    #[test]
    fn build_insert_and_query() {
        let mut db = Database::new(catalog());
        assert!(db.is_empty());
        db.insert("R", vec![Value::int(1), Value::int(2)]).unwrap();
        db.extend("S", [vec![Value::int(5)], vec![Value::int(6)]])
            .unwrap();
        assert_eq!(db.size(), 3);
        assert_eq!(db.relation("R").unwrap().len(), 1);
        assert_eq!(db.relation("S").unwrap().len(), 2);
        assert_eq!(db.relations().count(), 2);
        assert!(db.summary().contains("R: 1 tuples"));
        assert_eq!(db.catalog().len(), 2);
    }

    #[test]
    fn unknown_relation_errors() {
        let mut db = Database::new(catalog());
        assert!(db.relation("T").is_err());
        assert!(db.insert("T", vec![Value::int(1)]).is_err());
    }

    #[test]
    fn arity_checked_through_database() {
        let mut db = Database::new(catalog());
        assert!(db.insert("S", vec![Value::int(1), Value::int(2)]).is_err());
    }
}

//! A single relation instance: a schema and its tuples.

use bea_core::error::{Error, Result};
use bea_core::schema::RelationSchema;
use bea_core::value::{Row, Value};

/// A relation instance. Tuples are stored in insertion order; the query semantics used
/// throughout the workspace is set-based, so callers that may insert duplicates should
/// deduplicate results (the executors do).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: RelationSchema,
    rows: Vec<Row>,
}

impl Relation {
    /// Create an empty relation instance for a schema.
    pub fn new(schema: RelationSchema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// The relation schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tuples, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The tuple at an offset.
    pub fn row(&self, index: usize) -> Option<&Row> {
        self.rows.get(index)
    }

    /// Insert a tuple; its arity must match the schema.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                relation: self.schema.name().to_owned(),
                expected: self.schema.arity(),
                found: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Insert many tuples.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) -> Result<()> {
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// Reserve capacity for additional tuples (useful for bulk loads).
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }

    /// Project a tuple onto a list of attribute positions.
    pub fn project(row: &Row, positions: &[usize]) -> Row {
        positions.iter().map(|&p| row[p].clone()).collect()
    }

    /// Number of distinct values of one attribute (used by statistics and discovery).
    pub fn distinct_count(&self, attribute: usize) -> usize {
        let mut values: Vec<&Value> = self.rows.iter().map(|r| &r[attribute]).collect();
        values.sort();
        values.dedup();
        values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RelationSchema {
        RelationSchema::new("R", ["a", "b"]).unwrap()
    }

    #[test]
    fn insert_and_read() {
        let mut r = Relation::new(schema());
        assert!(r.is_empty());
        r.insert(vec![Value::int(1), Value::str("x")]).unwrap();
        r.extend([
            vec![Value::int(2), Value::str("y")],
            vec![Value::int(3), Value::str("z")],
        ])
        .unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.name(), "R");
        assert_eq!(r.row(0).unwrap()[0], Value::int(1));
        assert!(r.row(5).is_none());
        assert_eq!(r.rows().len(), 3);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(schema());
        let err = r.insert(vec![Value::int(1)]);
        assert!(matches!(err, Err(Error::ArityMismatch { .. })));
    }

    #[test]
    fn projection_and_distinct() {
        let mut r = Relation::new(schema());
        r.extend([
            vec![Value::int(1), Value::str("x")],
            vec![Value::int(1), Value::str("y")],
            vec![Value::int(2), Value::str("y")],
        ])
        .unwrap();
        assert_eq!(
            Relation::project(&r.rows()[0], &[1, 0]),
            vec![Value::str("x"), Value::int(1)]
        );
        assert_eq!(r.distinct_count(0), 2);
        assert_eq!(r.distinct_count(1), 2);
        r.reserve(100);
        assert_eq!(r.len(), 3);
    }
}

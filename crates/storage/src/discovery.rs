//! Discovery of access constraints from data.
//!
//! The paper notes that the constraints of Example 1.1 "are discovered by simple
//! aggregate queries on D₀": for a candidate pair of attribute sets `(X, Y)` of a
//! relation, the cardinality `N = max_ā |D_Y(X = ā)|` is an aggregate over the data, and
//! `R(X → Y, N)` is then an access constraint the instance satisfies by construction.
//! This module implements that mining step, which the coverage-rate experiment (E3 in
//! `EXPERIMENTS.md`) uses to build constraint sets of increasing size.

use crate::database::Database;
use bea_core::access::AccessConstraint;
use bea_core::error::Result;
use bea_core::value::Row;
use std::collections::HashMap;

/// Options for constraint discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiscoveryOptions {
    /// Maximum size of the key set `X` considered (1 keeps discovery linear per
    /// attribute pair; 2 already covers most practical constraints).
    pub max_key_size: usize,
    /// Only keep constraints whose discovered cardinality is at most this bound —
    /// constraints with huge `N` are useless for bounded evaluation.
    pub max_cardinality: u64,
    /// Also emit `R(∅ → A, N)` constraints for attributes with few distinct values.
    pub include_empty_keys: bool,
}

impl Default for DiscoveryOptions {
    fn default() -> Self {
        Self {
            max_key_size: 1,
            max_cardinality: 1_000,
            include_empty_keys: false,
        }
    }
}

/// The exact cardinality `max_ā |D_Y(X = ā)|` of a candidate constraint on an instance;
/// `R(X → Y, N)` with this `N` is satisfied by the instance by construction.
pub fn measure_cardinality(
    database: &Database,
    relation: &str,
    x: &[usize],
    y: &[usize],
) -> Result<u64> {
    let rel = database.relation(relation)?;
    let mut groups: HashMap<Row, Vec<Row>> = HashMap::new();
    for row in rel.rows() {
        let key = crate::relation::Relation::project(row, x);
        let val = crate::relation::Relation::project(row, y);
        groups.entry(key).or_default().push(val);
    }
    let mut max = 0u64;
    for values in groups.values_mut() {
        values.sort();
        values.dedup();
        max = max.max(values.len() as u64);
    }
    Ok(max)
}

/// Mine access constraints from an instance: every `(X, Y)` pair of disjoint attribute
/// sets with `|X| ≤ max_key_size` and `|Y| = 1` (plus, per relation, the "all remaining
/// attributes" Y for key-like X sets) whose measured cardinality is within
/// `max_cardinality`.
///
/// The returned constraints are sorted by cardinality, so taking a prefix yields the
/// "most selective first" constraint sets used by the coverage-rate experiment.
pub fn discover_constraints(
    database: &Database,
    options: &DiscoveryOptions,
) -> Result<Vec<AccessConstraint>> {
    let mut found: Vec<(u64, AccessConstraint)> = Vec::new();
    for relation in database.relations() {
        let arity = relation.schema().arity();
        let name = relation.name().to_owned();

        // Candidate key sets: ∅ (optional), singletons, and pairs when allowed.
        let mut key_sets: Vec<Vec<usize>> = Vec::new();
        if options.include_empty_keys {
            key_sets.push(Vec::new());
        }
        if options.max_key_size >= 1 {
            key_sets.extend((0..arity).map(|a| vec![a]));
        }
        if options.max_key_size >= 2 {
            for a in 0..arity {
                for b in (a + 1)..arity {
                    key_sets.push(vec![a, b]);
                }
            }
        }

        for x in &key_sets {
            // Single-attribute Y targets.
            for y in 0..arity {
                if x.contains(&y) {
                    continue;
                }
                let n = measure_cardinality(database, &name, x, &[y])?;
                if n == 0 || n > options.max_cardinality {
                    continue;
                }
                found.push((
                    n,
                    AccessConstraint::from_positions(name.clone(), x.clone(), vec![y], n)?,
                ));
            }
            // The "whole remainder" target, giving key-style constraints like
            // Accident(aid → (district, date), 1).
            let rest: Vec<usize> = (0..arity).filter(|p| !x.contains(p)).collect();
            if rest.len() > 1 {
                let n = measure_cardinality(database, &name, x, &rest)?;
                if n > 0 && n <= options.max_cardinality {
                    found.push((
                        n,
                        AccessConstraint::from_positions(name.clone(), x.clone(), rest, n)?,
                    ));
                }
            }
        }
    }
    found.sort_by_key(|(cardinality, _)| *cardinality);
    Ok(found.into_iter().map(|(_, c)| c).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::schema::Catalog;
    use bea_core::value::Value;

    fn sample() -> Database {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b", "c"]).unwrap();
        let mut db = Database::new(c);
        db.extend(
            "R",
            [
                vec![Value::int(1), Value::int(10), Value::str("x")],
                vec![Value::int(1), Value::int(11), Value::str("x")],
                vec![Value::int(2), Value::int(12), Value::str("y")],
                vec![Value::int(3), Value::int(12), Value::str("y")],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn cardinality_measurement() {
        let db = sample();
        // a → b: key 1 has two b-values.
        assert_eq!(measure_cardinality(&db, "R", &[0], &[1]).unwrap(), 2);
        // b → a: value 12 has two a-values.
        assert_eq!(measure_cardinality(&db, "R", &[1], &[0]).unwrap(), 2);
        // a → c is functional.
        assert_eq!(measure_cardinality(&db, "R", &[0], &[2]).unwrap(), 1);
        // ∅ → c has two distinct values overall.
        assert_eq!(measure_cardinality(&db, "R", &[], &[2]).unwrap(), 2);
        // Empty relation yields 0.
        let mut c2 = Catalog::new();
        c2.declare("S", ["x", "y"]).unwrap();
        let empty = Database::new(c2);
        assert_eq!(measure_cardinality(&empty, "S", &[0], &[1]).unwrap(), 0);
        assert!(measure_cardinality(&db, "Nope", &[0], &[1]).is_err());
    }

    #[test]
    fn discovered_constraints_hold_on_the_instance() {
        let db = sample();
        let constraints = discover_constraints(&db, &DiscoveryOptions::default()).unwrap();
        assert!(!constraints.is_empty());
        // Every discovered constraint is satisfied by the instance it was mined from.
        for constraint in &constraints {
            let n = measure_cardinality(&db, constraint.relation(), constraint.x(), constraint.y())
                .unwrap();
            assert!(n <= constraint.cardinality().bound(db.size()));
        }
        // They are sorted by cardinality, so the first one is a functional dependency.
        assert_eq!(constraints[0].cardinality().as_const(), Some(1));
    }

    #[test]
    fn options_control_the_search_space() {
        let db = sample();
        let small = discover_constraints(
            &db,
            &DiscoveryOptions {
                max_key_size: 1,
                max_cardinality: 1_000,
                include_empty_keys: false,
            },
        )
        .unwrap();
        let with_pairs = discover_constraints(
            &db,
            &DiscoveryOptions {
                max_key_size: 2,
                max_cardinality: 1_000,
                include_empty_keys: true,
            },
        )
        .unwrap();
        assert!(with_pairs.len() > small.len());
        assert!(with_pairs.iter().any(|c| c.x().is_empty()));
        assert!(small.iter().all(|c| c.x().len() == 1));

        // A cardinality cap of 1 keeps only functional dependencies.
        let fds = discover_constraints(
            &db,
            &DiscoveryOptions {
                max_key_size: 1,
                max_cardinality: 1,
                include_empty_keys: false,
            },
        )
        .unwrap();
        assert!(fds.iter().all(|c| c.cardinality().as_const() == Some(1)));
    }
}

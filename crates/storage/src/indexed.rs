//! A database equipped with the indexes mandated by an access schema.

use crate::database::Database;
use crate::index::HashIndex;
use bea_core::access::AccessSchema;
use bea_core::error::{Error, Result};
use bea_core::value::{Row, Value};

/// A violation of an access constraint by a database instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintViolation {
    /// Index of the violated constraint in the access schema.
    pub constraint_index: usize,
    /// The offending `X`-value.
    pub key: Row,
    /// The number of distinct `Y`-values observed for that key.
    pub observed: u64,
    /// The bound allowed by the constraint (for this database's size).
    pub allowed: u64,
}

/// A database instance together with one hash index per access constraint.
///
/// Building an `IndexedDatabase` is the physical-design step of the paper's strategy:
/// "develop and maintain an access schema `A` for an application" and build the indices
/// it requires. Fetches through [`IndexedDatabase::fetch`] never scan a relation.
#[derive(Debug, Clone)]
pub struct IndexedDatabase {
    database: Database,
    schema: AccessSchema,
    indexes: Vec<HashIndex>,
}

impl IndexedDatabase {
    /// Build the indexes required by the access schema over the database.
    ///
    /// Fails if the schema references relations or attribute positions the catalog does
    /// not declare. Whether the *cardinality* part of each constraint holds is a separate
    /// question — check it with [`IndexedDatabase::validate`].
    pub fn build(database: Database, schema: AccessSchema) -> Result<Self> {
        schema.validate(database.catalog())?;
        let mut indexes = Vec::with_capacity(schema.len());
        for constraint in schema.constraints() {
            let relation = database.relation(constraint.relation())?;
            indexes.push(HashIndex::build(relation, constraint.x()));
        }
        Ok(Self {
            database,
            schema,
            indexes,
        })
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The access schema whose indexes are materialized.
    pub fn schema(&self) -> &AccessSchema {
        &self.schema
    }

    /// Total number of tuples `|D|`.
    pub fn size(&self) -> u64 {
        self.database.size()
    }

    /// Retrieve, through the index of constraint `constraint_index`, the tuples of its
    /// relation whose `X`-projection equals `key`. Returns full tuples; callers project
    /// onto `X ∪ Y` as needed (the executor in `bea-engine` does).
    ///
    /// Thin compatibility wrapper over [`IndexedDatabase::fetch_iter`]; hot paths should
    /// prefer the iterator, which walks the index postings without allocating a
    /// `Vec<&Row>` per key.
    pub fn fetch(&self, constraint_index: usize, key: &[Value]) -> Result<Vec<&Row>> {
        Ok(self.fetch_iter(constraint_index, key)?.collect())
    }

    /// Borrowing counterpart of [`IndexedDatabase::fetch`]: iterate over the tuples whose
    /// `X`-projection equals `key`, straight out of the index postings.
    ///
    /// This is the storage half of the streaming executor's fetch path: no intermediate
    /// collection is allocated, and the rows stay borrowed from the relation until the
    /// consumer decides what to project out of them. The iterator is exact-sized, so
    /// callers can account for the number of tuples read before walking them.
    pub fn fetch_iter(&self, constraint_index: usize, key: &[Value]) -> Result<FetchIter<'_>> {
        let constraint =
            self.schema
                .constraint(constraint_index)
                .ok_or_else(|| Error::MissingConstraint {
                    reason: format!("no access constraint with index {constraint_index}"),
                })?;
        if key.len() != constraint.x().len() {
            return Err(Error::invalid(format!(
                "fetch key has {} values but constraint {constraint_index} expects {}",
                key.len(),
                constraint.x().len()
            )));
        }
        let relation = self.database.relation(constraint.relation())?;
        Ok(FetchIter {
            rows: relation.rows(),
            offsets: self.indexes[constraint_index].lookup(key).iter(),
        })
    }

    /// Columnar counterpart of [`IndexedDatabase::fetch_iter`]: append, for every tuple
    /// whose `X`-projection equals `key`, the values at `positions` directly into the
    /// corresponding output columns (`out[i]` receives `tuple[positions[i]]`).
    ///
    /// This is the storage half of the columnar fetch path: the matched tuples go
    /// straight from the relation into the caller's column builders, without an
    /// intermediate `Row` allocation per tuple. Value clones are O(1) (shared string
    /// payloads), so the append is a pointer-sized copy per value. Returns the number
    /// of tuples appended — the same count [`IndexedDatabase::fetch_iter`] would
    /// report, for access accounting.
    ///
    /// `out` must have exactly one column per requested position; positions beyond the
    /// relation's arity are the caller's responsibility (the engine validates plans
    /// before executing them).
    pub fn fetch_into_columns(
        &self,
        constraint_index: usize,
        key: &[Value],
        positions: &[usize],
        out: &mut [Vec<Value>],
    ) -> Result<u64> {
        Ok(append_projected(
            self.fetch_iter(constraint_index, key)?,
            positions,
            out,
        ))
    }

    /// Check the cardinality part of every constraint: does `D ⊨ A` hold?
    ///
    /// Returns the list of violations (empty iff the instance satisfies the schema).
    pub fn validate(&self) -> Vec<ConstraintViolation> {
        let db_size = self.size();
        let mut violations = Vec::new();
        for (ci, constraint) in self.schema.constraints().iter().enumerate() {
            let allowed = constraint.cardinality().bound(db_size);
            let relation = match self.database.relation(constraint.relation()) {
                Ok(r) => r,
                Err(_) => continue,
            };
            for (key, offsets) in self.indexes[ci].buckets() {
                check_bucket(
                    relation.rows(),
                    constraint.y(),
                    ci,
                    allowed,
                    key,
                    offsets,
                    &mut violations,
                );
            }
        }
        violations
    }

    /// Convenience: `true` iff [`IndexedDatabase::validate`] reports no violation.
    pub fn satisfies_schema(&self) -> bool {
        self.validate().is_empty()
    }

    /// Tear the indexed database apart again (e.g. to add more data and rebuild).
    pub fn into_parts(self) -> (Database, AccessSchema) {
        (self.database, self.schema)
    }
}

/// Append, for every tuple of `iter`, the values at `positions` into the
/// corresponding output columns, returning how many tuples were appended — the
/// columnar fetch kernel shared by [`IndexedDatabase::fetch_into_columns`] and its
/// sharded counterpart, so the two stores can never drift on the append semantics.
pub(crate) fn append_projected(
    iter: FetchIter<'_>,
    positions: &[usize],
    out: &mut [Vec<Value>],
) -> u64 {
    debug_assert_eq!(
        positions.len(),
        out.len(),
        "one output column per projected position"
    );
    let mut appended = 0u64;
    for tuple in iter {
        for (column, &position) in out.iter_mut().zip(positions) {
            column.push(tuple[position].clone());
        }
        appended += 1;
    }
    appended
}

/// Check one index bucket against its constraint's cardinality bound: count the
/// distinct `Y`-projections among the bucket's rows and record a
/// [`ConstraintViolation`] if they exceed `allowed`. Shared by the unsharded and
/// sharded validators — a key's full bucket lives in exactly one index either way, so
/// both see every key exactly once.
pub(crate) fn check_bucket(
    rows: &[Row],
    y_attrs: &[usize],
    constraint_index: usize,
    allowed: u64,
    key: &Row,
    offsets: &[u32],
    violations: &mut Vec<ConstraintViolation>,
) {
    let mut ys: Vec<Row> = offsets
        .iter()
        .map(|&o| crate::relation::Relation::project(&rows[o as usize], y_attrs))
        .collect();
    ys.sort();
    ys.dedup();
    if ys.len() as u64 > allowed {
        violations.push(ConstraintViolation {
            constraint_index,
            key: key.clone(),
            observed: ys.len() as u64,
            allowed,
        });
    }
}

/// Borrowing iterator over the tuples an index lookup matched; see
/// [`IndexedDatabase::fetch_iter`].
#[derive(Debug, Clone)]
pub struct FetchIter<'a> {
    rows: &'a [Row],
    offsets: std::slice::Iter<'a, u32>,
}

impl<'a> FetchIter<'a> {
    /// Wrap a relation's rows and an index posting list — shared with the sharded
    /// store, whose per-shard indexes produce the same iterators.
    pub(crate) fn new(rows: &'a [Row], offsets: std::slice::Iter<'a, u32>) -> Self {
        Self { rows, offsets }
    }
}

impl<'a> Iterator for FetchIter<'a> {
    type Item = &'a Row;

    fn next(&mut self) -> Option<&'a Row> {
        self.offsets
            .next()
            .map(|&offset| &self.rows[offset as usize])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.offsets.size_hint()
    }
}

impl ExactSizeIterator for FetchIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::access::AccessConstraint;
    use bea_core::schema::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c
    }

    fn sample_db() -> Database {
        let mut db = Database::new(catalog());
        db.extend(
            "R",
            [
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(11)],
                vec![Value::int(2), Value::int(20)],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn build_fetch_and_validate() {
        let c = catalog();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 2).unwrap()
            ]);
        let idb = IndexedDatabase::build(sample_db(), schema).unwrap();
        assert_eq!(idb.size(), 3);
        let rows = idb.fetch(0, &[Value::int(1)]).unwrap();
        assert_eq!(rows.len(), 2);
        let rows = idb.fetch(0, &[Value::int(9)]).unwrap();
        assert!(rows.is_empty());
        assert!(idb.satisfies_schema());
        let (db, schema) = idb.into_parts();
        assert_eq!(db.size(), 3);
        assert_eq!(schema.len(), 1);
    }

    #[test]
    fn validation_reports_violations() {
        let c = catalog();
        let tight =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 1).unwrap()
            ]);
        let idb = IndexedDatabase::build(sample_db(), tight).unwrap();
        let violations = idb.validate();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].key, vec![Value::int(1)]);
        assert_eq!(violations[0].observed, 2);
        assert_eq!(violations[0].allowed, 1);
        assert!(!idb.satisfies_schema());
    }

    #[test]
    fn fetch_iter_matches_fetch() {
        let c = catalog();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 2).unwrap()
            ]);
        let idb = IndexedDatabase::build(sample_db(), schema).unwrap();
        let iter = idb.fetch_iter(0, &[Value::int(1)]).unwrap();
        assert_eq!(iter.len(), 2);
        let via_iter: Vec<&Row> = iter.collect();
        let via_fetch = idb.fetch(0, &[Value::int(1)]).unwrap();
        assert_eq!(via_iter, via_fetch);
        // Missing keys yield an empty, zero-length iterator — not an error.
        let mut empty = idb.fetch_iter(0, &[Value::int(9)]).unwrap();
        assert_eq!(empty.len(), 0);
        assert!(empty.next().is_none());
        // The same argument errors apply as for `fetch`.
        assert!(idb.fetch_iter(7, &[Value::int(1)]).is_err());
        assert!(idb.fetch_iter(0, &[]).is_err());
    }

    #[test]
    fn fetch_into_columns_matches_fetch_iter() {
        let c = catalog();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 2).unwrap()
            ]);
        let idb = IndexedDatabase::build(sample_db(), schema).unwrap();
        // Project (b, a) — positions in a caller-chosen order, including a swap.
        let mut cols: Vec<Vec<Value>> = vec![Vec::new(), Vec::new()];
        let appended = idb
            .fetch_into_columns(0, &[Value::int(1)], &[1, 0], &mut cols)
            .unwrap();
        assert_eq!(appended, 2);
        assert_eq!(cols[0], vec![Value::int(10), Value::int(11)]);
        assert_eq!(cols[1], vec![Value::int(1), Value::int(1)]);
        // Appends accumulate: a second key extends the same columns.
        let appended = idb
            .fetch_into_columns(0, &[Value::int(2)], &[1, 0], &mut cols)
            .unwrap();
        assert_eq!(appended, 1);
        assert_eq!(cols[0].len(), 3);
        assert_eq!(cols[1][2], Value::int(2));
        // Missing keys append nothing; argument errors mirror `fetch_iter`.
        assert_eq!(
            idb.fetch_into_columns(0, &[Value::int(9)], &[0], &mut [Vec::new()])
                .unwrap(),
            0
        );
        assert!(idb
            .fetch_into_columns(7, &[Value::int(1)], &[0], &mut [Vec::new()])
            .is_err());
    }

    #[test]
    fn fetch_errors() {
        let c = catalog();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 2).unwrap()
            ]);
        let idb = IndexedDatabase::build(sample_db(), schema).unwrap();
        assert!(idb.fetch(7, &[Value::int(1)]).is_err());
        assert!(idb.fetch(0, &[]).is_err());
    }

    #[test]
    fn build_rejects_bad_schema() {
        let mut other = Catalog::new();
        other.declare("S", ["x"]).unwrap();
        let bad =
            AccessSchema::from_constraints([AccessConstraint::new(&other, "S", &["x"], &["x"], 1)
                .unwrap_or_else(|_| {
                    AccessConstraint::from_positions("S", vec![0], vec![1], 1).unwrap()
                })]);
        assert!(IndexedDatabase::build(sample_db(), bad).is_err());
    }

    #[test]
    fn empty_key_constraint_fetches_everything() {
        let c = catalog();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &[], &["a"], 5).unwrap()
            ]);
        let idb = IndexedDatabase::build(sample_db(), schema).unwrap();
        let rows = idb.fetch(0, &[]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(idb.satisfies_schema());
    }
}

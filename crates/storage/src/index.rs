//! Hash indexes on attribute subsets.
//!
//! An access constraint `R(X → Y, N)` requires "an index on `X` for `Y` that, given an
//! `X`-value `ā`, retrieves `D_Y(X = ā)`". [`HashIndex`] implements it as a hash map from
//! `X`-projections to the offsets of the matching tuples; the full tuples stay in the
//! relation, so one index costs `O(|R|)` offsets regardless of how many constraints share
//! the relation.

use crate::relation::Relation;
use bea_core::value::{Row, Value};
use std::collections::HashMap;

/// A hash index over one relation, keyed on a set of attribute positions.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    key_attrs: Vec<usize>,
    buckets: HashMap<Row, Vec<u32>>,
}

impl HashIndex {
    /// Build an index on `key_attrs` (sorted attribute positions) over a relation.
    pub fn build(relation: &Relation, key_attrs: &[usize]) -> Self {
        let mut buckets: HashMap<Row, Vec<u32>> = HashMap::new();
        for (i, row) in relation.rows().iter().enumerate() {
            let key = Relation::project(row, key_attrs);
            buckets.entry(key).or_default().push(i as u32);
        }
        Self {
            key_attrs: key_attrs.to_vec(),
            buckets,
        }
    }

    /// Wrap pre-routed buckets as an index — the constructor the sharded store uses
    /// after splitting a relation's postings by key hash. Each bucket must hold the
    /// *full* posting list of its key (a key never spans buckets of different indexes).
    pub(crate) fn from_buckets(key_attrs: Vec<usize>, buckets: HashMap<Row, Vec<u32>>) -> Self {
        Self { key_attrs, buckets }
    }

    /// The attribute positions forming the key.
    pub fn key_attrs(&self) -> &[usize] {
        &self.key_attrs
    }

    /// Offsets of the tuples whose key equals `key` (empty if none).
    pub fn lookup(&self, key: &[Value]) -> &[u32] {
        self.buckets.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.buckets.len()
    }

    /// The largest bucket size: the observed cardinality `max_ā |{t : t[X] = ā}|`.
    pub fn max_bucket_len(&self) -> usize {
        self.buckets.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterate over `(key, offsets)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (&Row, &[u32])> {
        self.buckets.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::schema::RelationSchema;
    use bea_core::value::Value;

    fn relation() -> Relation {
        let mut r = Relation::new(RelationSchema::new("R", ["a", "b", "c"]).unwrap());
        r.extend([
            vec![Value::int(1), Value::str("x"), Value::int(10)],
            vec![Value::int(1), Value::str("y"), Value::int(20)],
            vec![Value::int(2), Value::str("x"), Value::int(30)],
        ])
        .unwrap();
        r
    }

    #[test]
    fn build_and_lookup() {
        let r = relation();
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.key_attrs(), &[0]);
        assert_eq!(idx.num_keys(), 2);
        assert_eq!(idx.lookup(&[Value::int(1)]).len(), 2);
        assert_eq!(idx.lookup(&[Value::int(2)]), &[2]);
        assert!(idx.lookup(&[Value::int(9)]).is_empty());
        assert_eq!(idx.max_bucket_len(), 2);
    }

    #[test]
    fn composite_key() {
        let r = relation();
        let idx = HashIndex::build(&r, &[0, 1]);
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.lookup(&[Value::int(1), Value::str("y")]), &[1]);
        assert_eq!(idx.buckets().count(), 3);
    }

    #[test]
    fn empty_key_groups_everything() {
        let r = relation();
        let idx = HashIndex::build(&r, &[]);
        assert_eq!(idx.num_keys(), 1);
        assert_eq!(idx.lookup(&[]).len(), 3);
        assert_eq!(idx.max_bucket_len(), 3);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::new(RelationSchema::new("R", ["a"]).unwrap());
        let idx = HashIndex::build(&r, &[0]);
        assert_eq!(idx.num_keys(), 0);
        assert_eq!(idx.max_bucket_len(), 0);
    }
}

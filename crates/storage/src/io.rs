//! Minimal tab-separated import/export of database instances.
//!
//! One file per relation (`<name>.tsv`), one line per tuple, values separated by tabs.
//! Integers and booleans are written in their natural form and re-parsed on load; every
//! other field is read back as a string. Tabs and newlines inside strings are escaped.
//! This is intentionally small: it exists so generated workloads can be persisted and
//! inspected, not to compete with real formats.

use crate::database::Database;
use bea_core::error::{Error, Result};
use bea_core::schema::Catalog;
use bea_core::value::{Row, Value};
use std::fs;
use std::io::Write;
use std::path::Path;

fn escape(field: &str) -> String {
    field
        .replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape(field: &str) -> String {
    let mut out = String::with_capacity(field.len());
    let mut chars = field.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn render(value: &Value) -> String {
    match value {
        Value::Int(i) => format!("i:{i}"),
        Value::Str(s) => format!("s:{}", escape(s)),
        Value::Bool(b) => format!("b:{b}"),
        Value::Labelled(n) => format!("l:{n}"),
    }
}

fn parse(field: &str) -> Result<Value> {
    let Some((tag, rest)) = field.split_once(':') else {
        return Err(Error::invalid(format!("malformed value field `{field}`")));
    };
    match tag {
        "i" => rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::invalid(format!("malformed integer `{rest}`"))),
        "s" => Ok(Value::Str(unescape(rest).into())),
        "b" => rest
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|_| Error::invalid(format!("malformed boolean `{rest}`"))),
        "l" => rest
            .parse::<u32>()
            .map(Value::Labelled)
            .map_err(|_| Error::invalid(format!("malformed labelled null `{rest}`"))),
        other => Err(Error::invalid(format!("unknown value tag `{other}`"))),
    }
}

/// Write every relation of the database to `<dir>/<relation>.tsv`.
pub fn write_tsv(database: &Database, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).map_err(|e| Error::invalid(format!("cannot create {dir:?}: {e}")))?;
    for relation in database.relations() {
        let path = dir.join(format!("{}.tsv", relation.name()));
        let mut file = fs::File::create(&path)
            .map_err(|e| Error::invalid(format!("cannot create {path:?}: {e}")))?;
        for row in relation.rows() {
            let line: Vec<String> = row.iter().map(render).collect();
            writeln!(file, "{}", line.join("\t"))
                .map_err(|e| Error::invalid(format!("cannot write {path:?}: {e}")))?;
        }
    }
    Ok(())
}

/// Read a database for `catalog` from `<dir>/<relation>.tsv` files (missing files are
/// treated as empty relations).
pub fn read_tsv(catalog: &Catalog, dir: impl AsRef<Path>) -> Result<Database> {
    let dir = dir.as_ref();
    let mut database = Database::new(catalog.clone());
    for schema in catalog.relations() {
        let path = dir.join(format!("{}.tsv", schema.name()));
        let Ok(contents) = fs::read_to_string(&path) else {
            continue;
        };
        let mut rows: Vec<Row> = Vec::new();
        for (lineno, line) in contents.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let row: Result<Row> = line.split('\t').map(parse).collect();
            let row = row.map_err(|e| Error::invalid(format!("{path:?}:{}: {e}", lineno + 1)))?;
            rows.push(row);
        }
        database.extend(schema.name(), rows)?;
    }
    Ok(database)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("Empty", ["x"]).unwrap();
        let mut db = Database::new(c);
        db.extend(
            "R",
            [
                vec![Value::int(-3), Value::str("with\ttab and\nnewline")],
                vec![Value::Bool(true), Value::Labelled(7)],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn round_trip() {
        let db = sample();
        let dir = std::env::temp_dir().join(format!("bea_io_test_{}", std::process::id()));
        write_tsv(&db, &dir).unwrap();
        let loaded = read_tsv(db.catalog(), &dir).unwrap();
        assert_eq!(
            loaded.relation("R").unwrap().rows(),
            db.relation("R").unwrap().rows()
        );
        assert!(loaded.relation("Empty").unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn value_rendering_round_trips() {
        for v in [
            Value::int(42),
            Value::str("plain"),
            Value::str("tab\tand\\slash"),
            Value::Bool(false),
            Value::Labelled(3),
        ] {
            assert_eq!(parse(&render(&v)).unwrap(), v);
        }
    }

    #[test]
    fn malformed_fields_are_rejected() {
        assert!(parse("notag").is_err());
        assert!(parse("i:abc").is_err());
        assert!(parse("b:maybe").is_err());
        assert!(parse("l:-1").is_err());
        assert!(parse("z:1").is_err());
    }
}

//! A sharded indexed store: the access-constraint indexes partitioned by key ranges.
//!
//! [`ShardedDatabase`] partitions *each constraint's index* — not the relations — into
//! `shard_count` shards by a deterministic hash of the constraint key ([`shard_of`]).
//! Every key, and hence every posting list, lives wholly inside exactly one shard, so:
//!
//! * a fetch for key `ā` probes only the shard that owns `ā` — boundedness survives
//!   partitioning, because the set of `(constraint, key)` lookups a bounded plan
//!   performs is unchanged and each lookup touches one shard;
//! * the per-key result (tuples *and* their order) is identical to the unsharded
//!   [`IndexedDatabase`], because a shard's buckets are built by the same procedure
//!   over the key's full posting list;
//! * `shard_count = 1` reproduces today's [`IndexedDatabase`] exactly: one shard owns
//!   every key and its index equals the unsharded one.
//!
//! Routing is a pure function of the key values ([`shard_of`] — FNV-1a over an
//! explicit little-endian value serialization, so it is platform-, process- and
//! run-independent), shared with `bea-engine`: physical plans
//! lowered with shard fan-out tag each per-shard fetch branch with a
//! `ShardRoute { shard, of }`, and the executor filters probe keys with the same
//! function, so the store and the plan can never disagree about ownership.
//!
//! [`Store`] is the executor-facing handle over either store flavor; fetches through it
//! additionally report the shard that served them, which is what makes per-shard access
//! accounting (`AccessStats::rows_fetched_by_shard` in `bea-engine`) possible.

use crate::database::Database;
use crate::index::HashIndex;
use crate::indexed::{
    append_projected, check_bucket, ConstraintViolation, FetchIter, IndexedDatabase,
};
use crate::relation::Relation;
use bea_core::access::AccessSchema;
use bea_core::error::{Error, Result};
use bea_core::value::{Row, Value};
use std::collections::HashMap;

/// Environment variable naming the default shard count test suites build their sharded
/// stores with (the CI matrix runs the suite at `BEA_SHARDS=1` and `BEA_SHARDS=4`).
pub const SHARDS_ENV: &str = "BEA_SHARDS";

/// The shard count named by [`SHARDS_ENV`], defaulting to 1 (unsharded) when the
/// variable is unset or empty. A set-but-invalid value (`BEA_SHARDS=four`,
/// `BEA_SHARDS=0`) panics with the rejection reason instead of silently running
/// unsharded — a CI matrix typo must fail the job, not quietly test the wrong
/// configuration.
pub fn shards_from_env() -> u32 {
    bea_core::env::read_env(SHARDS_ENV, parse_shards).unwrap_or(1)
}

/// Parse a [`SHARDS_ENV`] value: a positive integer, with surrounding whitespace
/// tolerated and the empty string treated as unset (the `BEA_SHARDS= cmd` shell
/// idiom). Built on the shared [`bea_core::env`] contract, and kept a pure function
/// so the rejection rules are testable without mutating the process environment
/// (which would race parallel tests). Unlike the "zero means automatic" knobs,
/// `BEA_SHARDS=0` is rejected: a sharded store needs at least one shard.
pub fn parse_shards(value: &str) -> std::result::Result<u32, String> {
    use bea_core::env::EnvCount;
    match bea_core::env::parse_count(value) {
        Err(_) => Err(format!(
            "expected a positive integer, got {:?}",
            value.trim()
        )),
        Ok(EnvCount::Unset) => Ok(1),
        Ok(EnvCount::Zero) => Err("a sharded store needs at least 1 shard".to_owned()),
        Ok(EnvCount::Count(shards)) => {
            u32::try_from(shards).map_err(|_| format!("shard count {shards} does not fit in u32"))
        }
    }
}

/// FNV-1a, written out so shard routing does not depend on the standard library's
/// hasher (which is explicitly allowed to change between releases). Values are fed in
/// as an explicit little-endian byte serialization ([`Fnv1a::write_value`]) rather
/// than through `Value`'s derived `Hash` impl, whose integer writes are native-endian
/// — routing must give the same answer on every host, since the ROADMAP's distributed
/// follow-on puts the builder and the prober of a shard in different processes.
struct Fnv1a(u64);

impl Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Feed one value: a variant tag byte, then the payload in a fixed-width
    /// little-endian (or raw UTF-8) form, so equal values hash equally on any
    /// platform and unequal values of different variants cannot collide by layout.
    fn write_value(&mut self, value: &Value) {
        match value {
            Value::Int(i) => {
                self.write(&[0]);
                self.write(&i.to_le_bytes());
            }
            Value::Str(s) => {
                self.write(&[1]);
                self.write(s.as_bytes());
                // Length terminator: distinguishes ["ab","c"] from ["a","bc"].
                self.write(&(s.len() as u64).to_le_bytes());
            }
            Value::Bool(b) => self.write(&[2, u8::from(*b)]),
            Value::Labelled(l) => {
                self.write(&[3]);
                self.write(&l.to_le_bytes());
            }
        }
    }
}

/// The shard that owns `key` under `shard_count` shards: a deterministic,
/// platform-independent hash of the key values modulo the shard count.
/// `shard_count <= 1` always routes to shard 0. Shared by index construction
/// ([`ShardedDatabase::build`]) and the executor's per-shard key filters, which must
/// agree exactly.
pub fn shard_of<'v>(key: impl IntoIterator<Item = &'v Value>, shard_count: u32) -> u32 {
    if shard_count <= 1 {
        return 0;
    }
    let mut hasher = Fnv1a(0xCBF2_9CE4_8422_2325);
    for value in key {
        hasher.write_value(value);
    }
    (hasher.0 % u64::from(shard_count)) as u32
}

/// A database instance whose access-constraint indexes are partitioned into
/// `shard_count` shards by [`shard_of`] over the constraint key. See the module docs
/// for the layout and the routing rules.
#[derive(Debug, Clone)]
pub struct ShardedDatabase {
    database: Database,
    schema: AccessSchema,
    shard_count: u32,
    /// `shards[constraint][shard]`: the slice of constraint `constraint`'s index whose
    /// keys route to `shard`.
    shards: Vec<Vec<HashIndex>>,
}

impl ShardedDatabase {
    /// Build the sharded indexes required by the access schema over the database.
    ///
    /// Every tuple of a constrained relation is routed by the [`shard_of`] hash of its
    /// key projection, so a key's full posting list lands in one shard, in row order —
    /// exactly the bucket the unsharded [`IndexedDatabase`] would build.
    pub fn build(database: Database, schema: AccessSchema, shard_count: u32) -> Result<Self> {
        if shard_count == 0 {
            return Err(Error::invalid(
                "a sharded database needs at least one shard".to_owned(),
            ));
        }
        schema.validate(database.catalog())?;
        let mut shards = Vec::with_capacity(schema.len());
        for constraint in schema.constraints() {
            let relation = database.relation(constraint.relation())?;
            let mut buckets: Vec<HashMap<Row, Vec<u32>>> =
                (0..shard_count).map(|_| HashMap::new()).collect();
            for (offset, row) in relation.rows().iter().enumerate() {
                let key = Relation::project(row, constraint.x());
                let shard = shard_of(key.iter(), shard_count);
                buckets[shard as usize]
                    .entry(key)
                    .or_default()
                    .push(offset as u32);
            }
            shards.push(
                buckets
                    .into_iter()
                    .map(|b| HashIndex::from_buckets(constraint.x().to_vec(), b))
                    .collect(),
            );
        }
        Ok(Self {
            database,
            schema,
            shard_count,
            shards,
        })
    }

    /// Convenience: shard an existing [`IndexedDatabase`]'s data into `shard_count`
    /// shards (clones the database and schema; the unsharded indexes are rebuilt as
    /// shards).
    pub fn shard(indexed: &IndexedDatabase, shard_count: u32) -> Result<Self> {
        Self::build(
            indexed.database().clone(),
            indexed.schema().clone(),
            shard_count,
        )
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The access schema whose indexes are materialized.
    pub fn schema(&self) -> &AccessSchema {
        &self.schema
    }

    /// Total number of tuples `|D|`.
    pub fn size(&self) -> u64 {
        self.database.size()
    }

    /// Number of shards each constraint's index is partitioned into.
    pub fn shard_count(&self) -> u32 {
        self.shard_count
    }

    /// The shard that owns `key` (for any constraint — routing depends only on the key
    /// values and the shard count).
    pub fn shard_of_key(&self, key: &[Value]) -> u32 {
        shard_of(key.iter(), self.shard_count)
    }

    /// Postings stored per shard for one constraint's index — how evenly the hash
    /// spread the key space, for experiments and balance checks.
    pub fn postings_per_shard(&self, constraint_index: usize) -> Option<Vec<u64>> {
        self.shards.get(constraint_index).map(|shards| {
            shards
                .iter()
                .map(|index| {
                    index
                        .buckets()
                        .map(|(_, offsets)| offsets.len() as u64)
                        .sum()
                })
                .collect()
        })
    }

    /// Resolve a fetch's constraint and key the same way [`IndexedDatabase`] does,
    /// returning the backing relation and the owning shard.
    fn resolve(&self, constraint_index: usize, key: &[Value]) -> Result<(&Relation, u32)> {
        let constraint =
            self.schema
                .constraint(constraint_index)
                .ok_or_else(|| Error::MissingConstraint {
                    reason: format!("no access constraint with index {constraint_index}"),
                })?;
        if key.len() != constraint.x().len() {
            return Err(Error::invalid(format!(
                "fetch key has {} values but constraint {constraint_index} expects {}",
                key.len(),
                constraint.x().len()
            )));
        }
        let relation = self.database.relation(constraint.relation())?;
        Ok((relation, shard_of(key.iter(), self.shard_count)))
    }

    /// Borrowing fetch through the owning shard's index: iterate over the tuples whose
    /// `X`-projection equals `key`, plus the shard that served them. The iterator is
    /// identical (tuples and order) to [`IndexedDatabase::fetch_iter`] — sharding
    /// changes *where* a posting list lives, never its contents.
    pub fn fetch_iter(
        &self,
        constraint_index: usize,
        key: &[Value],
    ) -> Result<(FetchIter<'_>, u32)> {
        let (relation, shard) = self.resolve(constraint_index, key)?;
        let index = &self.shards[constraint_index][shard as usize];
        Ok((
            FetchIter::new(relation.rows(), index.lookup(key).iter()),
            shard,
        ))
    }

    /// Columnar fetch through the owning shard's index: append, for every tuple whose
    /// `X`-projection equals `key`, the values at `positions` into the corresponding
    /// output columns. Returns the number of tuples appended and the serving shard.
    /// Mirrors [`IndexedDatabase::fetch_into_columns`] exactly.
    pub fn fetch_into_columns(
        &self,
        constraint_index: usize,
        key: &[Value],
        positions: &[usize],
        out: &mut [Vec<Value>],
    ) -> Result<(u64, u32)> {
        let (iter, shard) = self.fetch_iter(constraint_index, key)?;
        Ok((append_projected(iter, positions, out), shard))
    }

    /// Check the cardinality part of every constraint over the sharded indexes: does
    /// `D ⊨ A` hold? Each key's bucket lives wholly inside one shard, so checking
    /// shard by shard sees every key exactly once.
    pub fn validate(&self) -> Vec<ConstraintViolation> {
        let db_size = self.size();
        let mut violations = Vec::new();
        for (ci, constraint) in self.schema.constraints().iter().enumerate() {
            let allowed = constraint.cardinality().bound(db_size);
            let relation = match self.database.relation(constraint.relation()) {
                Ok(r) => r,
                Err(_) => continue,
            };
            for index in &self.shards[ci] {
                for (key, offsets) in index.buckets() {
                    check_bucket(
                        relation.rows(),
                        constraint.y(),
                        ci,
                        allowed,
                        key,
                        offsets,
                        &mut violations,
                    );
                }
            }
        }
        violations
    }

    /// Convenience: `true` iff [`ShardedDatabase::validate`] reports no violation.
    pub fn satisfies_schema(&self) -> bool {
        self.validate().is_empty()
    }
}

/// Executor-facing handle over either store flavor. `Copy` on purpose: operators hold
/// one per fetch and a handle is two words.
///
/// Fetches through a `Store` report the shard that served them (always 0 for the
/// unsharded [`IndexedDatabase`]), which feeds the per-shard access accounting in
/// `bea-engine`.
#[derive(Debug, Clone, Copy)]
pub enum Store<'a> {
    /// The unsharded store: one index per constraint.
    Indexed(&'a IndexedDatabase),
    /// The sharded store: `shard_count` index partitions per constraint.
    Sharded(&'a ShardedDatabase),
}

impl<'a> Store<'a> {
    /// The underlying database.
    pub fn database(&self) -> &'a Database {
        match self {
            Store::Indexed(db) => db.database(),
            Store::Sharded(db) => db.database(),
        }
    }

    /// The access schema whose indexes are materialized.
    pub fn schema(&self) -> &'a AccessSchema {
        match self {
            Store::Indexed(db) => db.schema(),
            Store::Sharded(db) => db.schema(),
        }
    }

    /// Total number of tuples `|D|`.
    pub fn size(&self) -> u64 {
        self.database().size()
    }

    /// Number of shards: 1 for the unsharded store. Physical lowering fans keyed
    /// fetches out to this many per-shard branches.
    pub fn shard_count(&self) -> u32 {
        match self {
            Store::Indexed(_) => 1,
            Store::Sharded(db) => db.shard_count(),
        }
    }

    /// Borrowing fetch plus the serving shard; see [`ShardedDatabase::fetch_iter`].
    pub fn fetch_iter(
        &self,
        constraint_index: usize,
        key: &[Value],
    ) -> Result<(FetchIter<'a>, u32)> {
        match self {
            Store::Indexed(db) => Ok((db.fetch_iter(constraint_index, key)?, 0)),
            Store::Sharded(db) => db.fetch_iter(constraint_index, key),
        }
    }

    /// Columnar fetch plus the serving shard; see
    /// [`ShardedDatabase::fetch_into_columns`].
    pub fn fetch_into_columns(
        &self,
        constraint_index: usize,
        key: &[Value],
        positions: &[usize],
        out: &mut [Vec<Value>],
    ) -> Result<(u64, u32)> {
        match self {
            Store::Indexed(db) => Ok((
                db.fetch_into_columns(constraint_index, key, positions, out)?,
                0,
            )),
            Store::Sharded(db) => db.fetch_into_columns(constraint_index, key, positions, out),
        }
    }
}

impl<'a> From<&'a IndexedDatabase> for Store<'a> {
    fn from(database: &'a IndexedDatabase) -> Self {
        Store::Indexed(database)
    }
}

impl<'a> From<&'a ShardedDatabase> for Store<'a> {
    fn from(database: &'a ShardedDatabase) -> Self {
        Store::Sharded(database)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::access::AccessConstraint;
    use bea_core::schema::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c
    }

    fn sample_db() -> Database {
        let mut db = Database::new(catalog());
        db.extend(
            "R",
            (0..64).map(|i| vec![Value::int(i % 16), Value::int(i)]),
        )
        .unwrap();
        db
    }

    fn schema() -> AccessSchema {
        let c = catalog();
        AccessSchema::from_constraints([AccessConstraint::new(&c, "R", &["a"], &["b"], 8).unwrap()])
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for count in [1u32, 2, 3, 8] {
            for i in 0..32i64 {
                let key = [Value::int(i)];
                let s = shard_of(key.iter(), count);
                assert!(s < count);
                assert_eq!(s, shard_of(key.iter(), count), "routing must be stable");
            }
        }
        // shard_count <= 1 always routes to shard 0, including the empty key.
        assert_eq!(shard_of([].iter(), 1), 0);
        assert_eq!(shard_of([Value::str("x")].iter(), 1), 0);
        // With several shards, 16 distinct keys should not all pile onto one shard.
        let spread: std::collections::BTreeSet<u32> = (0..16)
            .map(|i| shard_of([Value::int(i)].iter(), 4))
            .collect();
        assert!(spread.len() >= 2, "hash routing degenerated to one shard");
    }

    #[test]
    fn shard_env_values_are_validated() {
        assert_eq!(parse_shards("1").unwrap(), 1);
        assert_eq!(parse_shards(" 4 ").unwrap(), 4);
        assert_eq!(parse_shards("").unwrap(), 1, "empty means unset");
        assert_eq!(parse_shards("  ").unwrap(), 1, "blank means unset");
        // The silent-fallback bug: `BEA_SHARDS=four` used to run unsharded without
        // a word. Every malformed value must now carry a rejection reason.
        assert!(parse_shards("four")
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse_shards("0").unwrap_err().contains("at least 1"));
        assert!(parse_shards("-2").is_err());
        assert!(parse_shards("4 shards").is_err());
        // Whatever the CI matrix set for this process must itself be valid — the
        // panic path cannot be exercised here without racing parallel tests on the
        // process environment, which is exactly why the parser is a pure function.
        match std::env::var(SHARDS_ENV) {
            Err(_) => assert_eq!(shards_from_env(), 1),
            Ok(value) => assert_eq!(shards_from_env(), parse_shards(&value).unwrap()),
        }
    }

    #[test]
    fn one_shard_reproduces_the_indexed_database_exactly() {
        let idb = IndexedDatabase::build(sample_db(), schema()).unwrap();
        let sdb = ShardedDatabase::shard(&idb, 1).unwrap();
        assert_eq!(sdb.shard_count(), 1);
        for key in 0..20i64 {
            let key = vec![Value::int(key)];
            let unsharded: Vec<&Row> = idb.fetch_iter(0, &key).unwrap().collect();
            let (iter, shard) = sdb.fetch_iter(0, &key).unwrap();
            assert_eq!(shard, 0);
            let sharded: Vec<&Row> = iter.collect();
            assert_eq!(unsharded, sharded, "tuples and order must match");
        }
    }

    #[test]
    fn sharded_fetches_match_unsharded_per_key() {
        let idb = IndexedDatabase::build(sample_db(), schema()).unwrap();
        for count in [2u32, 3, 8] {
            let sdb = ShardedDatabase::shard(&idb, count).unwrap();
            assert!(sdb.satisfies_schema());
            for key in 0..20i64 {
                let key = vec![Value::int(key)];
                let unsharded: Vec<&Row> = idb.fetch_iter(0, &key).unwrap().collect();
                let (iter, shard) = sdb.fetch_iter(0, &key).unwrap();
                assert_eq!(shard, sdb.shard_of_key(&key));
                let sharded: Vec<&Row> = iter.collect();
                assert_eq!(unsharded, sharded);

                let mut cols: Vec<Vec<Value>> = vec![Vec::new(), Vec::new()];
                let (appended, shard2) =
                    sdb.fetch_into_columns(0, &key, &[1, 0], &mut cols).unwrap();
                assert_eq!(shard2, shard);
                assert_eq!(appended as usize, unsharded.len());
            }
            // Every posting lands in exactly one shard; together they cover R.
            let per_shard = sdb.postings_per_shard(0).unwrap();
            assert_eq!(per_shard.len(), count as usize);
            assert_eq!(per_shard.iter().sum::<u64>(), 64);
            if count >= 2 {
                assert!(
                    per_shard.iter().filter(|&&n| n > 0).count() >= 2,
                    "16 keys across {count} shards should occupy at least two"
                );
            }
        }
    }

    #[test]
    fn validation_sees_violations_through_shards() {
        let c = catalog();
        let tight =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 1).unwrap()
            ]);
        let sdb = ShardedDatabase::build(sample_db(), tight, 4).unwrap();
        // Every key of R has 4 distinct b-values; the bound of 1 is violated 16 times.
        assert_eq!(sdb.validate().len(), 16);
        assert!(!sdb.satisfies_schema());
    }

    #[test]
    fn fetch_errors_mirror_the_indexed_store() {
        let sdb = ShardedDatabase::build(sample_db(), schema(), 4).unwrap();
        assert!(sdb.fetch_iter(7, &[Value::int(1)]).is_err());
        assert!(sdb.fetch_iter(0, &[]).is_err());
        assert!(sdb
            .fetch_into_columns(7, &[Value::int(1)], &[0], &mut [Vec::new()])
            .is_err());
        // Missing keys are empty results, not errors.
        let (iter, _) = sdb.fetch_iter(0, &[Value::int(999)]).unwrap();
        assert_eq!(iter.len(), 0);
        // Zero shards is rejected at build time.
        assert!(ShardedDatabase::build(sample_db(), schema(), 0).is_err());
    }

    #[test]
    fn store_handle_unifies_both_flavors() {
        let idb = IndexedDatabase::build(sample_db(), schema()).unwrap();
        let sdb = ShardedDatabase::shard(&idb, 4).unwrap();
        let stores: [Store<'_>; 2] = [Store::from(&idb), Store::from(&sdb)];
        assert_eq!(stores[0].shard_count(), 1);
        assert_eq!(stores[1].shard_count(), 4);
        let key = vec![Value::int(3)];
        let mut results: Vec<Vec<Row>> = Vec::new();
        for store in stores {
            assert_eq!(store.size(), 64);
            assert_eq!(store.schema().len(), 1);
            assert_eq!(store.database().catalog().len(), 1);
            let (iter, shard) = store.fetch_iter(0, &key).unwrap();
            assert!(shard < store.shard_count());
            results.push(iter.cloned().collect());
            let mut cols: Vec<Vec<Value>> = vec![Vec::new()];
            let (appended, _) = store.fetch_into_columns(0, &key, &[1], &mut cols).unwrap();
            assert_eq!(appended as usize, results.last().unwrap().len());
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn shards_env_parsing() {
        // Only exercised when the variable is absent (the test runner may set it):
        // malformed values and zero fall back to 1 via the same code path.
        assert!(shards_from_env() >= 1);
    }
}

//! `beactl` — the one-shot client for the `bead` daemon.
//!
//! Serializes one request, prints the reply (head line, then body rows), and
//! exits `0` for `OK`, `3` for `REJECT`, `1` for `ERR` or a transport failure.

use bead::protocol::{Reply, ReplyStatus, Request};
use bead::server::socket_from;

const USAGE: &str = "usage: beactl [--socket PATH] <ping | query <datalog> | stats | shutdown>";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket_arg: Option<String> = None;
    if args.first().map(String::as_str) == Some("--socket") {
        if args.len() < 2 {
            eprintln!("beactl: --socket needs a value\n{USAGE}");
            std::process::exit(2);
        }
        socket_arg = Some(args.remove(1));
        args.remove(0);
    }
    let request = match args.first().map(String::as_str) {
        Some("ping") => Request::Ping,
        Some("stats") => Request::Stats,
        Some("shutdown") => Request::Shutdown,
        Some("query") => {
            let text = args[1..].join(" ");
            if text.trim().is_empty() {
                eprintln!("beactl: query needs a datalog rule\n{USAGE}");
                std::process::exit(2);
            }
            Request::Query(text)
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let socket = socket_from(socket_arg.as_deref());
    match bead::client::request(&socket, &request) {
        Ok(reply) => {
            print(&reply);
            std::process::exit(match reply.status() {
                ReplyStatus::Ok => 0,
                ReplyStatus::Reject => 3,
                ReplyStatus::Err => 1,
            });
        }
        Err(error) => {
            eprintln!("beactl: {}: {error}", socket.display());
            std::process::exit(1);
        }
    }
}

fn print(reply: &Reply) {
    println!("{}", reply.head);
    for line in &reply.body {
        println!("{line}");
    }
}

//! `bead` — the bounded-evaluability query daemon.
//!
//! Generates the accidents store of Example 1.1, binds a Unix socket, and serves
//! the line protocol until a `SHUTDOWN` request arrives. Prints `ready` once the
//! socket accepts connections so scripts can synchronize on stdout.

use bead::server::{accidents_store, socket_from, BeadServer, ServerConfig};

const USAGE: &str = "usage: bead [--socket PATH] [--tuples N] [--seed N] [--threads N] \
                     [--fetch-budget N] [--max-alloc-surface N] [--cache-rows N]";

fn main() {
    let mut socket_arg: Option<String> = None;
    let mut tuples: u64 = 5_000;
    let mut seed: u64 = 0xBEAD;
    let mut threads: usize = 0;
    let mut fetch_budget: u64 = 0;
    let mut max_alloc_surface: u64 = 0;
    let mut cache_rows: u64 = 0;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("bead: {flag} needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--socket" => socket_arg = Some(value("--socket")),
            "--tuples" => tuples = parse("--tuples", &value("--tuples")),
            "--seed" => seed = parse("--seed", &value("--seed")),
            "--threads" => threads = parse("--threads", &value("--threads")) as usize,
            "--fetch-budget" => fetch_budget = parse("--fetch-budget", &value("--fetch-budget")),
            "--max-alloc-surface" => {
                max_alloc_surface = parse("--max-alloc-surface", &value("--max-alloc-surface"));
            }
            "--cache-rows" => cache_rows = parse("--cache-rows", &value("--cache-rows")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("bead: unknown argument {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let socket = socket_from(socket_arg.as_deref());
    let store = match accidents_store(tuples, seed) {
        Ok(store) => store,
        Err(error) => {
            eprintln!("bead: store generation failed: {error}");
            std::process::exit(1);
        }
    };
    let config = ServerConfig {
        socket: socket.clone(),
        threads,
        fetch_budget,
        max_alloc_surface,
        cache_rows,
    };
    let server = match BeadServer::bind(store, &config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("bead: bind {} failed: {error}", socket.display());
            std::process::exit(1);
        }
    };
    println!(
        "bead: listening on {} (threads={} budget={})",
        socket.display(),
        server.threads(),
        server
            .fetch_budget()
            .map_or_else(|| "unlimited".to_owned(), |b| b.to_string()),
    );
    println!("ready");
    if let Err(error) = server.serve() {
        eprintln!("bead: serve failed: {error}");
        std::process::exit(1);
    }
    println!("bead: bye");
}

fn parse(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("bead: {flag} needs an unsigned integer, got {value:?}\n{USAGE}");
        std::process::exit(2);
    })
}

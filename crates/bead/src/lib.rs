//! # bead — the bounded-evaluability query service
//!
//! A thin daemon/client pair over [`bea_engine::session::Session`]: `bead` owns a
//! store and a multi-query worker pool behind a Unix domain socket, `beactl` is the
//! one-shot client. The split mirrors the classic `daemon`/`ctl` pattern: all state
//! lives in the daemon; the client serializes one request, prints the reply, and
//! exits with a status that scripts can branch on.
//!
//! The service exists because bounded evaluability makes admission control *exact*:
//! every query is priced by a [`bea_core::plan::CostTicket`] before it runs, so the
//! daemon can guarantee an aggregate worst-case fetch volume across everything it
//! admits — `REJECT` is a static verdict, not a timeout.
//!
//! ## Wire protocol
//!
//! Line-oriented text over a Unix socket. One request per line:
//!
//! ```text
//! PING
//! QUERY Q(d) :- Accident(x, d, t), x = 1.
//! STATS
//! SHUTDOWN
//! ```
//!
//! Every reply is a head line — `OK …`, `REJECT …` or `ERR …` — followed by zero or
//! more body lines (tab-separated result rows for `QUERY`), terminated by a line
//! holding exactly `END`:
//!
//! ```text
//! OK rows=1 fetch_bound=1 alloc_surface=4 tuples_fetched=1 values_cloned=3 allocs_per_probe=2
//! Queen's Park
//! END
//! ```
//!
//! A `QUERY` reply's head carries both halves of the cost story: the *priced*
//! quantities the admission controller judged (`fetch_bound`, `alloc_surface`) and
//! the *measured* execution counters (`tuples_fetched`, `values_cloned`,
//! `allocs_per_probe`), so a client can verify that the bound held — measured fetches
//! never exceed the bound. A rejected query answers
//! `REJECT query=… fetch_bound=… budget=…` (or `surface=… limit=…` for the
//! allocation-surface veto) and nothing is executed.
//!
//! `beactl` exit codes: `0` for `OK`, `3` for `REJECT`, `1` for `ERR` or any
//! transport failure.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::request;
pub use protocol::{Reply, ReplyStatus, Request, END};
pub use server::{BeadServer, ServerConfig};

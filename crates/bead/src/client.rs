//! The client side: one connection, one request, one framed reply.

use crate::protocol::{Reply, Request, END};
use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Send one request to the daemon at `socket` and read its reply.
///
/// The write half is shut down after the request so the daemon sees EOF once it
/// has answered; the read loop stops at the [`END`] terminator line.
pub fn request(socket: &Path, request: &Request) -> std::io::Result<Reply> {
    let mut stream = UnixStream::connect(socket)?;
    stream.write_all(request.wire().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    stream.shutdown(Shutdown::Write)?;

    let reader = BufReader::new(stream);
    let mut lines = Vec::new();
    let mut terminated = false;
    for line in reader.lines() {
        let line = line?;
        if line == END {
            terminated = true;
            break;
        }
        lines.push(line);
    }
    if !terminated {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "the daemon closed the connection before the END terminator",
        ));
    }
    Reply::from_lines(lines)
        .map_err(|message| std::io::Error::new(std::io::ErrorKind::InvalidData, message))
}

//! The line-oriented wire protocol shared by the daemon and the client.

/// The reply terminator line.
pub const END: &str = "END";

/// One client request, one line on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered `OK pong`.
    Ping,
    /// Parse, price, admit and execute one datalog query.
    Query(String),
    /// Report the admission counters.
    Stats,
    /// Drain and stop the daemon; answered `OK bye`.
    Shutdown,
}

impl Request {
    /// The wire form of this request (no trailing newline).
    pub fn wire(&self) -> String {
        match self {
            Request::Ping => "PING".to_owned(),
            Request::Query(text) => format!("QUERY {}", text.replace('\n', " ")),
            Request::Stats => "STATS".to_owned(),
            Request::Shutdown => "SHUTDOWN".to_owned(),
        }
    }

    /// Parse one request line. The verb is case-sensitive (uppercase), everything
    /// after `QUERY ` is the query text verbatim.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        match line {
            "PING" => Ok(Request::Ping),
            "STATS" => Ok(Request::Stats),
            "SHUTDOWN" => Ok(Request::Shutdown),
            _ => match line.strip_prefix("QUERY") {
                Some(rest) if rest.is_empty() || rest.starts_with(char::is_whitespace) => {
                    let text = rest.trim_start();
                    if text.is_empty() {
                        Err("QUERY needs a datalog rule after the verb".to_owned())
                    } else {
                        Ok(Request::Query(text.to_owned()))
                    }
                }
                _ => Err(format!(
                    "unknown request {:?}; expected PING, QUERY <rule>, STATS or SHUTDOWN",
                    line.split_whitespace().next().unwrap_or("")
                )),
            },
        }
    }
}

/// The verdict class of a reply head line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyStatus {
    /// The request succeeded (`OK …`).
    Ok,
    /// The admission controller refused the query (`REJECT …`). Nothing executed.
    Reject,
    /// The request failed (`ERR …`).
    Err,
}

/// One reply: the head line plus the body lines (without the [`END`] terminator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The verdict line: `OK …`, `REJECT …` or `ERR …`.
    pub head: String,
    /// Body lines — tab-separated result rows for `QUERY` replies.
    pub body: Vec<String>,
}

impl Reply {
    /// An `OK` reply with a head suffix and a body.
    pub fn ok(head: impl std::fmt::Display, body: Vec<String>) -> Self {
        Reply {
            head: format!("OK {head}"),
            body,
        }
    }

    /// A bodyless `REJECT` reply.
    pub fn reject(head: impl std::fmt::Display) -> Self {
        Reply {
            head: format!("REJECT {head}"),
            body: Vec::new(),
        }
    }

    /// A bodyless `ERR` reply.
    pub fn err(message: impl std::fmt::Display) -> Self {
        Reply {
            // Errors stay one line so the framing survives arbitrary messages.
            head: format!("ERR {}", message.to_string().replace('\n', " ")),
            body: Vec::new(),
        }
    }

    /// Classify the head line.
    pub fn status(&self) -> ReplyStatus {
        if self.head.starts_with("OK") {
            ReplyStatus::Ok
        } else if self.head.starts_with("REJECT") {
            ReplyStatus::Reject
        } else {
            ReplyStatus::Err
        }
    }

    /// Serialize head, body and terminator for the wire.
    pub fn wire(&self) -> String {
        let mut out = String::with_capacity(self.head.len() + 16);
        out.push_str(&self.head);
        out.push('\n');
        for line in &self.body {
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(END);
        out.push('\n');
        out
    }

    /// Parse a reply from its wire lines (terminator already stripped by the
    /// reader). The first line is the head; the rest are body.
    pub fn from_lines(mut lines: Vec<String>) -> Result<Reply, String> {
        if lines.is_empty() {
            return Err("empty reply: the daemon closed the connection early".to_owned());
        }
        let body = lines.split_off(1);
        Ok(Reply {
            head: lines.pop().expect("checked non-empty"),
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        for request in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Query("Q(d) :- Accident(x, d, t), x = 1.".to_owned()),
        ] {
            assert_eq!(Request::parse(&request.wire()).unwrap(), request);
        }
        // Newlines in query text cannot smuggle extra protocol lines.
        let sneaky = Request::Query("Q(x) :- R(x, y).\nSHUTDOWN".to_owned());
        assert!(!sneaky.wire().contains('\n'));
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(Request::parse("NOPE")
            .unwrap_err()
            .contains("unknown request"));
        assert!(Request::parse("QUERY   ").unwrap_err().contains("datalog"));
        assert!(Request::parse("").is_err());
        // Verbs are uppercase; a lowercase ping is not a protocol line.
        assert!(Request::parse("ping").is_err());
    }

    #[test]
    fn replies_classify_and_frame() {
        let ok = Reply::ok("rows=2", vec!["a\tb".into(), "c\td".into()]);
        assert_eq!(ok.status(), ReplyStatus::Ok);
        assert_eq!(ok.wire(), "OK rows=2\na\tb\nc\td\nEND\n");
        assert_eq!(
            Reply::reject("query=Q fetch_bound=30 budget=10").status(),
            ReplyStatus::Reject
        );
        let err = Reply::err("parse failed:\nline 1");
        assert_eq!(err.status(), ReplyStatus::Err);
        assert!(!err.head.contains('\n'), "errors stay one line");
        let parsed =
            Reply::from_lines(vec!["OK rows=2".into(), "a\tb".into(), "c\td".into()]).unwrap();
        assert_eq!(parsed, ok);
        assert!(Reply::from_lines(Vec::new()).is_err());
    }
}

//! The daemon side: a [`Session`] behind a Unix-socket accept loop.

use crate::protocol::{Reply, Request};
use bea_core::plan::{bounded_plan, bounded_plan_ucq, QueryPlan};
use bea_core::query::Query;
use bea_core::reason::ReasonConfig;
use bea_engine::session::{Rejection, Session, SessionConfig, SharedStore, SubmitError};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Daemon configuration: where to listen and how to configure the session.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// The Unix socket path to bind. A stale socket file is removed first.
    pub socket: PathBuf,
    /// Worker threads (0 = automatic, `BEA_THREADS` / available parallelism).
    pub threads: usize,
    /// Aggregate fetch budget (0 = `BEA_FETCH_BUDGET`, else unlimited).
    pub fetch_budget: u64,
    /// Per-query allocation-surface cap (0 = no cap).
    pub max_alloc_surface: u64,
    /// Cross-query fetch-cache budget in resident posting rows
    /// (0 = `BEA_CACHE_ROWS`, else disabled).
    pub cache_rows: u64,
}

/// The daemon: a bound listener plus the session it fronts.
pub struct BeadServer {
    session: Session,
    listener: UnixListener,
    socket: PathBuf,
    store: SharedStore,
    shutdown: AtomicBool,
}

impl BeadServer {
    /// Bind the socket and start the session's worker pool over `store`.
    pub fn bind(store: SharedStore, config: &ServerConfig) -> std::io::Result<Self> {
        // A stale socket file from a dead daemon would make bind fail; a *live*
        // daemon holds the listener, so removing first is safe for the smoke
        // use-case this serves.
        let _ = std::fs::remove_file(&config.socket);
        let listener = UnixListener::bind(&config.socket)?;
        let session = Session::new(
            store.clone(),
            SessionConfig::new()
                .with_threads(config.threads)
                .with_fetch_budget(config.fetch_budget)
                .with_max_alloc_surface(config.max_alloc_surface)
                .with_cache_budget_rows(config.cache_rows),
        );
        Ok(BeadServer {
            session,
            listener,
            socket: config.socket.clone(),
            store,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The session's effective aggregate fetch budget (`None` = unlimited).
    pub fn fetch_budget(&self) -> Option<u64> {
        self.session.fetch_budget()
    }

    /// The session's worker-thread count.
    pub fn threads(&self) -> usize {
        self.session.threads()
    }

    /// Serve connections until a `SHUTDOWN` request arrives. Each connection gets
    /// its own scoped thread, so queries from concurrent clients genuinely
    /// interleave in the session's job queue.
    pub fn serve(&self) -> std::io::Result<()> {
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        scope.spawn(move || self.handle(stream));
                    }
                    Err(_) => continue,
                }
            }
        });
        let _ = std::fs::remove_file(&self.socket);
        Ok(())
    }

    /// Serve one connection: one request per line, one framed reply each.
    fn handle(&self, stream: UnixStream) {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let mut writer = write_half;
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let reply = match Request::parse(&line) {
                Ok(request) => self.dispatch(request),
                Err(message) => Reply::err(message),
            };
            if writer.write_all(reply.wire().as_bytes()).is_err() {
                break;
            }
            let _ = writer.flush();
            if self.shutdown.load(Ordering::Acquire) {
                // The SHUTDOWN reply is out; unblock the accept loop so `serve`
                // can observe the flag and exit.
                let _ = UnixStream::connect(&self.socket);
                break;
            }
        }
    }

    fn dispatch(&self, request: Request) -> Reply {
        match request {
            Request::Ping => Reply::ok("pong", Vec::new()),
            Request::Stats => {
                let stats = self.session.admission_stats();
                let cache = self.session.cache_stats();
                Reply::ok(
                    format!(
                        "submitted={} admitted={} queued={} rejected={} completed={} failed={} \
                         inflight_bound={} peak_admitted_bound={} budget={} cache_hits={} \
                         rows_served_from_cache={} cache_evictions={}",
                        stats.submitted,
                        stats.admitted,
                        stats.queued,
                        stats.rejected,
                        stats.completed,
                        stats.failed,
                        stats.inflight_bound,
                        stats.peak_admitted_bound,
                        stats
                            .budget
                            .map_or_else(|| "unlimited".to_owned(), |b| b.to_string()),
                        cache.hits,
                        cache.rows_served,
                        cache.evictions,
                    ),
                    Vec::new(),
                )
            }
            Request::Shutdown => {
                self.shutdown.store(true, Ordering::Release);
                Reply::ok("bye", Vec::new())
            }
            Request::Query(text) => self.run_query(&text),
        }
    }

    /// Parse → synthesize a bounded plan → submit → wait → format. Every failure
    /// mode maps to a distinct reply so clients can tell a syntax error from an
    /// uncovered query from an admission rejection.
    fn run_query(&self, text: &str) -> Reply {
        let store = self.store.store();
        let catalog = store.database().catalog();
        let query = match bea_parser::parse_query(catalog, text) {
            Ok(query) => query,
            Err(error) => return Reply::err(format!("parse: {error}")),
        };
        let plan: QueryPlan = match &query {
            Query::Cq(cq) => match bounded_plan(cq, store.schema()) {
                Ok(plan) => plan,
                Err(error) => return Reply::err(format!("plan: {error}")),
            },
            Query::Ucq(ucq) => {
                match bounded_plan_ucq(ucq, store.schema(), &ReasonConfig::default()) {
                    Ok(plan) => plan,
                    Err(error) => return Reply::err(format!("plan: {error}")),
                }
            }
            _ => {
                return Reply::err(
                    "plan: only CQ and UCQ queries are served; rewrite ∃FO⁺/FO queries first",
                )
            }
        };
        match self.session.submit(&plan) {
            Err(SubmitError::Rejected { ticket, rejection }) => match rejection {
                Rejection::FetchBound { bound, budget } => Reply::reject(format!(
                    "query={} fetch_bound={bound} budget={budget}",
                    ticket.query_name
                )),
                Rejection::AllocSurface { surface, limit } => Reply::reject(format!(
                    "query={} surface={surface} limit={limit}",
                    ticket.query_name
                )),
            },
            Err(SubmitError::Invalid(error)) => Reply::err(format!("submit: {error}")),
            Ok(handle) => {
                let fetch_bound = handle.ticket().fetch_bound;
                let alloc_surface = handle.ticket().alloc_surface;
                // A panicking operator fails only its own query; keep the daemon up
                // and surface the payload as an ERR reply.
                match catch_unwind(AssertUnwindSafe(|| handle.wait())) {
                    Ok(Ok((table, stats))) => {
                        let body = table
                            .rows()
                            .iter()
                            .map(|row| {
                                row.iter()
                                    .map(ToString::to_string)
                                    .collect::<Vec<_>>()
                                    .join("\t")
                            })
                            .collect();
                        Reply::ok(
                            format!(
                                "rows={} fetch_bound={fetch_bound} alloc_surface={alloc_surface} \
                                 tuples_fetched={} values_cloned={} allocs_per_probe={} \
                                 cache_hits={} rows_served_from_cache={}",
                                table.rows().len(),
                                stats.tuples_fetched,
                                stats.values_cloned,
                                stats.allocs_per_probe,
                                stats.cache_hits,
                                stats.rows_served_from_cache,
                            ),
                            body,
                        )
                    }
                    Ok(Err(error)) => Reply::err(format!("execute: {error}")),
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .copied()
                            .map(str::to_owned)
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".to_owned());
                        Reply::err(format!("execute: query panicked: {message}"))
                    }
                }
            }
        }
    }
}

/// Build the daemon's default store: the generated accidents workload of Example
/// 1.1 at roughly `tuples` tuples, indexed under ψ1–ψ4 — sharded into
/// `BEA_SHARDS` partitions when that is set above 1.
pub fn accidents_store(tuples: u64, seed: u64) -> bea_core::error::Result<SharedStore> {
    let config = bea_workload::accidents::AccidentsConfig::with_total_tuples(tuples, seed);
    let db = bea_workload::accidents::generate(&config)?;
    let schema = bea_workload::accidents::access_schema(db.catalog());
    let shards = bea_storage::shards_from_env();
    if shards > 1 {
        Ok(SharedStore::from(bea_storage::ShardedDatabase::build(
            db, schema, shards,
        )?))
    } else {
        Ok(SharedStore::from(bea_storage::IndexedDatabase::build(
            db, schema,
        )?))
    }
}

/// Hold the socket path helpers the two binaries share.
pub fn default_socket() -> PathBuf {
    std::env::temp_dir().join("bead.sock")
}

/// Resolve a `--socket` argument (or the default).
pub fn socket_from(arg: Option<&str>) -> PathBuf {
    arg.map_or_else(default_socket, |path| Path::new(path).to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::protocol::ReplyStatus;

    /// End-to-end over a real socket: accept, reject, stats, shutdown.
    #[test]
    fn serves_queries_rejections_and_shutdown_over_the_socket() {
        let socket = std::env::temp_dir().join(format!("bead-test-{}.sock", std::process::id()));
        let store = accidents_store(2_000, 0xBEAD).unwrap();
        let config = ServerConfig {
            socket: socket.clone(),
            threads: 2,
            fetch_budget: 10_000,
            max_alloc_surface: 0,
            cache_rows: 4_096,
        };
        let server = BeadServer::bind(store, &config).unwrap();
        assert_eq!(server.fetch_budget(), Some(10_000));
        std::thread::scope(|scope| {
            let serving = scope.spawn(|| server.serve());

            let ping = client::request(&socket, &Request::Ping).unwrap();
            assert_eq!(ping.head, "OK pong");

            // Anchored on an accident id: fetch bound 1 via ψ3 — admitted.
            let cheap = Request::Query("Q(d) :- Accident(x, d, t), x = 1.".to_owned());
            let reply = client::request(&socket, &cheap).unwrap();
            assert_eq!(reply.status(), ReplyStatus::Ok, "head: {}", reply.head);
            assert!(reply.head.contains("fetch_bound=1"), "head: {}", reply.head);
            assert!(reply.head.contains("allocs_per_probe="));
            assert_eq!(reply.body.len(), 1, "one district per accident id");

            // The same anchored query again: identical rows, served entirely from
            // the session's cross-query fetch cache — zero store fetches.
            let repeat = client::request(&socket, &cheap).unwrap();
            assert_eq!(repeat.status(), ReplyStatus::Ok, "head: {}", repeat.head);
            assert_eq!(repeat.body, reply.body, "cached rows match the cold run");
            assert!(
                repeat.head.contains("tuples_fetched=0"),
                "head: {}",
                repeat.head
            );
            assert!(
                repeat.head.contains("cache_hits=1"),
                "head: {}",
                repeat.head
            );

            // Q0's join chain prices far beyond 10_000 — rejected, deterministically.
            let expensive = Request::Query(
                r#"Q0(age) :- Accident(aid, "Queen's Park", "day-0001"),
                             Casualty(cid, aid, class, vid),
                             Vehicle(vid, driver, age)."#
                    .to_owned(),
            );
            let reply = client::request(&socket, &expensive).unwrap();
            assert_eq!(reply.status(), ReplyStatus::Reject, "head: {}", reply.head);
            assert!(reply.head.contains("budget=10000"), "head: {}", reply.head);

            // A parse error is an ERR, not a dead connection.
            let broken = Request::Query("Q(x) :- Nope(x).".to_owned());
            let reply = client::request(&socket, &broken).unwrap();
            assert_eq!(reply.status(), ReplyStatus::Err);

            let stats = client::request(&socket, &Request::Stats).unwrap();
            assert!(stats.head.contains("rejected=1"), "head: {}", stats.head);
            assert!(stats.head.contains("completed=2"), "head: {}", stats.head);
            assert!(stats.head.contains("budget=10000"), "head: {}", stats.head);
            assert!(stats.head.contains("cache_hits=1"), "head: {}", stats.head);
            assert!(
                stats.head.contains("cache_evictions=0"),
                "head: {}",
                stats.head
            );

            let bye = client::request(&socket, &Request::Shutdown).unwrap();
            assert_eq!(bye.head, "OK bye");
            serving.join().unwrap().unwrap();
        });
        assert!(
            !socket.exists(),
            "the socket file is cleaned up on shutdown"
        );
    }
}

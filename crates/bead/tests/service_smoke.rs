//! End-to-end smoke over the real binaries: start `bead`, drive a mixed
//! accept/reject batch through `beactl`, assert the exit-code contract and a
//! clean shutdown. This is the same script CI runs, kept in-tree so it breaks
//! at `cargo test` time rather than only in the workflow.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const BEAD: &str = env!("CARGO_BIN_EXE_bead");
const BEACTL: &str = env!("CARGO_BIN_EXE_beactl");

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    /// Start `bead` on a unique socket and block until it prints `ready`.
    fn start(budget: u64) -> Daemon {
        let socket =
            std::env::temp_dir().join(format!("bead-smoke-{}-{budget}.sock", std::process::id()));
        let mut child = Command::new(BEAD)
            .args([
                "--socket",
                socket.to_str().unwrap(),
                "--tuples",
                "2000",
                "--seed",
                "48879",
                "--threads",
                "2",
                "--fetch-budget",
                &budget.to_string(),
                "--cache-rows",
                "4096",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn bead");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        loop {
            match lines.next() {
                Some(Ok(line)) if line == "ready" => break,
                Some(Ok(_)) => continue,
                other => panic!("bead exited before printing ready: {other:?}"),
            }
        }
        // Keep draining stdout so the daemon never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, socket }
    }

    fn ctl(&self, args: &[&str]) -> (i32, String) {
        let output = Command::new(BEACTL)
            .args(["--socket", self.socket.to_str().unwrap()])
            .args(args)
            .output()
            .expect("run beactl");
        (
            output.status.code().expect("beactl exit code"),
            String::from_utf8(output.stdout).expect("utf8 reply"),
        )
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt and braces: the test shuts down via the protocol, but a failed
        // assertion must not leak a daemon process.
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

#[test]
fn mixed_accept_reject_batch_and_clean_shutdown() {
    let mut daemon = Daemon::start(10_000);

    let (code, reply) = daemon.ctl(&["ping"]);
    assert_eq!((code, reply.trim()), (0, "OK pong"));

    // Anchored on an accident id: fetch bound 1, admitted.
    let (code, reply) = daemon.ctl(&["query", "Q(d) :- Accident(x, d, t), x = 1."]);
    assert_eq!(code, 0, "accepted query exits 0; reply: {reply}");
    assert!(reply.contains("fetch_bound=1"), "reply: {reply}");
    assert!(reply.contains("allocs_per_probe="), "reply: {reply}");
    let cold_rows: Vec<&str> = reply.lines().skip(1).collect();

    // The same anchored query again: identical rows, served from the session's
    // cross-query fetch cache without touching the store.
    let (code, warm) = daemon.ctl(&["query", "Q(d) :- Accident(x, d, t), x = 1."]);
    assert_eq!(code, 0, "cached repeat exits 0; reply: {warm}");
    let warm_rows: Vec<&str> = warm.lines().skip(1).collect();
    assert_eq!(warm_rows, cold_rows, "cached rows match the cold run");
    assert!(warm.contains("tuples_fetched=0"), "reply: {warm}");
    assert!(warm.contains("cache_hits=1"), "reply: {warm}");

    // Q0's chain prices beyond the budget: a static REJECT, exit 3.
    let q0 = r#"Q0(age) :- Accident(aid, "Queen's Park", "day-0001"), Casualty(cid, aid, class, vid), Vehicle(vid, driver, age)."#;
    let (code, reply) = daemon.ctl(&["query", q0]);
    assert_eq!(code, 3, "rejected query exits 3; reply: {reply}");
    assert!(reply.starts_with("REJECT"), "reply: {reply}");
    assert!(reply.contains("budget=10000"), "reply: {reply}");

    // A malformed query is an ERR (exit 1), and the daemon stays up.
    let (code, reply) = daemon.ctl(&["query", "Q(x) :- Nowhere(x)."]);
    assert_eq!(code, 1, "broken query exits 1; reply: {reply}");
    assert!(reply.starts_with("ERR"), "reply: {reply}");

    let (code, reply) = daemon.ctl(&["stats"]);
    assert_eq!(code, 0);
    assert!(reply.contains("completed=2"), "reply: {reply}");
    assert!(reply.contains("rejected=1"), "reply: {reply}");
    assert!(reply.contains("budget=10000"), "reply: {reply}");
    assert!(reply.contains("cache_hits=1"), "reply: {reply}");
    assert!(reply.contains("rows_served_from_cache="), "reply: {reply}");
    assert!(reply.contains("cache_evictions=0"), "reply: {reply}");

    let (code, reply) = daemon.ctl(&["shutdown"]);
    assert_eq!((code, reply.trim()), (0, "OK bye"));
    let status = daemon.child.wait_timeout();
    assert_eq!(status, Some(0), "bead exits 0 after SHUTDOWN");
    assert!(!daemon.socket.exists(), "socket file removed on shutdown");
}

trait WaitTimeout {
    /// Poll-wait up to ~10s for exit; `None` if still running.
    fn wait_timeout(&mut self) -> Option<i32>;
}

impl WaitTimeout for Child {
    fn wait_timeout(&mut self) -> Option<i32> {
        for _ in 0..200 {
            if let Ok(Some(status)) = self.try_wait() {
                return status.code();
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        None
    }
}

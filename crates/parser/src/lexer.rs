//! A small hand-rolled lexer for the query and access-constraint syntax.

use bea_core::error::{Error, Result};

/// A lexical token with its position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

/// The kinds of tokens in the surface syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier (relation, variable or attribute name).
    Ident(String),
    /// An identifier prefixed with `$`: a parameter variable.
    Param(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (without the quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `:-`
    Turnstile,
    /// `->`
    Arrow,
    /// `=`
    Equals,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Param(s) => format!("parameter `${s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Turnstile => "`:-`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::Equals => "`=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize an input string. `%` starts a comment running to the end of the line.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    let mut column = 1usize;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(ch) = c {
                if ch == '\n' {
                    line += 1;
                    column = 1;
                } else {
                    column += 1;
                }
            }
            c
        }};
    }

    loop {
        let (start_line, start_column) = (line, column);
        let Some(&c) = chars.peek() else { break };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '%' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '(' | ')' | ',' | '.' | ';' | '=' => {
                bump!();
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    ',' => TokenKind::Comma,
                    '.' => TokenKind::Dot,
                    ';' => TokenKind::Semicolon,
                    _ => TokenKind::Equals,
                };
                tokens.push(Token {
                    kind,
                    line: start_line,
                    column: start_column,
                });
            }
            ':' => {
                bump!();
                match chars.peek() {
                    Some('-') => {
                        bump!();
                        tokens.push(Token {
                            kind: TokenKind::Turnstile,
                            line: start_line,
                            column: start_column,
                        });
                    }
                    other => {
                        return Err(Error::invalid(format!(
                            "line {start_line}:{start_column}: expected `:-`, found `:{}`",
                            other.map(|c| c.to_string()).unwrap_or_default()
                        )))
                    }
                }
            }
            '-' => {
                bump!();
                match chars.peek() {
                    Some('>') => {
                        bump!();
                        tokens.push(Token {
                            kind: TokenKind::Arrow,
                            line: start_line,
                            column: start_column,
                        });
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let mut number = String::from("-");
                        while let Some(&d) = chars.peek() {
                            if d.is_ascii_digit() {
                                number.push(d);
                                bump!();
                            } else {
                                break;
                            }
                        }
                        let value = number.parse::<i64>().map_err(|_| {
                            Error::invalid(format!(
                                "line {start_line}:{start_column}: invalid integer `{number}`"
                            ))
                        })?;
                        tokens.push(Token {
                            kind: TokenKind::Int(value),
                            line: start_line,
                            column: start_column,
                        });
                    }
                    _ => {
                        return Err(Error::invalid(format!(
                            "line {start_line}:{start_column}: expected `->` or a negative integer"
                        )))
                    }
                }
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some(other) => s.push(other),
                            None => {
                                return Err(Error::invalid(format!(
                                    "line {start_line}:{start_column}: unterminated string literal"
                                )))
                            }
                        },
                        Some(other) => s.push(other),
                        None => {
                            return Err(Error::invalid(format!(
                                "line {start_line}:{start_column}: unterminated string literal"
                            )))
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: start_line,
                    column: start_column,
                });
            }
            '$' => {
                bump!();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(Error::invalid(format!(
                        "line {start_line}:{start_column}: `$` must be followed by a parameter name"
                    )));
                }
                tokens.push(Token {
                    kind: TokenKind::Param(name),
                    line: start_line,
                    column: start_column,
                });
            }
            c if c.is_ascii_digit() => {
                let mut number = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        number.push(d);
                        bump!();
                    } else {
                        break;
                    }
                }
                let value = number.parse::<i64>().map_err(|_| {
                    Error::invalid(format!(
                        "line {start_line}:{start_column}: invalid integer `{number}`"
                    ))
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line: start_line,
                    column: start_column,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '\'' {
                        name.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(name),
                    line: start_line,
                    column: start_column,
                });
            }
            other => {
                return Err(Error::invalid(format!(
                    "line {start_line}:{start_column}: unexpected character `{other}`"
                )))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds(r#"Q(x) :- R(x, 3), x = "a b". % comment"#);
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("Q".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::RParen,
                TokenKind::Turnstile,
                TokenKind::Ident("R".into()),
                TokenKind::LParen,
                TokenKind::Ident("x".into()),
                TokenKind::Comma,
                TokenKind::Int(3),
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Ident("x".into()),
                TokenKind::Equals,
                TokenKind::Str("a b".into()),
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrows_negative_numbers_and_params() {
        let ks = kinds("R(a -> b, 610); S($p, -42)");
        assert!(ks.contains(&TokenKind::Arrow));
        assert!(ks.contains(&TokenKind::Int(610)));
        assert!(ks.contains(&TokenKind::Int(-42)));
        assert!(ks.contains(&TokenKind::Param("p".into())));
        assert!(ks.contains(&TokenKind::Semicolon));
    }

    #[test]
    fn string_escapes_and_quotes_in_identifiers() {
        let ks = kinds(r#"x = "line\nbreak", d = "Queen's Park""#);
        assert!(ks.contains(&TokenKind::Str("line\nbreak".into())));
        assert!(ks.contains(&TokenKind::Str("Queen's Park".into())));
    }

    #[test]
    fn errors_have_positions() {
        let err = tokenize("R(a) :\nx").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = tokenize("\"unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
        let err = tokenize("a ? b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
        let err = tokenize("$ x").unwrap_err();
        assert!(err.to_string().contains("parameter name"));
        let err = tokenize("a - b").unwrap_err();
        assert!(err.to_string().contains("expected `->`"));
    }

    #[test]
    fn token_descriptions() {
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert!(TokenKind::Ident("x".into()).describe().contains('x'));
        assert!(TokenKind::Str("s".into()).describe().contains("\"s\""));
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}

//! # bea-parser — text syntax for queries, catalogs and access schemas
//!
//! A small datalog-style surface syntax so that queries and access schemas can be written
//! as strings (in examples, experiment configurations and tests) instead of through the
//! builder APIs.
//!
//! ## Catalogs
//!
//! ```text
//! relation Accident(aid, district, date);
//! relation Casualty(cid, aid, class, vid);
//! relation Vehicle(vid, driver, age);
//! ```
//!
//! ## Access schemas
//!
//! One constraint per `;`-terminated clause: `Relation(X attrs -> Y attrs, bound)`, where
//! the bound is an integer or one of the sublinear forms `log` / `sqrt`:
//!
//! ```text
//! Accident(date -> aid, 610);
//! Casualty(aid -> vid, 192);
//! Accident(aid -> district, date, 1);
//! Vehicle(vid -> driver, age, 1);
//! ```
//!
//! ## Queries
//!
//! Datalog rules with `.` terminators. Constants may appear directly in atoms, equality
//! atoms use `=`, and variables written `$name` are declared as *parameters* of the query
//! (Section 5 of the paper). Several rules with the same head define a union of
//! conjunctive queries.
//!
//! ```text
//! Q0(age) :- Accident(aid, "Queen's Park", "1/5/2005"),
//!            Casualty(cid, aid, class, vid),
//!            Vehicle(vid, driver, age).
//! ```

pub mod lexer;

use bea_core::access::{AccessConstraint, AccessSchema, Cardinality, SublinearFn};
use bea_core::error::{Error, Result};
use bea_core::query::cq::{ConjunctiveQuery, CqBuilder};
use bea_core::query::term::Arg;
use bea_core::query::ucq::UnionQuery;
use bea_core::query::Query;
use bea_core::schema::Catalog;
use bea_core::value::Value;
use lexer::{tokenize, Token, TokenKind};

/// Parse a catalog declaration: a sequence of `relation Name(attr, …);` clauses.
pub fn parse_catalog(input: &str) -> Result<Catalog> {
    let mut parser = Parser::new(input)?;
    let mut catalog = Catalog::new();
    while !parser.at_eof() {
        parser.expect_keyword("relation")?;
        let name = parser.expect_ident()?;
        parser.expect(&TokenKind::LParen)?;
        let mut attrs = Vec::new();
        loop {
            attrs.push(parser.expect_ident()?);
            if parser.eat(&TokenKind::Comma) {
                continue;
            }
            parser.expect(&TokenKind::RParen)?;
            break;
        }
        catalog.declare(name, attrs)?;
        // Clause terminator (`;` or `.`), optional before EOF.
        let terminated = parser.eat(&TokenKind::Semicolon) || parser.eat(&TokenKind::Dot);
        if !terminated && !parser.at_eof() {
            return Err(parser.unexpected("`;` after a relation declaration"));
        }
    }
    Ok(catalog)
}

/// Parse an access schema: `;`-separated `Relation(X -> Y, bound)` clauses.
pub fn parse_access_schema(catalog: &Catalog, input: &str) -> Result<AccessSchema> {
    let mut parser = Parser::new(input)?;
    let mut schema = AccessSchema::new();
    while !parser.at_eof() {
        let relation = parser.expect_ident()?;
        parser.expect(&TokenKind::LParen)?;
        // X attributes (possibly empty, then the arrow follows immediately).
        let mut x: Vec<String> = Vec::new();
        while !parser.check(&TokenKind::Arrow) {
            x.push(parser.expect_ident()?);
            if !parser.eat(&TokenKind::Comma) {
                break;
            }
        }
        parser.expect(&TokenKind::Arrow)?;
        // Y attributes followed by the cardinality bound.
        let mut y: Vec<String> = Vec::new();
        let cardinality: Cardinality;
        loop {
            match parser.peek_kind().clone() {
                TokenKind::Int(n) => {
                    parser.advance();
                    if n < 0 {
                        return Err(Error::invalid(format!(
                            "access constraint on `{relation}` has a negative bound {n}"
                        )));
                    }
                    cardinality = Cardinality::Const(n as u64);
                    break;
                }
                TokenKind::Ident(word) if word == "log" => {
                    parser.advance();
                    cardinality = Cardinality::Sublinear(SublinearFn::Log2);
                    break;
                }
                TokenKind::Ident(word) if word == "sqrt" => {
                    parser.advance();
                    cardinality = Cardinality::Sublinear(SublinearFn::Sqrt);
                    break;
                }
                TokenKind::Ident(_) => {
                    y.push(parser.expect_ident()?);
                    parser.expect(&TokenKind::Comma)?;
                }
                _ => return Err(parser.unexpected("an attribute name or a cardinality bound")),
            }
        }
        parser.expect(&TokenKind::RParen)?;
        let terminated = parser.eat(&TokenKind::Semicolon) || parser.eat(&TokenKind::Dot);
        if !terminated && !parser.at_eof() {
            return Err(parser.unexpected("`;` after an access constraint"));
        }
        let x_refs: Vec<&str> = x.iter().map(String::as_str).collect();
        let y_refs: Vec<&str> = y.iter().map(String::as_str).collect();
        schema.add(AccessConstraint::new(
            catalog,
            &relation,
            &x_refs,
            &y_refs,
            cardinality,
        )?);
    }
    Ok(schema)
}

/// Parse one query: a single rule yields a CQ, several rules with the same head name
/// yield a UCQ.
pub fn parse_query(catalog: &Catalog, input: &str) -> Result<Query> {
    let mut queries = parse_queries(catalog, input)?;
    match queries.len() {
        0 => Err(Error::invalid("no query rules found in the input")),
        1 => Ok(queries.remove(0)),
        n => Err(Error::invalid(format!(
            "expected rules for a single query, found {n} differently named queries"
        ))),
    }
}

/// Parse a program: rules grouped by head name, in first-appearance order. Each group
/// becomes a CQ (single rule) or a UCQ (several rules).
pub fn parse_queries(catalog: &Catalog, input: &str) -> Result<Vec<Query>> {
    let mut parser = Parser::new(input)?;
    let mut groups: Vec<(String, Vec<ConjunctiveQuery>)> = Vec::new();
    let mut rule_counter = 0usize;
    while !parser.at_eof() {
        let (name, cq) = parser.parse_rule(catalog, rule_counter)?;
        rule_counter += 1;
        match groups.iter_mut().find(|(n, _)| n == &name) {
            Some((_, branch)) => branch.push(cq),
            None => groups.push((name, vec![cq])),
        }
    }
    groups
        .into_iter()
        .map(|(name, mut branches)| {
            if branches.len() == 1 {
                Ok(Query::Cq(branches.remove(0).with_name(name)))
            } else {
                Ok(Query::Ucq(UnionQuery::from_branches(name, branches)?))
            }
        })
        .collect()
}

/// Internal recursive-descent parser state.
struct Parser {
    tokens: Vec<Token>,
    position: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Self {
            tokens: tokenize(input)?,
            position: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.position]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.position].clone();
        if self.position + 1 < self.tokens.len() {
            self.position += 1;
        }
        token
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.check(kind) {
            Ok(self.advance())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<()> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) if name == keyword => {
                self.advance();
                Ok(())
            }
            _ => Err(self.unexpected(&format!("keyword `{keyword}`"))),
        }
    }

    fn unexpected(&self, expected: &str) -> Error {
        let token = self.peek();
        Error::invalid(format!(
            "line {}:{}: expected {expected}, found {}",
            token.line,
            token.column,
            token.kind.describe()
        ))
    }

    /// Parse one rule `Name(args) :- body .` and return its head name and CQ.
    fn parse_rule(
        &mut self,
        catalog: &Catalog,
        index: usize,
    ) -> Result<(String, ConjunctiveQuery)> {
        let name = self.expect_ident()?;
        let mut builder = CqBuilder::new(format!("{name}_{index}"));
        let mut params: Vec<String> = Vec::new();

        self.expect(&TokenKind::LParen)?;
        let mut head: Vec<Arg> = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                head.push(self.parse_arg(&mut params)?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        builder = builder.head(head);

        self.expect(&TokenKind::Turnstile)?;
        loop {
            // Either a relation atom `R(args)` or an equality `term = term`.
            let checkpoint = self.position;
            let first = self.parse_arg(&mut params)?;
            if self.check(&TokenKind::LParen) {
                // A relation atom; the "argument" we just read must be a plain identifier.
                self.position = checkpoint;
                let relation = self.expect_ident()?;
                self.expect(&TokenKind::LParen)?;
                let mut args: Vec<Arg> = Vec::new();
                if !self.check(&TokenKind::RParen) {
                    loop {
                        args.push(self.parse_arg(&mut params)?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                builder = builder.atom(relation, args);
            } else {
                self.expect(&TokenKind::Equals)?;
                let right = self.parse_arg(&mut params)?;
                builder = builder.eq(first, right);
            }
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(&TokenKind::Dot)?;
            break;
        }

        builder = builder.params(params);
        Ok((name, builder.build(catalog)?))
    }

    /// Parse an argument: a variable, a `$parameter`, or a constant literal.
    fn parse_arg(&mut self, params: &mut Vec<String>) -> Result<Arg> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                match name.as_str() {
                    "true" => Ok(Arg::Const(Value::Bool(true))),
                    "false" => Ok(Arg::Const(Value::Bool(false))),
                    _ => Ok(Arg::Var(name)),
                }
            }
            TokenKind::Param(name) => {
                self.advance();
                if !params.contains(&name) {
                    params.push(name.clone());
                }
                Ok(Arg::Var(name))
            }
            TokenKind::Int(i) => {
                self.advance();
                Ok(Arg::Const(Value::Int(i)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Arg::Const(Value::Str(s.into())))
            }
            _ => Err(self.unexpected("a variable, parameter or constant")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::cover;

    fn accidents_catalog() -> Catalog {
        parse_catalog(
            "relation Accident(aid, district, date);
             relation Casualty(cid, aid, class, vid);
             relation Vehicle(vid, driver, age);",
        )
        .unwrap()
    }

    #[test]
    fn parse_catalog_declarations() {
        let c = accidents_catalog();
        assert_eq!(c.len(), 3);
        assert_eq!(c.relation("Casualty").unwrap().arity(), 4);
        assert!(parse_catalog("relation R(a, a);").is_err());
        assert!(parse_catalog("rel R(a);").is_err());
        assert!(parse_catalog("relation R(a) relation S(b);").is_err());
    }

    #[test]
    fn parse_example_1_1_schema_and_query() {
        let c = accidents_catalog();
        let schema = parse_access_schema(
            &c,
            "Accident(date -> aid, 610);
             Casualty(aid -> vid, 192);
             Accident(aid -> district, date, 1);
             Vehicle(vid -> driver, age, 1);",
        )
        .unwrap();
        assert_eq!(schema.len(), 4);
        assert_eq!(
            schema.constraints()[2].display_with(&c),
            "Accident(aid -> district, date, 1)"
        );

        let q0 = parse_query(
            &c,
            r#"Q0(age) :- Accident(aid, "Queen's Park", "1/5/2005"),
                          Casualty(cid, aid, class, vid),
                          Vehicle(vid, driver, age)."#,
        )
        .unwrap();
        let cq = q0.as_cq().unwrap();
        assert_eq!(cq.arity(), 1);
        assert_eq!(cq.atoms().len(), 3);
        assert!(cover::is_covered(cq, &schema));
    }

    #[test]
    fn parse_empty_key_and_sublinear_bounds() {
        let c = parse_catalog("relation R(a, b, c);").unwrap();
        let schema = parse_access_schema(
            &c,
            "R(-> c, 1);
             R(a, b -> c, log);
             R(a -> b, sqrt);",
        )
        .unwrap();
        assert_eq!(schema.len(), 3);
        assert!(schema.constraints()[0].x().is_empty());
        assert_eq!(schema.constraints()[1].x(), &[0, 1]);
        assert!(matches!(
            schema.constraints()[1].cardinality(),
            Cardinality::Sublinear(SublinearFn::Log2)
        ));
        assert!(matches!(
            schema.constraints()[2].cardinality(),
            Cardinality::Sublinear(SublinearFn::Sqrt)
        ));
    }

    #[test]
    fn parse_parameters_and_equalities() {
        let c = accidents_catalog();
        let q = parse_query(
            &c,
            "Q(age) :- Accident(aid, d, $date), Casualty(cid, aid, class, vid),
                       Vehicle(vid, driver, age), d = $district.",
        )
        .unwrap();
        let cq = q.as_cq().unwrap();
        let params: Vec<&str> = cq.params().iter().map(|&v| cq.var_name(v)).collect();
        assert!(params.contains(&"date"));
        assert!(params.contains(&"district"));
        assert_eq!(cq.equalities().len(), 1);
    }

    #[test]
    fn parse_union_queries() {
        let c = parse_catalog("relation R(a, b);").unwrap();
        let q = parse_query(
            &c,
            "Q(y) :- R(x, y), x = 1.
             Q(y) :- R(x, y), x = 2.",
        )
        .unwrap();
        let ucq = q.as_ucq().unwrap();
        assert_eq!(ucq.len(), 2);
        assert_eq!(ucq.arity(), 1);
        assert_eq!(ucq.name(), "Q");

        // Two differently named queries are a program, not a single query.
        assert!(parse_query(&c, "Q(y) :- R(x, y). P(y) :- R(y, x).").is_err());
        let program = parse_queries(&c, "Q(y) :- R(x, y). P(y) :- R(y, x).").unwrap();
        assert_eq!(program.len(), 2);
        assert_eq!(program[0].name(), "Q");
        assert_eq!(program[1].name(), "P");
    }

    #[test]
    fn constants_booleans_and_boolean_queries() {
        let c = parse_catalog("relation Flag(id, active);").unwrap();
        let q = parse_query(&c, "Q() :- Flag(x, true), x = -5.").unwrap();
        let cq = q.as_cq().unwrap();
        assert_eq!(cq.arity(), 0);
        assert_eq!(cq.atoms().len(), 1);
        assert_eq!(
            cq.equalities()
                .iter()
                .filter(|e| matches!(e, bea_core::query::cq::Equality::Const(_, _)))
                .count(),
            2
        );
    }

    #[test]
    fn error_reporting() {
        let c = parse_catalog("relation R(a, b);").unwrap();
        let err = parse_query(&c, "Q(x) :- R(x).").unwrap_err();
        assert!(err.to_string().contains("arity"));
        let err = parse_query(&c, "Q(x) :- S(x, y).").unwrap_err();
        assert!(err.to_string().contains("unknown relation"));
        let err = parse_query(&c, "Q(x) R(x, y).").unwrap_err();
        assert!(err.to_string().contains("expected"));
        let err = parse_query(&c, "Q(x) :- R(x, y)").unwrap_err();
        assert!(err.to_string().contains("`.`"));
        let err = parse_query(&c, "").unwrap_err();
        assert!(err.to_string().contains("no query rules"));
        let err = parse_access_schema(&c, "R(a -> b, -2);").unwrap_err();
        assert!(err.to_string().contains("negative"));
        let err = parse_access_schema(&c, "R(a -> b c, 1);").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn parse_query_rejects_constant_equality_without_variable() {
        let c = parse_catalog("relation R(a, b);").unwrap();
        // `3 = 3` is accepted by the grammar (a degenerate equality), and the query
        // builder normalizes it away.
        let q = parse_query(&c, "Q(x) :- R(x, y), 3 = 3.").unwrap();
        assert_eq!(q.as_cq().unwrap().equalities().len(), 0);
    }
}

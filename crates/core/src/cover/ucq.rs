//! Coverage of unions of conjunctive queries and ∃FO⁺ queries (Theorem 3.14).
//!
//! A UCQ (or ∃FO⁺ query, via its UCQ expansion) `Q = Q₁ ∪ … ∪ Qₖ` is covered by `A` when
//! each CQ sub-query `Qᵢ` is either
//!
//! * covered by `A` itself, or
//! * *subsumed by the covered part*: on every `A`-instance `θ(T_{Qᵢ})` of `Qᵢ`, some
//!   covered sub-query `Qⱼ` already returns `θ(u)`.
//!
//! The second case is what makes CQP Πᵖ₂-complete for UCQ/∃FO⁺ (versus PTIME for CQ): a
//! sub-query that is not itself boundedly evaluable may ride along as long as the covered
//! sub-queries answer everything it could contribute under `A` (cf. Example 3.5).

use crate::access::AccessSchema;
use crate::cover::{coverage, CoverageReport};
use crate::error::Result;
use crate::query::ucq::UnionQuery;
use crate::reason::enumerate::{query_constants, visit_a_instances};
use crate::reason::instance::eval_cq;
use crate::reason::ReasonConfig;
use crate::value::Value;

/// The status of one CQ sub-query within a union's coverage analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchCoverage {
    /// The branch is covered by the access schema on its own.
    Covered(CoverageReport),
    /// The branch is not covered, but every answer it can produce on an `A`-instance is
    /// already produced by one of the covered branches.
    SubsumedByCovered(CoverageReport),
    /// The branch is not covered and contributes answers no covered branch produces.
    NotCovered(CoverageReport),
}

impl BranchCoverage {
    /// The underlying per-branch coverage report.
    pub fn report(&self) -> &CoverageReport {
        match self {
            BranchCoverage::Covered(r)
            | BranchCoverage::SubsumedByCovered(r)
            | BranchCoverage::NotCovered(r) => r,
        }
    }

    /// Does this branch satisfy the UCQ coverage condition?
    pub fn is_acceptable(&self) -> bool {
        !matches!(self, BranchCoverage::NotCovered(_))
    }
}

/// Result of the coverage analysis of a UCQ / ∃FO⁺ query.
#[derive(Debug, Clone, PartialEq)]
pub struct UcqCoverageReport {
    branches: Vec<BranchCoverage>,
}

impl UcqCoverageReport {
    /// Per-branch results, in branch order.
    pub fn branches(&self) -> &[BranchCoverage] {
        &self.branches
    }

    /// Is the whole union covered by the access schema?
    pub fn is_covered(&self) -> bool {
        self.branches.iter().all(BranchCoverage::is_acceptable)
    }

    /// Indices of the branches that are covered on their own.
    pub fn covered_branch_indices(&self) -> Vec<usize> {
        self.branches
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b, BranchCoverage::Covered(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Is every branch's output size bounded (Lemma 4.2(c): a ∃FO⁺ query is bounded iff
    /// every CQ sub-query is bounded)?
    pub fn is_bounded(&self) -> bool {
        self.branches.iter().all(|b| b.report().is_bounded())
    }
}

/// Analyse the coverage of a union of conjunctive queries under an access schema.
///
/// The subsumption test enumerates `A`-instances and is exponential in the size of the
/// uncovered branches; the [`ReasonConfig::budget`] bounds the work.
pub fn ucq_coverage(
    query: &UnionQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<UcqCoverageReport> {
    let reports: Vec<CoverageReport> = query
        .branches()
        .iter()
        .map(|b| coverage(b, schema))
        .collect();
    let covered_indices: Vec<usize> = reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_covered())
        .map(|(i, _)| i)
        .collect();

    // Named constants: constants of every branch, so the subsumption check distinguishes
    // instances the covered branches can tell apart.
    let mut named: Vec<Value> = Vec::new();
    for b in query.branches() {
        named.extend(query_constants(b));
    }
    named.sort();
    named.dedup();

    let mut branches = Vec::with_capacity(reports.len());
    for (i, report) in reports.into_iter().enumerate() {
        if report.is_covered() {
            branches.push(BranchCoverage::Covered(report));
            continue;
        }
        // Subsumption: every A-instance of this branch is answered by a covered branch.
        let mut unanswered = false;
        visit_a_instances(&query.branches()[i], schema, &named, config, &mut |ai| {
            let answered = covered_indices
                .iter()
                .any(|&j| eval_cq(&query.branches()[j], &ai.instance).contains(&ai.head));
            if !answered {
                unanswered = true;
                true
            } else {
                false
            }
        })?;
        if unanswered {
            branches.push(BranchCoverage::NotCovered(report));
        } else {
            branches.push(BranchCoverage::SubsumedByCovered(report));
        }
    }
    Ok(UcqCoverageReport { branches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::query::cq::ConjunctiveQuery;
    use crate::schema::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("Rp", ["a", "b", "c"]).unwrap();
        c.declare("R", ["a", "b"]).unwrap();
        c
    }

    /// The second example of Example 3.5: Q = Q1 ∪ Q2 over R′(A, B, C) with
    /// A′ = {R′(A → B, N)}. Q1 and Q are boundedly evaluable, Q2 is not, yet the union is
    /// covered because Q2 ⊆ Q1 classically (hence on every A-instance).
    #[test]
    fn example_3_5_union_covered_through_subsumption() {
        let c = catalog();
        let a =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "Rp", &["a"], &["b"], 7).unwrap()
            ]);
        // Q1(y) = ∃x,z (R′(x,y,z) ∧ x = 1)
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["y"])
            .atom("Rp", ["x", "y", "z"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        // Q2(y) = ∃x,z (R′(x,y,z) ∧ x = 1 ∧ z = y)
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["y"])
            .atom("Rp", ["x", "y", "z"])
            .eq("x", 1i64)
            .eq("z", "y")
            .build(&c)
            .unwrap();

        // Q1 is covered; Q2 is not (z = y is a join on an attribute the index cannot
        // check).
        assert!(crate::cover::is_covered(&q1, &a));
        assert!(!crate::cover::is_covered(&q2, &a));

        let union = UnionQuery::from_branches("Q", vec![q1, q2]).unwrap();
        let report = ucq_coverage(&union, &a, &ReasonConfig::default()).unwrap();
        assert!(report.is_covered());
        assert_eq!(report.covered_branch_indices(), vec![0]);
        assert!(matches!(
            report.branches()[1],
            BranchCoverage::SubsumedByCovered(_)
        ));
        assert!(report.is_bounded());
        assert!(report.branches()[1].is_acceptable());
    }

    #[test]
    fn union_with_genuinely_uncovered_branch_is_not_covered() {
        let c = catalog();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 3).unwrap()
        ]);
        // Q1(y) :- R(x, y), x = 1 — covered.
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        // Q2(y) :- R(y, w) — not covered (y is fetched "backwards") and not subsumed.
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["y"])
            .atom("R", ["y", "w"])
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Q", vec![q1, q2]).unwrap();
        let report = ucq_coverage(&union, &a, &ReasonConfig::default()).unwrap();
        assert!(!report.is_covered());
        assert!(matches!(
            report.branches()[1],
            BranchCoverage::NotCovered(_)
        ));
        assert!(!report.is_bounded());
    }

    #[test]
    fn all_branches_covered() {
        let c = catalog();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 3).unwrap()
        ]);
        let mk = |name: &str, k: i64| {
            ConjunctiveQuery::builder(name)
                .head(["y"])
                .atom("R", ["x", "y"])
                .eq("x", k)
                .build(&c)
                .unwrap()
        };
        let union = UnionQuery::from_branches("Q", vec![mk("Q1", 1), mk("Q2", 2)]).unwrap();
        let report = ucq_coverage(&union, &a, &ReasonConfig::default()).unwrap();
        assert!(report.is_covered());
        assert_eq!(report.covered_branch_indices(), vec![0, 1]);
        assert!(report
            .branches()
            .iter()
            .all(|b| matches!(b, BranchCoverage::Covered(_))));
    }

    #[test]
    fn subsumption_requires_a_covered_answerer() {
        let c = catalog();
        // No constraints at all: nothing is covered, so nothing can subsume.
        let q = ConjunctiveQuery::builder("Q1")
            .head(["y"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Q", vec![q]).unwrap();
        let report = ucq_coverage(&union, &AccessSchema::new(), &ReasonConfig::default()).unwrap();
        assert!(!report.is_covered());
        assert!(report.covered_branch_indices().is_empty());
    }
}

//! Covered queries: the effective syntax for boundedly evaluable queries (Section 3.2).
//!
//! Deciding bounded evaluability exactly is EXPSPACE-complete for CQ (Theorem 3.4), so
//! the paper introduces *covered* queries:
//!
//! * the set `cov(Q, A)` of variables whose values are determined by the query or can be
//!   fetched through the indices of `A` is computed by a PTIME fixpoint (Lemma 3.9) —
//!   [`covered_variables`];
//! * a CQ is *covered by `A`* when its free variables are covered, its non-covered
//!   variables are harmless "don't care" existentials, and every relation atom is indexed
//!   by a constraint of `A` — [`coverage`] / [`CoverageReport`];
//! * every covered CQ is boundedly evaluable, and every boundedly evaluable CQ is
//!   `A`-equivalent to a covered one (Theorem 3.11), which makes coverage an effective
//!   syntax with a PTIME membership test.
//!
//! The extension of coverage to UCQ and ∃FO⁺ (Πᵖ₂-complete, Theorem 3.14) lives in
//! [`ucq`].

pub mod ucq;

pub use ucq::{ucq_coverage, BranchCoverage, UcqCoverageReport};

use crate::access::AccessSchema;
use crate::query::cq::ConjunctiveQuery;
use crate::query::term::Var;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One application of an access constraint during the `cov(Q, A)` fixpoint.
///
/// The trace of applications is a *witness* used by the plan generator
/// ([`crate::plan`]) to synthesize a boundedly evaluable query plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverApplication {
    /// Index of the applied constraint in the access schema.
    pub constraint_index: usize,
    /// Index of the relation atom the constraint was applied to.
    pub atom_index: usize,
    /// Variables that became covered by this application.
    pub newly_covered: Vec<Var>,
}

/// Why a query fails to be covered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageViolation {
    /// A free (head) variable is neither covered nor a constant (condition (a)).
    FreeVarNotCovered {
        /// The offending variable.
        var: Var,
        /// Its display name.
        name: String,
    },
    /// A non-covered variable is a constant variable (condition (b)).
    UncoveredConstantVar {
        /// The offending variable.
        var: Var,
        /// Its display name.
        name: String,
    },
    /// A non-covered variable occurs more than once (condition (b)).
    UncoveredVarOccursMultipleTimes {
        /// The offending variable.
        var: Var,
        /// Its display name.
        name: String,
        /// How many times it occurs.
        occurrences: usize,
    },
    /// A relation atom is not indexed by any constraint (condition (c)).
    AtomNotIndexed {
        /// Index of the offending atom.
        atom_index: usize,
        /// The atom's relation name.
        relation: String,
    },
}

impl fmt::Display for CoverageViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoverageViolation::FreeVarNotCovered { name, .. } => {
                write!(f, "free variable `{name}` is not covered by the access schema")
            }
            CoverageViolation::UncoveredConstantVar { name, .. } => {
                write!(f, "constant variable `{name}` is not covered")
            }
            CoverageViolation::UncoveredVarOccursMultipleTimes {
                name, occurrences, ..
            } => write!(
                f,
                "non-covered variable `{name}` occurs {occurrences} times (it participates in a join)"
            ),
            CoverageViolation::AtomNotIndexed {
                atom_index,
                relation,
            } => write!(
                f,
                "relation atom #{atom_index} over `{relation}` is not indexed by any access constraint"
            ),
        }
    }
}

/// The result of the coverage analysis of a conjunctive query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    covered: BTreeSet<Var>,
    constant_vars: BTreeSet<Var>,
    data_dependent: BTreeSet<Var>,
    trace: Vec<CoverApplication>,
    violations: Vec<CoverageViolation>,
    atom_witness: Vec<Option<usize>>,
    free_vars_bounded: bool,
}

impl CoverageReport {
    /// Is the query covered by the access schema (Theorem 3.11's effective syntax)?
    pub fn is_covered(&self) -> bool {
        self.violations.is_empty()
    }

    /// The covered variable set `cov(Q, A)` (data-independent variables plus the covered
    /// data-dependent ones).
    pub fn covered_vars(&self) -> &BTreeSet<Var> {
        &self.covered
    }

    /// The constant variables of the query.
    pub fn constant_vars(&self) -> &BTreeSet<Var> {
        &self.constant_vars
    }

    /// Variables whose value is *determined*: covered or constant.
    pub fn determined_vars(&self) -> BTreeSet<Var> {
        self.covered.union(&self.constant_vars).copied().collect()
    }

    /// True when a variable is covered or constant.
    pub fn is_determined(&self, v: Var) -> bool {
        self.covered.contains(&v) || self.constant_vars.contains(&v)
    }

    /// The fixpoint application trace (a witness usable for plan generation).
    pub fn trace(&self) -> &[CoverApplication] {
        &self.trace
    }

    /// The coverage violations (empty iff covered).
    pub fn violations(&self) -> &[CoverageViolation] {
        &self.violations
    }

    /// For each relation atom, the index of a constraint witnessing that the atom is
    /// indexed by `A` (condition (c)), if one exists.
    pub fn atom_witness(&self) -> &[Option<usize>] {
        &self.atom_witness
    }

    /// Is the query *bounded* under `A` in the sense of Lemma 4.2(b): are all its free
    /// variables covered? Bounded queries have output sizes independent of the database;
    /// boundedness is necessary for the existence of envelopes (Section 4).
    pub fn is_bounded(&self) -> bool {
        self.free_vars_bounded
    }

    /// The product of the cardinality bounds of the constraints applied in the fixpoint
    /// trace: an upper bound on the number of distinct combinations of covered-variable
    /// values reachable through the indices, for databases of `db_size` tuples.
    ///
    /// When the free variables are covered (the query is *bounded*, Lemma 4.2), this also
    /// bounds `|Q(D)|` — which is how the envelope approximation bounds of Section 4 are
    /// derived.
    pub fn trace_bound(&self, schema: &AccessSchema, db_size: u64) -> u64 {
        let mut bound: u64 = 1;
        for app in &self.trace {
            let n = schema
                .constraint(app.constraint_index)
                .map(|c| c.cardinality().bound(db_size))
                .unwrap_or(u64::MAX)
                .max(1);
            bound = bound.saturating_mul(n);
        }
        bound
    }

    /// An upper bound on the number of distinct tuples a boundedly evaluable plan built
    /// from this coverage witness can fetch, and hence on `|Q(D)|`, for databases of
    /// `db_size` tuples. Returns `None` when the query is not covered.
    pub fn output_bound(&self, schema: &AccessSchema, db_size: u64) -> Option<u64> {
        if !self.is_covered() {
            return None;
        }
        Some(self.trace_bound(schema, db_size))
    }
}

/// Compute the covered-variable set `cov(Q, A)` together with the application trace
/// (Lemma 3.9: the fixpoint is unique and PTIME-computable).
pub fn covered_variables(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
) -> (BTreeSet<Var>, Vec<CoverApplication>) {
    let data_dependent = query.data_dependent_vars();
    let constant_vars = query.constant_vars();
    let eq_plus = query.eq_plus_classes();

    // cov(Q_di, A) = var(Q_di): data-independent variables are covered outright.
    let mut covered: BTreeSet<Var> = query
        .vars()
        .filter(|v| !data_dependent.contains(v))
        .collect();
    let mut trace: Vec<CoverApplication> = Vec::new();

    // Round-based fixpoint: in each round, applicability is judged against the covered
    // set at the *start* of the round, and every applicable (constraint, atom) pair is
    // applied. This makes cov(Q, A) independent of the order in which constraints are
    // listed (Lemma 3.9) — in particular, a constraint whose Y-variables are also covered
    // by another constraint in the same round still contributes its constant X-variables
    // (cf. Example 3.10, where both ϕ4 and ϕ5 apply in the first round).
    loop {
        let round_start = covered.clone();

        // Collect every (constraint, atom) pair applicable w.r.t. the round-start set:
        // every X-position variable is covered or constant, and some Y-position variable
        // is not yet covered.
        let mut applicable: Vec<(usize, usize)> = Vec::new();
        for (ci, constraint) in schema.constraints().iter().enumerate() {
            for (ai, atom) in query.atoms().iter().enumerate() {
                if atom.relation != constraint.relation() {
                    continue;
                }
                let x_ok = constraint.x().iter().all(|&p| {
                    let v = atom.args[p];
                    round_start.contains(&v) || constant_vars.contains(&v)
                });
                let has_new_y = constraint
                    .y()
                    .iter()
                    .any(|&p| !round_start.contains(&atom.args[p]));
                if x_ok && has_new_y {
                    applicable.push((ci, ai));
                }
            }
        }
        if applicable.is_empty() {
            break;
        }
        // Apply cheaper constraints first: this does not change the fixpoint (all pairs
        // are applied within the round), but it makes the application trace — and hence
        // the synthesized plan — fetch small key sets before large ones, matching the
        // hand-crafted plan of Example 1.1.
        applicable.sort_by_key(|&(ci, ai)| {
            let bound = schema
                .constraint(ci)
                .map(|c| c.cardinality().bound(1 << 20))
                .unwrap_or(u64::MAX);
            (bound, ci, ai)
        });

        let mut changed = false;
        for (ci, ai) in applicable {
            let constraint = &schema.constraints()[ci];
            let atom = &query.atoms()[ai];
            let mut newly = Vec::new();
            // Constant X-variables (and their eq⁺ classes) become covered as well.
            for &p in constraint.x() {
                let x = atom.args[p];
                if constant_vars.contains(&x) && !round_start.contains(&x) {
                    for &m in eq_plus.members(x) {
                        if data_dependent.contains(&m) && covered.insert(m) {
                            newly.push(m);
                        }
                    }
                }
            }
            // All Y-position variables (and their eq⁺ classes) become covered.
            for &p in constraint.y() {
                let y = atom.args[p];
                for &m in eq_plus.members(y) {
                    if data_dependent.contains(&m) && covered.insert(m) {
                        newly.push(m);
                    }
                }
            }
            if !newly.is_empty() {
                newly.sort_unstable();
                trace.push(CoverApplication {
                    constraint_index: ci,
                    atom_index: ai,
                    newly_covered: newly,
                });
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (covered, trace)
}

/// Full coverage analysis of a conjunctive query (the PTIME membership test of
/// Theorem 3.11(3)).
pub fn coverage(query: &ConjunctiveQuery, schema: &AccessSchema) -> CoverageReport {
    let (covered, trace) = covered_variables(query, schema);
    let constant_vars = query.constant_vars();
    let data_dependent = query.data_dependent_vars();
    let determined = |v: Var| -> bool { covered.contains(&v) || constant_vars.contains(&v) };

    let mut violations = Vec::new();

    // Condition (a): free variables are covered (we also accept constant free variables,
    // whose values are known from the query itself).
    let free_vars = query.free_vars();
    let free_vars_bounded = free_vars.iter().all(|&v| determined(v));
    for &v in &free_vars {
        if !determined(v) {
            violations.push(CoverageViolation::FreeVarNotCovered {
                var: v,
                name: query.var_name(v).to_owned(),
            });
        }
    }

    // Condition (b): non-covered variables are non-constant and occur exactly once.
    for v in query.vars() {
        if covered.contains(&v) || free_vars.contains(&v) {
            continue;
        }
        if constant_vars.contains(&v) {
            violations.push(CoverageViolation::UncoveredConstantVar {
                var: v,
                name: query.var_name(v).to_owned(),
            });
            continue;
        }
        let occurrences = query.occurrence_count(v);
        if occurrences > 1 {
            violations.push(CoverageViolation::UncoveredVarOccursMultipleTimes {
                var: v,
                name: query.var_name(v).to_owned(),
                occurrences,
            });
        }
    }

    // Condition (c): every relation atom is indexed by some constraint.
    let bound_vars = query.bound_vars();
    let mut atom_witness: Vec<Option<usize>> = Vec::with_capacity(query.atoms().len());
    for (ai, atom) in query.atoms().iter().enumerate() {
        let witness = schema.constraints_for(&atom.relation).find(|(_, c)| {
            // (c)(i): the Y1-position variables are determined.
            let x_ok = c.x().iter().all(|&p| determined(atom.args[p]));
            if !x_ok {
                return false;
            }
            // (c)(ii): every position holding a variable that is not an excluded
            // "don't care" existential lies in Y1 ∪ Y2.
            let xy = c.xy();
            atom.args.iter().enumerate().all(|(pos, &v)| {
                let excluded = bound_vars.contains(&v)
                    && !constant_vars.contains(&v)
                    && query.occurrence_count(v) == 1;
                excluded || xy.contains(&pos)
            })
        });
        match witness {
            Some((ci, _)) => atom_witness.push(Some(ci)),
            None => {
                atom_witness.push(None);
                violations.push(CoverageViolation::AtomNotIndexed {
                    atom_index: ai,
                    relation: atom.relation.clone(),
                });
            }
        }
    }

    CoverageReport {
        covered,
        constant_vars,
        data_dependent,
        trace,
        violations,
        atom_witness,
        free_vars_bounded,
    }
}

/// Convenience: is the query covered by the access schema?
pub fn is_covered(query: &ConjunctiveQuery, schema: &AccessSchema) -> bool {
    coverage(query, schema).is_covered()
}

/// Convenience: is the query *bounded* under the access schema (Lemma 4.2(b): all free
/// variables covered), regardless of whether its atoms are indexed?
pub fn is_bounded(query: &ConjunctiveQuery, schema: &AccessSchema) -> bool {
    coverage(query, schema).is_bounded()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::query::term::Arg;
    use crate::schema::Catalog;
    use crate::value::Value;

    fn accidents_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("Accident", ["aid", "district", "date"]).unwrap();
        c.declare("Casualty", ["cid", "aid", "class", "vid"])
            .unwrap();
        c.declare("Vehicle", ["vid", "driver", "age"]).unwrap();
        c
    }

    fn accidents_schema(c: &Catalog) -> AccessSchema {
        AccessSchema::from_constraints([
            AccessConstraint::new(c, "Accident", &["date"], &["aid"], 610).unwrap(),
            AccessConstraint::new(c, "Casualty", &["aid"], &["vid"], 192).unwrap(),
            AccessConstraint::new(c, "Accident", &["aid"], &["district", "date"], 1).unwrap(),
            AccessConstraint::new(c, "Vehicle", &["vid"], &["driver", "age"], 1).unwrap(),
        ])
    }

    fn q0(c: &Catalog) -> ConjunctiveQuery {
        ConjunctiveQuery::builder("Q0")
            .head(["xa"])
            .atom(
                "Accident",
                [
                    Arg::var("aid"),
                    Arg::val(Value::str("Queen's Park")),
                    Arg::val(Value::str("1/5/2005")),
                ],
            )
            .atom("Casualty", ["cid", "aid", "class", "vid"])
            .atom("Vehicle", ["vid", "dri", "xa"])
            .build(c)
            .unwrap()
    }

    /// Example 1.1 / Example 3.10: Q0 is covered by ψ1–ψ4.
    #[test]
    fn example_1_1_q0_is_covered() {
        let c = accidents_catalog();
        let a = accidents_schema(&c);
        let q = q0(&c);
        let report = coverage(&q, &a);
        assert!(report.is_covered(), "violations: {:?}", report.violations());
        assert!(report.is_bounded());
        // All three atoms are indexed.
        assert!(report.atom_witness().iter().all(Option::is_some));
        // Non-covered variables are exactly the harmless ones (cid, class, dri is
        // covered via ψ4's Y = {driver, age}).
        let cid = q.var_by_name("cid").unwrap();
        let class = q.var_by_name("class").unwrap();
        assert!(!report.covered_vars().contains(&cid));
        assert!(!report.covered_vars().contains(&class));
        let xa = q.var_by_name("xa").unwrap();
        assert!(report.covered_vars().contains(&xa));
        // The output bound derived from ψ1–ψ4 is 610 · 192 (one application of each of
        // ψ1, ψ3, ψ2, ψ4, two of which are key constraints with N = 1).
        assert_eq!(report.output_bound(&a, 1_000_000), Some(610 * 192));
    }

    #[test]
    fn example_1_1_not_covered_without_constraints() {
        let c = accidents_catalog();
        let q = q0(&c);
        let report = coverage(&q, &AccessSchema::new());
        assert!(!report.is_covered());
        assert!(!report.is_bounded());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, CoverageViolation::FreeVarNotCovered { .. })));
        assert_eq!(report.output_bound(&AccessSchema::new(), 1), None);
    }

    /// Example 3.1(1): Q1 is not covered by A1 (no constraint indexes the atom).
    #[test]
    fn example_3_1_1_not_covered() {
        let mut c = Catalog::new();
        c.declare("R1", ["a", "b", "e", "f"]).unwrap();
        let a1 = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R1", &["a"], &["b"], 3).unwrap(),
            AccessConstraint::new(&c, "R1", &["e"], &["f"], 3).unwrap(),
        ]);
        // Q1(x, y) = ∃x1,x2 (R1(x1, x, x2, y) ∧ x1 = 1 ∧ x2 = 1)
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["x", "y"])
            .atom("R1", ["x1", "x", "x2", "y"])
            .eq("x1", 1i64)
            .eq("x2", 1i64)
            .build(&c)
            .unwrap();
        let report = coverage(&q1, &a1);
        assert!(!report.is_covered());
        // x and y are individually retrievable (so the query is bounded), but the atom
        // cannot be checked: no constraint indexes it.
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, CoverageViolation::AtomNotIndexed { .. })));
    }

    /// Example 3.1(3) / Example 3.10: Q3 is covered by A3.
    #[test]
    fn example_3_10_q3_is_covered() {
        let mut c = Catalog::new();
        c.declare("R3", ["a", "b", "c"]).unwrap();
        let a3 = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R3", &[], &["c"], 1).unwrap(),
            AccessConstraint::new(&c, "R3", &["a", "b"], &["c"], 64).unwrap(),
        ]);
        let q3 = ConjunctiveQuery::builder("Q3")
            .head(["x", "y"])
            .atom("R3", ["x1", "x2", "x"])
            .atom("R3", ["z1", "z2", "y"])
            .atom("R3", ["x", "y", "z3"])
            .eq("x1", 1i64)
            .eq("x2", 1i64)
            .build(&c)
            .unwrap();
        let report = coverage(&q3, &a3);
        assert!(report.is_covered(), "violations: {:?}", report.violations());
        // cov(Q3, A3) = {x, y, z3, x1, x2} (Example 3.10).
        let name = |n: &str| q3.var_by_name(n).unwrap();
        for v in ["x", "y", "z3", "x1", "x2"] {
            assert!(
                report.covered_vars().contains(&name(v)),
                "{v} should be covered"
            );
        }
        for v in ["z1", "z2"] {
            assert!(
                !report.covered_vars().contains(&name(v)),
                "{v} should stay uncovered"
            );
        }
    }

    /// Example 3.12: Q2 of Example 3.1(2) is *not* covered by A2 (its free variable is
    /// not covered), even though it is boundedly evaluable via A-equivalence.
    #[test]
    fn example_3_12_q2_not_covered() {
        let mut c = Catalog::new();
        c.declare("R2", ["a", "b"]).unwrap();
        let a2 =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R2", &["a"], &["b"], 1).unwrap()
            ]);
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x"])
            .atom("R2", ["x", "x1"])
            .atom("R2", ["x", "x2"])
            .eq("x1", 1i64)
            .eq("x2", 2i64)
            .build(&c)
            .unwrap();
        let report = coverage(&q2, &a2);
        assert!(!report.is_covered());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, CoverageViolation::FreeVarNotCovered { .. })));

        // Its A2-equivalent rewriting Q2'(x) = (x = 1 ∧ x = 2) *is* covered: the variable
        // is data-independent.
        let q2p = ConjunctiveQuery::builder("Q2p")
            .head(["x"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        assert!(is_covered(&q2p, &a2));
    }

    /// Example 3.8 ablation: using eq⁺ (rather than eq) when extending the covered set
    /// matters for variables linked through constants.
    #[test]
    fn eq_plus_extension_covers_constant_linked_variables() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["a", "b"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 5).unwrap(),
            AccessConstraint::new(&c, "S", &["a"], &["b"], 5).unwrap(),
        ]);
        // Q(w) :- R(k, v), S(k2, w), k = 1, v = 2, k2 = 2.
        // Covering v (= 2) also covers k2 through eq⁺, which then lets S(k2, w) cover w.
        let q = ConjunctiveQuery::builder("Q")
            .head(["w"])
            .atom("R", ["k", "v"])
            .atom("S", ["k2", "w"])
            .eq("k", 1i64)
            .eq("v", 2i64)
            .eq("k2", 2i64)
            .build(&c)
            .unwrap();
        let report = coverage(&q, &a);
        assert!(report.is_covered(), "violations: {:?}", report.violations());
        let w = q.var_by_name("w").unwrap();
        assert!(report.covered_vars().contains(&w));
    }

    #[test]
    fn covered_variables_is_deterministic_and_monotone() {
        let c = accidents_catalog();
        let a = accidents_schema(&c);
        let q = q0(&c);
        let (cov1, _) = covered_variables(&q, &a);
        let (cov2, _) = covered_variables(&q, &a);
        assert_eq!(cov1, cov2);

        // Monotonicity in A: a subschema covers no more variables.
        let smaller = AccessSchema::from_constraints(a.constraints()[..2].to_vec());
        let (cov_small, _) = covered_variables(&q, &smaller);
        assert!(cov_small.is_subset(&cov1));
    }

    #[test]
    fn boolean_query_with_constant_filter_is_not_covered_without_index() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 4).unwrap()
        ]);
        // Q() :- R(x, y), y = 1: the constant filter is on b, but the only index is keyed
        // on a, so the atom is not indexed (we cannot find the matching tuples without a
        // scan).
        let q = ConjunctiveQuery::builder("Q")
            .head(Vec::<Arg>::new())
            .atom("R", ["x", "y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        let report = coverage(&q, &a);
        assert!(!report.is_covered());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, CoverageViolation::AtomNotIndexed { .. })));

        // With the index keyed on b instead, the query becomes covered.
        let a2 =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["b"], &["a"], 4).unwrap()
            ]);
        assert!(is_covered(&q, &a2));
    }

    #[test]
    fn join_through_uncovered_variable_is_rejected() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 4).unwrap()
        ]);
        // Q(x) :- R(x, w), R(w, z), x = 1: w occurs twice and is not covered...
        // actually w *is* covered (R(a→b) applied to the first atom). Use the reverse
        // direction to get an uncovered join variable: Q(x) :- R(w, x), R(z, w), x = 1
        // has w uncovered and occurring twice.
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["w", "x"])
            .atom("R", ["z", "w"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let report = coverage(&q, &a);
        assert!(!report.is_covered());
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, CoverageViolation::UncoveredVarOccursMultipleTimes { .. })));
    }

    #[test]
    fn violation_display_strings() {
        let v1 = CoverageViolation::FreeVarNotCovered {
            var: Var(0),
            name: "x".into(),
        };
        assert!(v1.to_string().contains("free variable `x`"));
        let v2 = CoverageViolation::AtomNotIndexed {
            atom_index: 2,
            relation: "R".into(),
        };
        assert!(v2.to_string().contains("#2"));
        let v3 = CoverageViolation::UncoveredVarOccursMultipleTimes {
            var: Var(1),
            name: "w".into(),
            occurrences: 3,
        };
        assert!(v3.to_string().contains("3 times"));
        let v4 = CoverageViolation::UncoveredConstantVar {
            var: Var(2),
            name: "k".into(),
        };
        assert!(v4.to_string().contains("constant variable"));
    }

    #[test]
    fn sublinear_constraints_are_supported_in_output_bound() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let a = AccessSchema::from_constraints([AccessConstraint::from_positions(
            "R",
            vec![0],
            vec![1],
            crate::access::Cardinality::Sublinear(crate::access::SublinearFn::Log2),
        )
        .unwrap()]);
        let q = ConjunctiveQuery::builder("Q")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let report = coverage(&q, &a);
        assert!(report.is_covered());
        // log2(2^20) = 20.
        assert_eq!(report.output_bound(&a, 1 << 20), Some(21));
    }
}

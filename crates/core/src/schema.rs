//! Relation schemas and catalogs.
//!
//! A relational schema `R` (Section 2 of the paper) is a collection of relation schemas,
//! each with a fixed list of named attributes. Queries, access constraints and database
//! instances are all defined over a [`Catalog`].

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The schema of a single relation: a name and an ordered list of attribute names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<String>,
}

impl RelationSchema {
    /// Create a relation schema. Attribute names must be pairwise distinct.
    pub fn new(
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self> {
        let name = name.into();
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].contains(a) {
                return Err(Error::invalid(format!(
                    "relation `{name}` declares attribute `{a}` twice"
                )));
            }
        }
        Ok(Self { name, attributes })
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered attribute names.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of an attribute by name.
    pub fn attr_index(&self, attribute: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a == attribute)
            .ok_or_else(|| Error::UnknownAttribute {
                relation: self.name.clone(),
                attribute: attribute.to_owned(),
            })
    }

    /// Name of the attribute at a position.
    pub fn attr_name(&self, index: usize) -> Option<&str> {
        self.attributes.get(index).map(String::as_str)
    }

    /// Resolve a list of attribute names to sorted, deduplicated positions.
    pub fn resolve_attrs(&self, attrs: &[impl AsRef<str>]) -> Result<Vec<usize>> {
        let mut out = Vec::with_capacity(attrs.len());
        for a in attrs {
            out.push(self.attr_index(a.as_ref())?);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

/// A catalog: the full relational schema over which queries and constraints are defined.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    relations: BTreeMap<String, RelationSchema>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a catalog from an iterator of relation schemas.
    pub fn from_relations(relations: impl IntoIterator<Item = RelationSchema>) -> Result<Self> {
        let mut catalog = Self::new();
        for r in relations {
            catalog.add_relation(r)?;
        }
        Ok(catalog)
    }

    /// Add a relation schema; the name must not already exist.
    pub fn add_relation(&mut self, relation: RelationSchema) -> Result<()> {
        if self.relations.contains_key(relation.name()) {
            return Err(Error::invalid(format!(
                "relation `{}` is already declared",
                relation.name()
            )));
        }
        self.relations.insert(relation.name().to_owned(), relation);
        Ok(())
    }

    /// Convenience: declare a relation from a name and attribute names.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<()> {
        self.add_relation(RelationSchema::new(name, attributes)?)
    }

    /// Look up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::UnknownRelation {
                relation: name.to_owned(),
            })
    }

    /// True when the catalog declares a relation of the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// All relation schemas in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationSchema> {
        self.relations.values()
    }

    /// Number of relations declared.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when no relations are declared.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total size `|R|` of the relational schema: the number of attribute occurrences.
    pub fn size(&self) -> usize {
        self.relations.values().map(RelationSchema::arity).sum()
    }
}

impl fmt::Display for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.declare("Accident", ["aid", "district", "date"]).unwrap();
        c.declare("Casualty", ["cid", "aid", "class", "vid"])
            .unwrap();
        c.declare("Vehicle", ["vid", "driver", "age"]).unwrap();
        c
    }

    #[test]
    fn relation_lookup_and_arity() {
        let c = sample();
        let acc = c.relation("Accident").unwrap();
        assert_eq!(acc.arity(), 3);
        assert_eq!(acc.attr_index("district").unwrap(), 1);
        assert_eq!(acc.attr_name(2), Some("date"));
        assert!(acc.attr_name(3).is_none());
    }

    #[test]
    fn unknown_relation_and_attribute() {
        let c = sample();
        assert!(matches!(
            c.relation("Nope"),
            Err(Error::UnknownRelation { .. })
        ));
        let acc = c.relation("Accident").unwrap();
        assert!(matches!(
            acc.attr_index("nope"),
            Err(Error::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let mut c = sample();
        assert!(c.declare("Accident", ["x"]).is_err());
        assert!(RelationSchema::new("R", ["a", "a"]).is_err());
    }

    #[test]
    fn resolve_attrs_sorts_and_dedups() {
        let c = sample();
        let cas = c.relation("Casualty").unwrap();
        let idx = cas.resolve_attrs(&["vid", "aid", "vid"]).unwrap();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn catalog_size_and_iteration() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.size(), 3 + 4 + 3);
        let names: Vec<&str> = c.relations().map(|r| r.name()).collect();
        assert_eq!(names, vec!["Accident", "Casualty", "Vehicle"]);
    }

    #[test]
    fn display() {
        let c = sample();
        let s = c.to_string();
        assert!(s.contains("Accident(aid, district, date)"));
        assert!(c.relation("Vehicle").unwrap().to_string() == "Vehicle(vid, driver, age)");
    }

    #[test]
    fn from_relations_builder() {
        let c = Catalog::from_relations([
            RelationSchema::new("R", ["a", "b"]).unwrap(),
            RelationSchema::new("S", ["c"]).unwrap(),
        ])
        .unwrap();
        assert!(c.contains("R"));
        assert!(c.contains("S"));
        assert!(!c.contains("T"));
    }
}

//! Access constraints and access schemas (Section 2 of the paper).
//!
//! An access constraint `R(X → Y, N)` is a combination of a cardinality constraint and an
//! index: for every `X`-value `ā` occurring in an instance `D` of `R`, there are at most
//! `N` distinct `Y`-values among the tuples with `t[X] = ā`, and those `Y`-values can be
//! retrieved through an index on `X` for `Y`.
//!
//! The general form `R(X → Y, s(·))` bounds the number of `Y`-values by a sublinear
//! function `s(|D|)` of the database size instead of a constant ([`Cardinality::Sublinear`]).

use crate::error::{Error, Result};
use crate::schema::Catalog;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sublinear cardinality function `s(|D|)` for general access constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SublinearFn {
    /// `s(n) = ceil(log2(n + 1))`.
    Log2,
    /// `s(n) = ceil(sqrt(n))`.
    Sqrt,
    /// `s(n) = ceil(n^exponent)` for an exponent strictly below 1.
    Power {
        /// The exponent, in `(0, 1)`.
        exponent: f64,
    },
    /// `s(n) = ceil(factor * log2(n + 1))`.
    ScaledLog {
        /// Multiplicative factor applied to `log2(n + 1)`.
        factor: f64,
    },
}

impl SublinearFn {
    /// Evaluate the function on a database size.
    pub fn bound(&self, db_size: u64) -> u64 {
        let n = db_size as f64;
        let v = match self {
            SublinearFn::Log2 => (n + 1.0).log2(),
            SublinearFn::Sqrt => n.sqrt(),
            SublinearFn::Power { exponent } => n.powf(*exponent),
            SublinearFn::ScaledLog { factor } => factor * (n + 1.0).log2(),
        };
        v.ceil().max(0.0) as u64
    }
}

impl fmt::Display for SublinearFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SublinearFn::Log2 => write!(f, "log2(|D|)"),
            SublinearFn::Sqrt => write!(f, "sqrt(|D|)"),
            SublinearFn::Power { exponent } => write!(f, "|D|^{exponent}"),
            SublinearFn::ScaledLog { factor } => write!(f, "{factor}*log2(|D|)"),
        }
    }
}

/// The cardinality bound of an access constraint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Cardinality {
    /// Constant bound `N` (the paper's plain access constraints).
    Const(u64),
    /// Sublinear bound `s(|D|)` (general access constraints).
    Sublinear(SublinearFn),
}

impl Cardinality {
    /// The bound for a database of `db_size` tuples.
    pub fn bound(&self, db_size: u64) -> u64 {
        match self {
            Cardinality::Const(n) => *n,
            Cardinality::Sublinear(s) => s.bound(db_size),
        }
    }

    /// The constant bound, if this is a constant-cardinality constraint.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            Cardinality::Const(n) => Some(*n),
            Cardinality::Sublinear(_) => None,
        }
    }

    /// True when the bound is the constant 1 (a functional dependency with an index).
    pub fn is_unit(&self) -> bool {
        matches!(self, Cardinality::Const(1))
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cardinality::Const(n) => write!(f, "{n}"),
            Cardinality::Sublinear(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Cardinality {
    fn from(n: u64) -> Self {
        Cardinality::Const(n)
    }
}

/// An access constraint `R(X → Y, N)` over a relation of the catalog.
///
/// `X` and `Y` are stored as sorted attribute positions of the relation schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessConstraint {
    relation: String,
    x: Vec<usize>,
    y: Vec<usize>,
    cardinality: Cardinality,
}

impl AccessConstraint {
    /// Build a constraint from attribute *names*, resolving them against the catalog.
    ///
    /// `x` may be empty (the paper's `R(∅ → Y, N)` constraints). `y` must not be empty
    /// and must be disjoint from `x`.
    pub fn new(
        catalog: &Catalog,
        relation: &str,
        x: &[&str],
        y: &[&str],
        cardinality: impl Into<Cardinality>,
    ) -> Result<Self> {
        let schema = catalog.relation(relation)?;
        let x_idx = schema.resolve_attrs(x)?;
        let y_idx = schema.resolve_attrs(y)?;
        Self::from_positions(relation, x_idx, y_idx, cardinality)
    }

    /// Build a constraint directly from attribute positions.
    pub fn from_positions(
        relation: impl Into<String>,
        mut x: Vec<usize>,
        mut y: Vec<usize>,
        cardinality: impl Into<Cardinality>,
    ) -> Result<Self> {
        let relation = relation.into();
        x.sort_unstable();
        x.dedup();
        y.sort_unstable();
        y.dedup();
        if y.is_empty() {
            return Err(Error::invalid(format!(
                "access constraint on `{relation}` must have a non-empty Y attribute set"
            )));
        }
        if y.iter().any(|p| x.contains(p)) {
            return Err(Error::invalid(format!(
                "access constraint on `{relation}` has overlapping X and Y attribute sets"
            )));
        }
        Ok(Self {
            relation,
            x,
            y,
            cardinality: cardinality.into(),
        })
    }

    /// The constrained relation name.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Sorted attribute positions of `X` (the index key).
    pub fn x(&self) -> &[usize] {
        &self.x
    }

    /// Sorted attribute positions of `Y` (the retrieved attributes).
    pub fn y(&self) -> &[usize] {
        &self.y
    }

    /// Sorted attribute positions of `X ∪ Y`.
    pub fn xy(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.x.iter().chain(self.y.iter()).copied().collect();
        v.sort_unstable();
        v
    }

    /// The cardinality bound.
    pub fn cardinality(&self) -> Cardinality {
        self.cardinality
    }

    /// Validate the constraint against a catalog (relation exists, positions in range).
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let schema = catalog.relation(&self.relation)?;
        for &p in self.x.iter().chain(self.y.iter()) {
            if p >= schema.arity() {
                return Err(Error::invalid(format!(
                    "access constraint on `{}` references attribute position {p}, \
                     but the relation has arity {}",
                    self.relation,
                    schema.arity()
                )));
            }
        }
        Ok(())
    }

    /// Render the constraint with attribute names from the catalog, e.g.
    /// `Accident(date -> aid, 610)`.
    pub fn display_with(&self, catalog: &Catalog) -> String {
        let names = |idx: &[usize]| -> String {
            match catalog.relation(&self.relation) {
                Ok(schema) => idx
                    .iter()
                    .map(|&p| schema.attr_name(p).unwrap_or("?").to_owned())
                    .collect::<Vec<_>>()
                    .join(", "),
                Err(_) => idx
                    .iter()
                    .map(usize::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
            }
        };
        let x = if self.x.is_empty() {
            "∅".to_owned()
        } else {
            names(&self.x)
        };
        format!(
            "{}({} -> {}, {})",
            self.relation,
            x,
            names(&self.y),
            self.cardinality
        )
    }
}

impl fmt::Display for AccessConstraint {
    /// Positional rendering used when no catalog is available; prefer
    /// [`AccessConstraint::display_with`] for attribute names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_idx = |idx: &[usize]| {
            idx.iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        write!(
            f,
            "{}([{}] -> [{}], {})",
            self.relation,
            fmt_idx(&self.x),
            fmt_idx(&self.y),
            self.cardinality
        )
    }
}

/// An access schema `A`: a set of access constraints over a catalog.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessSchema {
    constraints: Vec<AccessConstraint>,
}

impl AccessSchema {
    /// Create an empty access schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an access schema from constraints.
    pub fn from_constraints(constraints: impl IntoIterator<Item = AccessConstraint>) -> Self {
        Self {
            constraints: constraints.into_iter().collect(),
        }
    }

    /// Add a constraint.
    pub fn add(&mut self, constraint: AccessConstraint) {
        self.constraints.push(constraint);
    }

    /// All constraints, in insertion order.
    pub fn constraints(&self) -> &[AccessConstraint] {
        &self.constraints
    }

    /// The constraint at the given index.
    pub fn constraint(&self, index: usize) -> Option<&AccessConstraint> {
        self.constraints.get(index)
    }

    /// Indices and constraints that apply to a relation.
    pub fn constraints_for<'a>(
        &'a self,
        relation: &'a str,
    ) -> impl Iterator<Item = (usize, &'a AccessConstraint)> + 'a {
        self.constraints
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.relation() == relation)
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when the schema has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Validate every constraint against the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        for c in &self.constraints {
            c.validate(catalog)?;
        }
        Ok(())
    }

    /// Does `A` *cover* the relational schema in the sense of Proposition 5.4?
    ///
    /// `A` covers `R` if for every relation schema `R` there is a constraint
    /// `R(X → Y, N)` in `A` such that every attribute of `R` belongs to `X ∪ Y`.
    /// Under such an `A`, every fully parameterized FO query can be boundedly
    /// specialized.
    pub fn covers_catalog(&self, catalog: &Catalog) -> bool {
        catalog.relations().all(|schema| {
            self.constraints_for(schema.name()).any(|(_, c)| {
                let xy = c.xy();
                (0..schema.arity()).all(|p| xy.contains(&p))
            })
        })
    }

    /// The largest constant cardinality appearing in the schema, if all bounds are constant.
    pub fn max_const_cardinality(&self) -> Option<u64> {
        self.constraints
            .iter()
            .map(|c| c.cardinality().as_const())
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0))
    }

    /// Render the whole schema with attribute names resolved through the catalog.
    pub fn display_with(&self, catalog: &Catalog) -> String {
        self.constraints
            .iter()
            .map(|c| c.display_with(catalog))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl FromIterator<AccessConstraint> for AccessSchema {
    fn from_iter<T: IntoIterator<Item = AccessConstraint>>(iter: T) -> Self {
        Self::from_constraints(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("Accident", ["aid", "district", "date"]).unwrap();
        c.declare("Casualty", ["cid", "aid", "class", "vid"])
            .unwrap();
        c.declare("Vehicle", ["vid", "driver", "age"]).unwrap();
        c
    }

    /// The access schema ψ1–ψ4 of Example 1.1.
    fn example_1_1(c: &Catalog) -> AccessSchema {
        AccessSchema::from_constraints([
            AccessConstraint::new(c, "Accident", &["date"], &["aid"], 610).unwrap(),
            AccessConstraint::new(c, "Casualty", &["aid"], &["vid"], 192).unwrap(),
            AccessConstraint::new(c, "Accident", &["aid"], &["district", "date"], 1).unwrap(),
            AccessConstraint::new(c, "Vehicle", &["vid"], &["driver", "age"], 1).unwrap(),
        ])
    }

    #[test]
    fn constraint_construction_resolves_names() {
        let c = catalog();
        let psi1 = AccessConstraint::new(&c, "Accident", &["date"], &["aid"], 610).unwrap();
        assert_eq!(psi1.x(), &[2]);
        assert_eq!(psi1.y(), &[0]);
        assert_eq!(psi1.cardinality().as_const(), Some(610));
        assert_eq!(psi1.xy(), vec![0, 2]);
        assert_eq!(
            psi1.display_with(&c),
            "Accident(date -> aid, 610)".to_owned()
        );
    }

    #[test]
    fn empty_x_is_allowed_but_empty_y_is_not() {
        let c = catalog();
        let ok = AccessConstraint::new(&c, "Vehicle", &[], &["age"], 1);
        assert!(ok.is_ok());
        let err = AccessConstraint::new(&c, "Vehicle", &["vid"], &[], 1);
        assert!(err.is_err());
    }

    #[test]
    fn overlapping_x_y_rejected() {
        let c = catalog();
        let err = AccessConstraint::new(&c, "Vehicle", &["vid"], &["vid", "age"], 1);
        assert!(err.is_err());
    }

    #[test]
    fn unknown_names_rejected() {
        let c = catalog();
        assert!(AccessConstraint::new(&c, "Nope", &["a"], &["b"], 1).is_err());
        assert!(AccessConstraint::new(&c, "Vehicle", &["nope"], &["age"], 1).is_err());
    }

    #[test]
    fn validate_positions() {
        let c = catalog();
        let bad = AccessConstraint::from_positions("Vehicle", vec![0], vec![9], 1).unwrap();
        assert!(bad.validate(&c).is_err());
        let good = AccessConstraint::from_positions("Vehicle", vec![0], vec![2], 1).unwrap();
        assert!(good.validate(&c).is_ok());
    }

    #[test]
    fn schema_queries() {
        let c = catalog();
        let a = example_1_1(&c);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(a.validate(&c).is_ok());
        assert_eq!(a.constraints_for("Accident").count(), 2);
        assert_eq!(a.constraints_for("Vehicle").count(), 1);
        assert_eq!(a.constraints_for("Nope").count(), 0);
        assert_eq!(a.max_const_cardinality(), Some(610));
        assert!(a.display_with(&c).contains("Casualty(aid -> vid, 192)"));
    }

    #[test]
    fn covers_catalog_proposition_5_4() {
        let c = catalog();
        // ψ1–ψ4 do not cover the catalog: no Casualty constraint spans cid and class.
        assert!(!example_1_1(&c).covers_catalog(&c));

        let covering = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "Accident", &["aid"], &["district", "date"], 1).unwrap(),
            AccessConstraint::new(&c, "Casualty", &["cid"], &["aid", "class", "vid"], 1).unwrap(),
            AccessConstraint::new(&c, "Vehicle", &["vid"], &["driver", "age"], 1).unwrap(),
        ]);
        assert!(covering.covers_catalog(&c));
    }

    #[test]
    fn cardinality_bounds() {
        assert_eq!(Cardinality::Const(5).bound(1_000_000), 5);
        assert!(Cardinality::Const(1).is_unit());
        assert!(!Cardinality::Const(2).is_unit());
        assert_eq!(Cardinality::Sublinear(SublinearFn::Log2).bound(1023), 10);
        assert_eq!(Cardinality::Sublinear(SublinearFn::Sqrt).bound(100), 10);
        assert_eq!(
            Cardinality::Sublinear(SublinearFn::Power { exponent: 0.5 }).bound(81),
            9
        );
        assert_eq!(
            Cardinality::Sublinear(SublinearFn::ScaledLog { factor: 2.0 }).bound(1023),
            20
        );
        assert_eq!(Cardinality::Sublinear(SublinearFn::Log2).as_const(), None);
    }

    #[test]
    fn sublinear_bounds_grow_sublinearly() {
        for f in [
            SublinearFn::Log2,
            SublinearFn::Sqrt,
            SublinearFn::Power { exponent: 0.3 },
        ] {
            let small = f.bound(1_000);
            let large = f.bound(1_000_000);
            assert!(large >= small);
            assert!(large < 1_000_000 / 2, "{f} is not sublinear enough");
        }
    }

    #[test]
    fn display_without_catalog() {
        let c = catalog();
        let psi2 = AccessConstraint::new(&c, "Casualty", &["aid"], &["vid"], 192).unwrap();
        assert_eq!(psi2.to_string(), "Casualty([1] -> [3], 192)");
        let empty_x = AccessConstraint::new(&c, "Vehicle", &[], &["age"], 3).unwrap();
        assert_eq!(empty_x.display_with(&c), "Vehicle(∅ -> age, 3)");
    }

    #[test]
    fn max_cardinality_none_with_sublinear() {
        let c = catalog();
        let mut a = example_1_1(&c);
        a.add(
            AccessConstraint::from_positions(
                "Vehicle",
                vec![0],
                vec![1],
                Cardinality::Sublinear(SublinearFn::Log2),
            )
            .unwrap(),
        );
        assert_eq!(a.max_const_cardinality(), None);
    }

    #[test]
    fn from_iterator() {
        let c = catalog();
        let a: AccessSchema = example_1_1(&c).constraints().to_vec().into_iter().collect();
        assert_eq!(a.len(), 4);
    }
}

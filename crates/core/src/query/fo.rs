//! Full first-order queries (FO).
//!
//! Bounded evaluability is undecidable for FO [Fan, Geerts, Libkin — PODS 2014], so the
//! analyses of this crate only handle FO queries through:
//!
//! * conversion to ∃FO⁺ when the query happens to be positive-existential
//!   ([`FirstOrderQuery::to_positive`]), and
//! * bounded query specialization (Section 5): instantiating parameters
//!   ([`FirstOrderQuery::specialized`]) and the syntactic guarantee of Proposition 5.4.
//!
//! The naive baseline evaluator in `bea-engine` can evaluate FO queries over the active
//! domain of small instances, which is what the reasoning procedures need.

use crate::query::efo::{PosFormula, PositiveQuery};
use crate::query::term::Arg;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A first-order formula.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// A relation atom.
    Atom {
        /// The relation name.
        relation: String,
        /// The arguments (variables by name, or constants).
        args: Vec<Arg>,
    },
    /// An equality atom.
    Eq(Arg, Arg),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Existential quantification.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// Convenience constructor for a relation atom.
    pub fn atom<A: Into<Arg>>(
        relation: impl Into<String>,
        args: impl IntoIterator<Item = A>,
    ) -> Self {
        Formula::Atom {
            relation: relation.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Convenience constructor for an equality atom.
    pub fn eq(left: impl Into<Arg>, right: impl Into<Arg>) -> Self {
        Formula::Eq(left.into(), right.into())
    }

    /// Convenience constructor for negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Self {
        Formula::Not(Box::new(f))
    }

    /// Convenience constructor for existential quantification.
    pub fn exists<S: Into<String>>(vars: impl IntoIterator<Item = S>, body: Formula) -> Self {
        Formula::Exists(vars.into_iter().map(Into::into).collect(), Box::new(body))
    }

    /// Convenience constructor for universal quantification.
    pub fn forall<S: Into<String>>(vars: impl IntoIterator<Item = S>, body: Formula) -> Self {
        Formula::Forall(vars.into_iter().map(Into::into).collect(), Box::new(body))
    }

    /// Free variable names of the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        fn go(f: &Formula, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            let collect_arg = |a: &Arg, bound: &Vec<String>, out: &mut BTreeSet<String>| {
                if let Arg::Var(name) = a {
                    if !bound.contains(name) {
                        out.insert(name.clone());
                    }
                }
            };
            match f {
                Formula::Atom { args, .. } => {
                    for a in args {
                        collect_arg(a, bound, out);
                    }
                }
                Formula::Eq(l, r) => {
                    collect_arg(l, bound, out);
                    collect_arg(r, bound, out);
                }
                Formula::Not(inner) => go(inner, bound, out),
                Formula::And(fs) | Formula::Or(fs) => {
                    for f in fs {
                        go(f, bound, out);
                    }
                }
                Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
                    let before = bound.len();
                    bound.extend(vars.iter().cloned());
                    go(body, bound, out);
                    bound.truncate(before);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// All variable names occurring in the formula, free or bound.
    pub fn all_vars(&self) -> BTreeSet<String> {
        fn go(f: &Formula, out: &mut BTreeSet<String>) {
            let collect_arg = |a: &Arg, out: &mut BTreeSet<String>| {
                if let Arg::Var(name) = a {
                    out.insert(name.clone());
                }
            };
            match f {
                Formula::Atom { args, .. } => {
                    for a in args {
                        collect_arg(a, out);
                    }
                }
                Formula::Eq(l, r) => {
                    collect_arg(l, out);
                    collect_arg(r, out);
                }
                Formula::Not(inner) => go(inner, out),
                Formula::And(fs) | Formula::Or(fs) => {
                    for f in fs {
                        go(f, out);
                    }
                }
                Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
                    out.extend(vars.iter().cloned());
                    go(body, out);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }

    /// True when the formula uses neither negation nor universal quantification.
    pub fn is_positive_existential(&self) -> bool {
        match self {
            Formula::Atom { .. } | Formula::Eq(_, _) => true,
            Formula::Not(_) | Formula::Forall(_, _) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_positive_existential),
            Formula::Exists(_, body) => body.is_positive_existential(),
        }
    }

    /// Convert to a positive formula, if [`Formula::is_positive_existential`] holds.
    pub fn to_positive(&self) -> Option<PosFormula> {
        match self {
            Formula::Atom { relation, args } => Some(PosFormula::Atom {
                relation: relation.clone(),
                args: args.clone(),
            }),
            Formula::Eq(l, r) => Some(PosFormula::Eq(l.clone(), r.clone())),
            Formula::Not(_) | Formula::Forall(_, _) => None,
            Formula::And(fs) => fs
                .iter()
                .map(Formula::to_positive)
                .collect::<Option<Vec<_>>>()
                .map(PosFormula::And),
            Formula::Or(fs) => fs
                .iter()
                .map(Formula::to_positive)
                .collect::<Option<Vec<_>>>()
                .map(PosFormula::Or),
            Formula::Exists(vars, body) => body
                .to_positive()
                .map(|b| PosFormula::Exists(vars.clone(), Box::new(b))),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom { relation, args } => {
                let args = args.iter().map(Arg::to_string).collect::<Vec<_>>();
                write!(f, "{relation}({})", args.join(", "))
            }
            Formula::Eq(l, r) => write!(f, "{l} = {r}"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                let parts = fs.iter().map(|x| format!("({x})")).collect::<Vec<_>>();
                write!(f, "{}", parts.join(" ∧ "))
            }
            Formula::Or(fs) => {
                let parts = fs.iter().map(|x| format!("({x})")).collect::<Vec<_>>();
                write!(f, "{}", parts.join(" ∨ "))
            }
            Formula::Exists(vars, body) => write!(f, "∃{}({body})", vars.join(", ")),
            Formula::Forall(vars, body) => write!(f, "∀{}({body})", vars.join(", ")),
        }
    }
}

/// A first-order query with a designated parameter set (Section 5).
#[derive(Debug, Clone, PartialEq)]
pub struct FirstOrderQuery {
    name: String,
    head: Vec<Arg>,
    body: Formula,
    params: Vec<String>,
}

impl FirstOrderQuery {
    /// Build a first-order query.
    pub fn new<A: Into<Arg>>(
        name: impl Into<String>,
        head: impl IntoIterator<Item = A>,
        body: Formula,
    ) -> Self {
        Self {
            name: name.into(),
            head: head.into_iter().map(Into::into).collect(),
            body,
            params: Vec::new(),
        }
    }

    /// Declare the parameter names.
    pub fn with_params<S: Into<String>>(mut self, params: impl IntoIterator<Item = S>) -> Self {
        self.params = params.into_iter().map(Into::into).collect();
        self
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The head arguments.
    pub fn head(&self) -> &[Arg] {
        &self.head
    }

    /// The output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// The body formula.
    pub fn body(&self) -> &Formula {
        &self.body
    }

    /// The declared parameter names.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// True when every variable of the query is declared as a parameter
    /// ("fully parameterized", Proposition 5.4).
    pub fn is_fully_parameterized(&self) -> bool {
        let all = self.body.all_vars();
        let declared: BTreeSet<&String> = self.params.iter().collect();
        all.iter().all(|v| declared.contains(v))
    }

    /// Convert to a positive existential query, if the body is negation- and ∀-free.
    pub fn to_positive(&self) -> Option<PositiveQuery> {
        self.body.to_positive().map(|body| {
            PositiveQuery::new(self.name.clone(), self.head.iter().cloned(), body)
                .with_params(self.params.iter().cloned())
        })
    }

    /// The specialized query `Q(x̄ = c̄)`: conjoin `x = c` in the scope where each
    /// parameter is bound (or at the top level for free parameters).
    ///
    /// Following Section 5, the equalities are added *inside* the quantifier prefix, so
    /// both free and bound parameters can be instantiated.
    pub fn specialized(&self, bindings: &[(String, Value)]) -> FirstOrderQuery {
        let mut body = self.body.clone();
        for (name, value) in bindings {
            let eq = Formula::Eq(Arg::Var(name.clone()), Arg::Const(value.clone()));
            let mut attached = false;
            body = attach_equality(body, name, &eq, &mut attached);
            if !attached {
                body = Formula::And(vec![body, eq]);
            }
        }
        FirstOrderQuery {
            name: format!("{}_spec", self.name),
            head: self.head.clone(),
            body,
            params: self.params.clone(),
        }
    }
}

/// Attach `eq` directly under the outermost quantifier binding `name`. Returns the new
/// formula; sets `attached` when a binder was found.
fn attach_equality(f: Formula, name: &str, eq: &Formula, attached: &mut bool) -> Formula {
    if *attached {
        return f;
    }
    match f {
        Formula::Exists(vars, body) => {
            if vars.iter().any(|v| v == name) {
                *attached = true;
                Formula::Exists(vars, Box::new(Formula::And(vec![*body, eq.clone()])))
            } else {
                Formula::Exists(vars, Box::new(attach_equality(*body, name, eq, attached)))
            }
        }
        Formula::Forall(vars, body) => {
            if vars.iter().any(|v| v == name) {
                *attached = true;
                Formula::Forall(vars, Box::new(Formula::And(vec![*body, eq.clone()])))
            } else {
                Formula::Forall(vars, Box::new(attach_equality(*body, name, eq, attached)))
            }
        }
        Formula::Not(inner) => Formula::Not(Box::new(attach_equality(*inner, name, eq, attached))),
        Formula::And(fs) => Formula::And(
            fs.into_iter()
                .map(|x| attach_equality(x, name, eq, attached))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.into_iter()
                .map(|x| attach_equality(x, name, eq, attached))
                .collect(),
        ),
        leaf => leaf,
    }
}

impl fmt::Display for FirstOrderQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = self.head.iter().map(Arg::to_string).collect::<Vec<_>>();
        write!(f, "{}({}) := {}", self.name, head.join(", "), self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_and_all_vars() {
        let f = Formula::exists(
            ["y"],
            Formula::And(vec![
                Formula::atom("R", ["x", "y"]),
                Formula::not(Formula::atom("S", ["y", "z"])),
            ]),
        );
        assert_eq!(f.free_vars(), BTreeSet::from(["x".into(), "z".into()]));
        assert_eq!(
            f.all_vars(),
            BTreeSet::from(["x".into(), "y".into(), "z".into()])
        );
    }

    #[test]
    fn positivity_detection() {
        let pos = Formula::exists(["y"], Formula::atom("R", ["x", "y"]));
        assert!(pos.is_positive_existential());
        assert!(pos.to_positive().is_some());

        let neg = Formula::not(Formula::atom("R", ["x", "y"]));
        assert!(!neg.is_positive_existential());
        assert!(neg.to_positive().is_none());

        let forall = Formula::forall(["y"], Formula::atom("R", ["x", "y"]));
        assert!(!forall.is_positive_existential());
        assert!(Formula::Or(vec![forall]).to_positive().is_none());
    }

    #[test]
    fn fo_query_to_positive() {
        let q = FirstOrderQuery::new(
            "Q",
            ["x"],
            Formula::exists(["y"], Formula::atom("R", ["x", "y"])),
        )
        .with_params(["x"]);
        let p = q.to_positive().unwrap();
        assert_eq!(p.name(), "Q");
        assert_eq!(p.params(), &["x".to_owned()]);

        let q_neg = FirstOrderQuery::new("Q", ["x"], Formula::not(Formula::atom("R", ["x", "x"])));
        assert!(q_neg.to_positive().is_none());
    }

    #[test]
    fn specialization_of_free_parameter() {
        let q = FirstOrderQuery::new("Q", ["x"], Formula::atom("R", ["x", "y"])).with_params(["y"]);
        let s = q.specialized(&[("y".into(), Value::int(3))]);
        // The equality is conjoined at the top level because y is free.
        match s.body() {
            Formula::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::Eq(_, _)));
            }
            other => panic!("expected top-level conjunction, got {other}"),
        }
        assert_eq!(s.arity(), 1);
    }

    #[test]
    fn specialization_of_bound_parameter_goes_under_its_binder() {
        let q = FirstOrderQuery::new(
            "Q",
            ["x"],
            Formula::exists(
                ["y"],
                Formula::And(vec![
                    Formula::atom("R", ["x", "y"]),
                    Formula::forall(["z"], Formula::atom("S", ["y", "z"])),
                ]),
            ),
        )
        .with_params(["y"]);
        let s = q.specialized(&[("y".into(), Value::str("nyc"))]);
        match s.body() {
            Formula::Exists(vars, body) => {
                assert_eq!(vars, &vec!["y".to_owned()]);
                assert!(matches!(**body, Formula::And(_)));
            }
            other => panic!("expected ∃y(...), got {other}"),
        }
    }

    #[test]
    fn fully_parameterized_detection() {
        let q = FirstOrderQuery::new(
            "Q",
            ["x"],
            Formula::exists(["y"], Formula::atom("R", ["x", "y"])),
        );
        assert!(!q.clone().with_params(["x"]).is_fully_parameterized());
        assert!(q.with_params(["x", "y"]).is_fully_parameterized());
    }

    #[test]
    fn display_contains_quantifiers_and_negation() {
        let q = FirstOrderQuery::new(
            "Q",
            ["x"],
            Formula::forall(["y"], Formula::not(Formula::atom("R", ["x", "y"]))),
        );
        let s = q.to_string();
        assert!(s.contains("∀y"));
        assert!(s.contains("¬"));
        assert!(Formula::eq("x", 1i64).to_string().contains("x = 1"));
    }
}

//! Conjunctive queries (CQ, a.k.a. SPC queries).
//!
//! A [`ConjunctiveQuery`] is kept in the *normalized form* the paper assumes w.l.o.g.
//! (Section 3.2):
//!
//! * only variables occur in relation atoms and in the head;
//! * constants occur only in equality atoms (`x = c`);
//! * the query is *safe*: every variable is equal (via the equality atoms) to a variable
//!   occurring in a relation atom, or to a constant.
//!
//! The [`CqBuilder`] accepts the natural mixed syntax (constants inside atoms, constants in
//! the head) and performs the normalization automatically, so
//! `Q0(xa) :- Accident(aid, "Queen's Park", "1/5/2005"), …` can be written directly.

use crate::error::{Error, Result};
use crate::query::term::{Arg, Var};
use crate::schema::Catalog;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A relation atom `R(x₁, …, xₙ)` of a normalized conjunctive query (variables only).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// The relation name.
    pub relation: String,
    /// The argument variables, one per attribute of the relation.
    pub args: Vec<Var>,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: impl Into<String>, args: Vec<Var>) -> Self {
        Self {
            relation: relation.into(),
            args,
        }
    }
}

/// An equality atom of a normalized conjunctive query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Equality {
    /// `x = y` between two variables.
    Vars(Var, Var),
    /// `x = c` between a variable and a constant.
    Const(Var, Value),
}

/// Equality classes of the variables of a conjunctive query.
///
/// `eq(x, Q)` (the paper's notation) is the class of `x` under the equalities `y = z`
/// of `Q` and transitivity. `eq⁺(x, Q)` additionally merges classes that are forced equal
/// through constants (`x = c` and `y = c` imply `x = y`). Build them with
/// [`ConjunctiveQuery::eq_classes`] and [`ConjunctiveQuery::eq_plus_classes`].
#[derive(Debug, Clone)]
pub struct EqClasses {
    root: Vec<usize>,
    members: BTreeMap<usize, Vec<Var>>,
    constants: HashMap<usize, Value>,
    contradictory: BTreeSet<usize>,
}

impl EqClasses {
    fn build(query: &ConjunctiveQuery, plus: bool) -> Self {
        let n = query.var_names.len();
        let mut parent: Vec<usize> = (0..n).collect();

        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        fn union(parent: &mut [usize], a: usize, b: usize) {
            let ra = find(parent, a);
            let rb = find(parent, b);
            if ra != rb {
                parent[rb] = ra;
            }
        }

        for eq in &query.equalities {
            if let Equality::Vars(a, b) = eq {
                union(&mut parent, a.index(), b.index());
            }
        }

        // Assign constants to classes; detect contradictions (two distinct constants in
        // one class, e.g. `x = 1 ∧ x = 2`).
        let mut constants: HashMap<usize, Value> = HashMap::new();
        let mut contradictory: BTreeSet<usize> = BTreeSet::new();
        for eq in &query.equalities {
            if let Equality::Const(v, c) = eq {
                let r = find(&mut parent, v.index());
                match constants.get(&r) {
                    Some(existing) if existing != c => {
                        contradictory.insert(r);
                    }
                    Some(_) => {}
                    None => {
                        constants.insert(r, c.clone());
                    }
                }
            }
        }

        if plus {
            // eq⁺: merge classes carrying the same constant.
            let mut by_const: HashMap<Value, usize> = HashMap::new();
            let roots: Vec<usize> = constants.keys().copied().collect();
            for r in roots {
                let c = constants[&r].clone();
                match by_const.get(&c) {
                    Some(&other) => union(&mut parent, other, r),
                    None => {
                        by_const.insert(c, r);
                    }
                }
            }
            // Re-anchor constants and contradictions on the new roots.
            let mut new_constants = HashMap::new();
            let mut new_contradictory = BTreeSet::new();
            for (r, c) in constants {
                let nr = find(&mut parent, r);
                match new_constants.get(&nr) {
                    Some(existing) if existing != &c => {
                        new_contradictory.insert(nr);
                    }
                    Some(_) => {}
                    None => {
                        new_constants.insert(nr, c);
                    }
                }
            }
            for r in contradictory {
                new_contradictory.insert(find(&mut parent, r));
            }
            constants = new_constants;
            contradictory = new_contradictory;
        }

        let root: Vec<usize> = (0..n).map(|i| find(&mut parent, i)).collect();
        let mut members: BTreeMap<usize, Vec<Var>> = BTreeMap::new();
        for (i, &r) in root.iter().enumerate() {
            members.entry(r).or_default().push(Var(i as u32));
        }
        // Constants/contradictions may still be keyed by stale roots after path updates.
        let constants = constants
            .into_iter()
            .map(|(r, c)| (root[r], c))
            .collect::<HashMap<_, _>>();
        let contradictory = contradictory.into_iter().map(|r| root[r]).collect();

        Self {
            root,
            members,
            constants,
            contradictory,
        }
    }

    /// The class representative (an arbitrary but stable index) of a variable.
    pub fn root(&self, v: Var) -> usize {
        self.root[v.index()]
    }

    /// True when two variables are in the same class.
    pub fn same(&self, a: Var, b: Var) -> bool {
        self.root(a) == self.root(b)
    }

    /// The members of the class of `v`.
    pub fn members(&self, v: Var) -> &[Var] {
        &self.members[&self.root(v)]
    }

    /// The constant forced on the class of `v`, if any.
    pub fn constant(&self, v: Var) -> Option<&Value> {
        self.constants.get(&self.root(v))
    }

    /// True when the class of `v` is forced to two distinct constants.
    pub fn is_contradictory(&self, v: Var) -> bool {
        self.contradictory.contains(&self.root(v))
    }

    /// True when any class is contradictory (the query has no classical answer).
    pub fn has_contradiction(&self) -> bool {
        !self.contradictory.is_empty()
    }

    /// Iterate over all classes as `(representative, members)`.
    pub fn classes(&self) -> impl Iterator<Item = (usize, &[Var])> {
        self.members.iter().map(|(r, m)| (*r, m.as_slice()))
    }
}

/// A normalized conjunctive query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    name: String,
    head: Vec<Var>,
    atoms: Vec<Atom>,
    equalities: Vec<Equality>,
    var_names: Vec<String>,
    params: BTreeSet<Var>,
}

impl ConjunctiveQuery {
    /// Start building a conjunctive query with the given name.
    pub fn builder(name: impl Into<String>) -> CqBuilder {
        CqBuilder::new(name)
    }

    /// Low-level constructor from already-normalized parts.
    ///
    /// Checks well-formedness (variable indices in range, safety) and compacts the
    /// variable table so that every variable is used. Most callers should use
    /// [`CqBuilder`], which also validates relation names and arities against a catalog;
    /// this constructor exists for query transformations that cannot change arities
    /// (atom removal, variable unification).
    pub fn from_raw_parts(
        name: impl Into<String>,
        var_names: Vec<String>,
        head: Vec<Var>,
        atoms: Vec<Atom>,
        equalities: Vec<Equality>,
        params: BTreeSet<Var>,
    ) -> Result<Self> {
        let name = name.into();
        let n = var_names.len();
        let in_range = |v: Var| v.index() < n;
        for v in head.iter().copied() {
            if !in_range(v) {
                return Err(Error::invalid(format!(
                    "head variable {v} out of range in query `{name}`"
                )));
            }
        }
        for a in &atoms {
            if !a.args.iter().copied().all(in_range) {
                return Err(Error::invalid(format!(
                    "atom over `{}` references an out-of-range variable in query `{name}`",
                    a.relation
                )));
            }
        }
        for e in &equalities {
            let ok = match e {
                Equality::Vars(a, b) => in_range(*a) && in_range(*b),
                Equality::Const(v, _) => in_range(*v),
            };
            if !ok {
                return Err(Error::invalid(format!(
                    "equality references an out-of-range variable in query `{name}`"
                )));
            }
        }

        let mut q = Self {
            name,
            head,
            atoms,
            equalities,
            var_names,
            params,
        };
        q.compact();
        q.check_safety()?;
        Ok(q)
    }

    /// Drop unused variables from the variable table, renumbering the rest.
    fn compact(&mut self) {
        let n = self.var_names.len();
        let mut used = vec![false; n];
        for v in &self.head {
            used[v.index()] = true;
        }
        for a in &self.atoms {
            for v in &a.args {
                used[v.index()] = true;
            }
        }
        for e in &self.equalities {
            match e {
                Equality::Vars(a, b) => {
                    used[a.index()] = true;
                    used[b.index()] = true;
                }
                Equality::Const(v, _) => used[v.index()] = true,
            }
        }
        if used.iter().all(|&u| u) {
            return;
        }
        let mut remap: Vec<Option<Var>> = vec![None; n];
        let mut new_names = Vec::new();
        for i in 0..n {
            if used[i] {
                remap[i] = Some(Var(new_names.len() as u32));
                new_names.push(self.var_names[i].clone());
            }
        }
        let map = |v: Var| remap[v.index()].expect("used variable must be remapped");
        self.head = self.head.iter().map(|&v| map(v)).collect();
        for a in &mut self.atoms {
            a.args = a.args.iter().map(|&v| map(v)).collect();
        }
        for e in &mut self.equalities {
            *e = match e {
                Equality::Vars(a, b) => Equality::Vars(map(*a), map(*b)),
                Equality::Const(v, c) => Equality::Const(map(*v), c.clone()),
            };
        }
        // Parameters that no longer occur anywhere in the query (e.g. after an atom
        // removal) are dropped rather than kept as dangling references.
        self.params = self
            .params
            .iter()
            .filter_map(|&v| remap[v.index()])
            .collect();
        self.var_names = new_names;
    }

    /// Safety check: every variable's `eq` class contains a relation-atom variable or a
    /// constant.
    fn check_safety(&self) -> Result<()> {
        let eq = self.eq_classes();
        let atom_vars = self.atom_vars();
        for v in self.vars() {
            let class_has_atom_var = eq.members(v).iter().any(|m| atom_vars.contains(m));
            let class_has_const = eq.constant(v).is_some();
            if !class_has_atom_var && !class_has_const {
                return Err(Error::UnsafeQuery {
                    variable: self.var_name(v).to_owned(),
                });
            }
        }
        Ok(())
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the query.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The head (output) variables, in output order. Variables may repeat.
    pub fn head(&self) -> &[Var] {
        &self.head
    }

    /// The output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// The relation atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The equality atoms.
    pub fn equalities(&self) -> &[Equality] {
        &self.equalities
    }

    /// The designated parameters (Section 5), if any.
    pub fn params(&self) -> &BTreeSet<Var> {
        &self.params
    }

    /// Number of variables in the query (free and bound).
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Iterate over all variables of the query.
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        (0..self.var_names.len() as u32).map(Var)
    }

    /// The display name of a variable.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Look up a variable by display name.
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// The set of free (head) variables.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        self.head.iter().copied().collect()
    }

    /// The set of bound (non-head) variables.
    pub fn bound_vars(&self) -> BTreeSet<Var> {
        let free = self.free_vars();
        self.vars().filter(|v| !free.contains(v)).collect()
    }

    /// Variables occurring in relation atoms.
    pub fn atom_vars(&self) -> BTreeSet<Var> {
        self.atoms
            .iter()
            .flat_map(|a| a.args.iter().copied())
            .collect()
    }

    /// Total number of occurrences of `v` across relation atoms and equality atoms.
    ///
    /// This is the occurrence count used by the covered-query conditions: a bound,
    /// non-constant variable that occurs exactly once is a pure "don't care" existential.
    pub fn occurrence_count(&self, v: Var) -> usize {
        let in_atoms: usize = self
            .atoms
            .iter()
            .map(|a| a.args.iter().filter(|&&x| x == v).count())
            .sum();
        let in_eqs: usize = self
            .equalities
            .iter()
            .map(|e| match e {
                Equality::Vars(a, b) => usize::from(*a == v) + usize::from(*b == v),
                Equality::Const(x, _) => usize::from(*x == v),
            })
            .sum();
        in_atoms + in_eqs
    }

    /// Equality classes `eq(·, Q)` from variable-variable equalities only.
    pub fn eq_classes(&self) -> EqClasses {
        EqClasses::build(self, false)
    }

    /// Extended equality classes `eq⁺(·, Q)`, additionally merging classes forced equal
    /// through shared constants.
    pub fn eq_plus_classes(&self) -> EqClasses {
        EqClasses::build(self, true)
    }

    /// Constant variables: variables whose `eq` class carries a constant.
    pub fn constant_vars(&self) -> BTreeSet<Var> {
        let eq = self.eq_classes();
        self.vars().filter(|&v| eq.constant(v).is_some()).collect()
    }

    /// Data-dependent variables: variables whose `eq` class contains a variable occurring
    /// in a relation atom. The remaining variables are data-independent (their values are
    /// fixed by the query alone).
    pub fn data_dependent_vars(&self) -> BTreeSet<Var> {
        let eq = self.eq_classes();
        let atom_vars = self.atom_vars();
        self.vars()
            .filter(|&v| eq.members(v).iter().any(|m| atom_vars.contains(m)))
            .collect()
    }

    /// True when the query has classically contradictory constants (e.g. `x = 1 ∧ x = 2`).
    ///
    /// Such queries are still well-formed; they simply have an empty answer on every
    /// database (cf. `Q′₂` of Example 3.12).
    pub fn has_contradiction(&self) -> bool {
        self.eq_classes().has_contradiction()
    }

    // ------------------------------------------------------------------
    // Transformations used by the rewriting, envelope and specialization analyses.
    // ------------------------------------------------------------------

    /// A copy of the query without the relation atoms at the given indices.
    ///
    /// Bound variables that become unsafe (no longer tied to a relation atom or a
    /// constant) are dropped together with their equality atoms; if a *head* variable
    /// becomes unsafe the removal is rejected.
    pub fn without_atoms(&self, remove: &BTreeSet<usize>) -> Result<Self> {
        let atoms: Vec<Atom> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| !remove.contains(i))
            .map(|(_, a)| a.clone())
            .collect();

        // Iteratively drop unsafe bound variables and the equalities that mention them.
        let mut equalities = self.equalities.clone();
        let head_set = self.free_vars();
        loop {
            let atom_vars: BTreeSet<Var> =
                atoms.iter().flat_map(|a| a.args.iter().copied()).collect();
            // Recompute eq classes over the surviving equalities.
            let probe = Self {
                name: self.name.clone(),
                head: self.head.clone(),
                atoms: atoms.clone(),
                equalities: equalities.clone(),
                var_names: self.var_names.clone(),
                params: self.params.clone(),
            };
            let eq = probe.eq_classes();
            let mut unsafe_vars: BTreeSet<Var> = BTreeSet::new();
            for v in probe.vars_in_use() {
                let safe =
                    eq.members(v).iter().any(|m| atom_vars.contains(m)) || eq.constant(v).is_some();
                if !safe {
                    unsafe_vars.insert(v);
                }
            }
            if unsafe_vars.is_empty() {
                break;
            }
            if let Some(bad) = unsafe_vars.iter().find(|v| head_set.contains(v)) {
                return Err(Error::UnsafeQuery {
                    variable: self.var_name(*bad).to_owned(),
                });
            }
            let before = equalities.len();
            equalities.retain(|e| match e {
                Equality::Vars(a, b) => !unsafe_vars.contains(a) && !unsafe_vars.contains(b),
                Equality::Const(v, _) => !unsafe_vars.contains(v),
            });
            if equalities.len() == before {
                break;
            }
        }

        Self::from_raw_parts(
            self.name.clone(),
            self.var_names.clone(),
            self.head.clone(),
            atoms,
            equalities,
            self.params.clone(),
        )
    }

    /// Variables that occur in the head, an atom or an equality (used internally while
    /// transforming queries before compaction).
    fn vars_in_use(&self) -> BTreeSet<Var> {
        let mut used: BTreeSet<Var> = self.head.iter().copied().collect();
        used.extend(self.atoms.iter().flat_map(|a| a.args.iter().copied()));
        for e in &self.equalities {
            match e {
                Equality::Vars(a, b) => {
                    used.insert(*a);
                    used.insert(*b);
                }
                Equality::Const(v, _) => {
                    used.insert(*v);
                }
            }
        }
        used
    }

    /// A copy of the query in which every variable is replaced by the representative of
    /// its group. `groups` maps each variable to its replacement (identity for untouched
    /// variables). Duplicate atoms and equalities produced by the merge are removed.
    pub fn merge_vars(&self, replacement: &BTreeMap<Var, Var>) -> Result<Self> {
        let map = |v: Var| *replacement.get(&v).unwrap_or(&v);
        let head = self.head.iter().map(|&v| map(v)).collect();
        let mut atoms: Vec<Atom> = self
            .atoms
            .iter()
            .map(|a| Atom::new(a.relation.clone(), a.args.iter().map(|&v| map(v)).collect()))
            .collect();
        let mut seen = BTreeSet::new();
        atoms.retain(|a| seen.insert((a.relation.clone(), a.args.clone())));

        let mut equalities: Vec<Equality> = Vec::new();
        for e in &self.equalities {
            let mapped = match e {
                Equality::Vars(a, b) => {
                    let (a, b) = (map(*a), map(*b));
                    if a == b {
                        continue;
                    }
                    Equality::Vars(a.min(b), a.max(b))
                }
                Equality::Const(v, c) => Equality::Const(map(*v), c.clone()),
            };
            if !equalities.contains(&mapped) {
                equalities.push(mapped);
            }
        }
        let params = self.params.iter().map(|&v| map(v)).collect();
        Self::from_raw_parts(
            self.name.clone(),
            self.var_names.clone(),
            head,
            atoms,
            equalities,
            params,
        )
    }

    /// A copy of the query with extra `x = c` equalities (used by query specialization).
    pub fn with_const_equalities(&self, bindings: &[(Var, Value)]) -> Result<Self> {
        let mut equalities = self.equalities.clone();
        for (v, c) in bindings {
            equalities.push(Equality::Const(*v, c.clone()));
        }
        Self::from_raw_parts(
            self.name.clone(),
            self.var_names.clone(),
            self.head.clone(),
            self.atoms.clone(),
            equalities,
            self.params.clone(),
        )
    }

    /// Rebuild a [`CqBuilder`] from this query, preserving variable names; used when a
    /// transformation needs to add atoms (which requires re-validating against a catalog).
    pub fn to_builder(&self) -> CqBuilder {
        let mut b = CqBuilder::new(self.name.clone());
        b.head_args = self
            .head
            .iter()
            .map(|&v| Arg::Var(self.var_name(v).to_owned()))
            .collect();
        for a in &self.atoms {
            b.atoms.push((
                a.relation.clone(),
                a.args
                    .iter()
                    .map(|&v| Arg::Var(self.var_name(v).to_owned()))
                    .collect(),
            ));
        }
        for e in &self.equalities {
            match e {
                Equality::Vars(x, y) => b.equalities.push((
                    Arg::Var(self.var_name(*x).to_owned()),
                    Arg::Var(self.var_name(*y).to_owned()),
                )),
                Equality::Const(x, c) => b.equalities.push((
                    Arg::Var(self.var_name(*x).to_owned()),
                    Arg::Const(c.clone()),
                )),
            }
        }
        b.params = self
            .params
            .iter()
            .map(|&v| self.var_name(v).to_owned())
            .collect();
        b
    }

    /// A fresh variable name not used by this query, derived from `stem`.
    pub fn fresh_name(&self, stem: &str) -> String {
        if self.var_by_name(stem).is_none() {
            return stem.to_owned();
        }
        let mut i = 0u32;
        loop {
            let candidate = format!("{stem}_{i}");
            if self.var_by_name(&candidate).is_none() {
                return candidate;
            }
            i += 1;
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = self
            .head
            .iter()
            .map(|&v| self.var_name(v).to_owned())
            .collect::<Vec<_>>()
            .join(", ");
        write!(f, "{}({}) :- ", self.name, head)?;
        let mut parts: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                format!(
                    "{}({})",
                    a.relation,
                    a.args
                        .iter()
                        .map(|&v| self.var_name(v).to_owned())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect();
        for e in &self.equalities {
            parts.push(match e {
                Equality::Vars(a, b) => {
                    format!("{} = {}", self.var_name(*a), self.var_name(*b))
                }
                Equality::Const(v, c) => format!("{} = {}", self.var_name(*v), c),
            });
        }
        write!(f, "{}.", parts.join(", "))
    }
}

/// Builder for [`ConjunctiveQuery`] values.
///
/// The builder accepts constants anywhere (head, atom arguments, both sides of an
/// equality) and produces the normalized form.
#[derive(Debug, Clone)]
pub struct CqBuilder {
    name: String,
    pub(crate) head_args: Vec<Arg>,
    pub(crate) atoms: Vec<(String, Vec<Arg>)>,
    pub(crate) equalities: Vec<(Arg, Arg)>,
    pub(crate) params: Vec<String>,
}

impl CqBuilder {
    /// Start a builder for a query with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            head_args: Vec::new(),
            atoms: Vec::new(),
            equalities: Vec::new(),
            params: Vec::new(),
        }
    }

    /// Set the head (output) arguments.
    pub fn head<A: Into<Arg>>(mut self, args: impl IntoIterator<Item = A>) -> Self {
        self.head_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Add a relation atom.
    pub fn atom<A: Into<Arg>>(
        mut self,
        relation: impl Into<String>,
        args: impl IntoIterator<Item = A>,
    ) -> Self {
        self.atoms
            .push((relation.into(), args.into_iter().map(Into::into).collect()));
        self
    }

    /// Add an equality atom between two arguments (variables or constants).
    pub fn eq(mut self, left: impl Into<Arg>, right: impl Into<Arg>) -> Self {
        self.equalities.push((left.into(), right.into()));
        self
    }

    /// Declare a variable (by name) as a parameter of the query (Section 5).
    pub fn param(mut self, name: impl Into<String>) -> Self {
        self.params.push(name.into());
        self
    }

    /// Declare several parameters at once.
    pub fn params<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.params.extend(names.into_iter().map(Into::into));
        self
    }

    /// Validate against the catalog, normalize, and build the query.
    pub fn build(self, catalog: &Catalog) -> Result<ConjunctiveQuery> {
        // Arity / relation validation first.
        for (rel, args) in &self.atoms {
            let schema = catalog.relation(rel)?;
            if schema.arity() != args.len() {
                return Err(Error::ArityMismatch {
                    relation: rel.clone(),
                    expected: schema.arity(),
                    found: args.len(),
                });
            }
        }

        /// Variable interner used during normalization.
        struct Interner {
            var_names: Vec<String>,
            var_map: HashMap<String, Var>,
            fresh_counter: usize,
        }

        impl Interner {
            fn intern(&mut self, name: &str) -> Var {
                if let Some(&v) = self.var_map.get(name) {
                    return v;
                }
                let v = Var(self.var_names.len() as u32);
                self.var_names.push(name.to_owned());
                self.var_map.insert(name.to_owned(), v);
                v
            }

            /// Normalize an argument that must be a variable: constants become a fresh
            /// variable plus a constant equality.
            fn arg_to_var(&mut self, arg: &Arg, equalities: &mut Vec<Equality>) -> Var {
                match arg {
                    Arg::Var(name) => self.intern(name),
                    Arg::Const(value) => {
                        let name = loop {
                            let candidate = format!("_c{}", self.fresh_counter);
                            self.fresh_counter += 1;
                            if !self.var_map.contains_key(&candidate) {
                                break candidate;
                            }
                        };
                        let v = self.intern(&name);
                        equalities.push(Equality::Const(v, value.clone()));
                        v
                    }
                }
            }
        }

        let mut interner = Interner {
            var_names: Vec::new(),
            var_map: HashMap::new(),
            fresh_counter: 0,
        };
        let mut equalities: Vec<Equality> = Vec::new();

        let head: Vec<Var> = self
            .head_args
            .iter()
            .map(|a| interner.arg_to_var(a, &mut equalities))
            .collect();

        let atoms: Vec<Atom> = self
            .atoms
            .iter()
            .map(|(rel, args)| {
                Atom::new(
                    rel.clone(),
                    args.iter()
                        .map(|a| interner.arg_to_var(a, &mut equalities))
                        .collect(),
                )
            })
            .collect();

        for (l, r) in &self.equalities {
            match (l, r) {
                (Arg::Var(a), Arg::Var(b)) => {
                    let va = interner.intern(a);
                    let vb = interner.intern(b);
                    if va != vb {
                        equalities.push(Equality::Vars(va, vb));
                    }
                }
                (Arg::Var(a), Arg::Const(c)) | (Arg::Const(c), Arg::Var(a)) => {
                    let va = interner.intern(a);
                    equalities.push(Equality::Const(va, c.clone()));
                }
                (Arg::Const(c1), Arg::Const(c2)) => {
                    if c1 != c2 {
                        // A contradictory constant pair: encode it on a fresh variable so
                        // the query is well-formed but has an empty answer everywhere.
                        let v = interner.arg_to_var(&Arg::Const(c1.clone()), &mut equalities);
                        equalities.push(Equality::Const(v, c2.clone()));
                    }
                }
            }
        }

        let mut params = BTreeSet::new();
        for p in &self.params {
            match interner.var_map.get(p) {
                Some(&v) => {
                    params.insert(v);
                }
                None => {
                    return Err(Error::UnknownParameter {
                        parameter: p.clone(),
                    })
                }
            }
        }

        ConjunctiveQuery::from_raw_parts(
            self.name,
            interner.var_names,
            head,
            atoms,
            equalities,
            params,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("Accident", ["aid", "district", "date"]).unwrap();
        c.declare("Casualty", ["cid", "aid", "class", "vid"])
            .unwrap();
        c.declare("Vehicle", ["vid", "driver", "age"]).unwrap();
        c.declare("R", ["a", "b"]).unwrap();
        c
    }

    /// Q0 of Example 1.1.
    fn q0(c: &Catalog) -> ConjunctiveQuery {
        ConjunctiveQuery::builder("Q0")
            .head(["xa"])
            .atom(
                "Accident",
                [
                    Arg::var("aid"),
                    Arg::val(Value::str("Queen's Park")),
                    Arg::val(Value::str("1/5/2005")),
                ],
            )
            .atom("Casualty", ["cid", "aid", "class", "vid"])
            .atom("Vehicle", ["vid", "dri", "xa"])
            .build(c)
            .unwrap()
    }

    #[test]
    fn builder_normalizes_constants_in_atoms() {
        let c = catalog();
        let q = q0(&c);
        // Atoms contain only variables; the two constants became equality atoms.
        assert_eq!(q.atoms().len(), 3);
        let consts: Vec<_> = q
            .equalities()
            .iter()
            .filter(|e| matches!(e, Equality::Const(_, _)))
            .collect();
        assert_eq!(consts.len(), 2);
        assert_eq!(q.arity(), 1);
        assert_eq!(q.var_name(q.head()[0]), "xa");
    }

    #[test]
    fn builder_checks_arity_and_relation() {
        let c = catalog();
        let err = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("Vehicle", ["x", "y"])
            .build(&c);
        assert!(matches!(err, Err(Error::ArityMismatch { .. })));
        let err = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("Nope", ["x"])
            .build(&c);
        assert!(matches!(err, Err(Error::UnknownRelation { .. })));
    }

    #[test]
    fn unsafe_query_rejected() {
        let c = catalog();
        let err = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["y", "z"])
            .build(&c);
        assert!(matches!(err, Err(Error::UnsafeQuery { .. })));
    }

    #[test]
    fn safe_via_constant_head() {
        let c = catalog();
        // Head variable equal to a constant only: safe (data-independent).
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["y", "z"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        assert!(q.constant_vars().contains(&q.var_by_name("x").unwrap()));
        assert!(!q
            .data_dependent_vars()
            .contains(&q.var_by_name("x").unwrap()));
    }

    #[test]
    fn eq_and_eq_plus_example_3_8() {
        // Q(x, y, u, v) = R(x, y) ∧ x = 1 ∧ x = y ∧ u = 1 ∧ u = v
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x", "y", "u", "v"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .eq("x", "y")
            .eq("u", 1i64)
            .eq("u", "v")
            .build(&c)
            .unwrap();
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        let u = q.var_by_name("u").unwrap();
        let v = q.var_by_name("v").unwrap();

        let eq = q.eq_classes();
        assert!(eq.same(x, y));
        assert!(!eq.same(x, u));
        assert!(eq.same(u, v));
        assert_eq!(eq.constant(x), Some(&Value::int(1)));

        let eq_plus = q.eq_plus_classes();
        assert!(eq_plus.same(x, u));
        assert!(eq_plus.same(x, v));

        // x, y are data-dependent; u, v are not (Example 3.8).
        let dd = q.data_dependent_vars();
        assert!(dd.contains(&x));
        assert!(dd.contains(&y));
        assert!(!dd.contains(&u));
        assert!(!dd.contains(&v));
    }

    #[test]
    fn contradiction_detection() {
        let c = catalog();
        // Q′₂(x) = (x = 1 ∧ x = 2) from Example 3.12.
        let q = ConjunctiveQuery::builder("Q2p")
            .head(["x"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        assert!(q.has_contradiction());
        assert!(q.atoms().is_empty());

        let q_ok = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .eq("x", 1i64)
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        assert!(!q_ok.has_contradiction());
    }

    #[test]
    fn occurrence_counts() {
        let c = catalog();
        let q = q0(&c);
        let aid = q.var_by_name("aid").unwrap();
        let cid = q.var_by_name("cid").unwrap();
        let xa = q.var_by_name("xa").unwrap();
        assert_eq!(q.occurrence_count(aid), 2); // Accident + Casualty
        assert_eq!(q.occurrence_count(cid), 1);
        assert_eq!(q.occurrence_count(xa), 1); // head occurrences are not counted
    }

    #[test]
    fn free_and_bound_vars() {
        let c = catalog();
        let q = q0(&c);
        let xa = q.var_by_name("xa").unwrap();
        assert!(q.free_vars().contains(&xa));
        assert!(!q.bound_vars().contains(&xa));
        assert_eq!(q.free_vars().len(), 1);
        assert_eq!(q.bound_vars().len() + q.free_vars().len(), q.num_vars());
    }

    #[test]
    fn without_atoms_drops_orphaned_bound_vars() {
        let c = catalog();
        let q = q0(&c);
        // Remove the Vehicle atom: `dri` disappears, `xa` (head) becomes unsafe → error.
        let vehicle_idx = q
            .atoms()
            .iter()
            .position(|a| a.relation == "Vehicle")
            .unwrap();
        let err = q.without_atoms(&BTreeSet::from([vehicle_idx]));
        assert!(matches!(err, Err(Error::UnsafeQuery { .. })));

        // Removing the Casualty atom keeps the query safe... no: vid links Casualty and
        // Vehicle; removing Casualty keeps vid in Vehicle, still safe.
        let casualty_idx = q
            .atoms()
            .iter()
            .position(|a| a.relation == "Casualty")
            .unwrap();
        let relaxed = q.without_atoms(&BTreeSet::from([casualty_idx])).unwrap();
        assert_eq!(relaxed.atoms().len(), 2);
        assert!(
            relaxed.var_by_name("cid").is_none(),
            "cid is compacted away"
        );
        assert_eq!(relaxed.arity(), 1);
    }

    #[test]
    fn merge_vars_dedups_atoms_and_equalities() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .atom("R", ["x", "z"])
            .eq("y", "w")
            .eq("z", "w")
            .build(&c)
            .unwrap();
        let y = q.var_by_name("y").unwrap();
        let z = q.var_by_name("z").unwrap();
        let merged = q.merge_vars(&BTreeMap::from([(z, y)])).unwrap();
        assert_eq!(merged.atoms().len(), 1, "identical atoms are deduplicated");
        // y = w survives once.
        assert_eq!(
            merged
                .equalities()
                .iter()
                .filter(|e| matches!(e, Equality::Vars(_, _)))
                .count(),
            1
        );
    }

    #[test]
    fn with_const_equalities_specializes() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .params(["y"])
            .build(&c)
            .unwrap();
        let y = q.var_by_name("y").unwrap();
        let s = q.with_const_equalities(&[(y, Value::int(7))]).unwrap();
        assert!(s.constant_vars().contains(&y));
        assert_eq!(s.params(), q.params());
    }

    #[test]
    fn builder_round_trip_via_to_builder() {
        let c = catalog();
        let q = q0(&c);
        let rebuilt = q.to_builder().build(&c).unwrap();
        assert_eq!(rebuilt.atoms().len(), q.atoms().len());
        assert_eq!(rebuilt.equalities().len(), q.equalities().len());
        assert_eq!(rebuilt.arity(), q.arity());
        assert_eq!(rebuilt.num_vars(), q.num_vars());
    }

    #[test]
    fn params_must_exist() {
        let c = catalog();
        let err = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .param("zzz")
            .build(&c);
        assert!(matches!(err, Err(Error::UnknownParameter { .. })));
    }

    #[test]
    fn display_round_trips_the_shape() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        let s = q.to_string();
        assert!(s.starts_with("Q(x) :- R(x, y)"));
        assert!(s.contains("y = 1"));
    }

    #[test]
    fn fresh_name_avoids_collisions() {
        let c = catalog();
        let q = q0(&c);
        assert_eq!(q.fresh_name("zz"), "zz");
        let taken = q.fresh_name("aid");
        assert_ne!(taken, "aid");
        assert!(q.var_by_name(&taken).is_none());
    }

    #[test]
    fn contradictory_constant_pair_in_builder() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq(1i64, 2i64)
            .build(&c)
            .unwrap();
        assert!(q.has_contradiction());
        let q2 = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq(1i64, 1i64)
            .build(&c)
            .unwrap();
        assert!(!q2.has_contradiction());
    }

    #[test]
    fn boolean_query_has_empty_head() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(Vec::<Arg>::new())
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        assert_eq!(q.arity(), 0);
        assert!(q.free_vars().is_empty());
    }

    #[test]
    fn repeated_head_variable() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x", "x"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.head()[0], q.head()[1]);
    }
}

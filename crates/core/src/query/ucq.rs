//! Unions of conjunctive queries (UCQ).

use crate::error::{Error, Result};
use crate::query::cq::ConjunctiveQuery;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A union of conjunctive queries `Q = Q₁ ∪ … ∪ Qₖ`. All branches share the output arity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnionQuery {
    name: String,
    branches: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Build a union from CQ branches; at least one branch is required and all branches
    /// must have the same arity.
    pub fn from_branches(name: impl Into<String>, branches: Vec<ConjunctiveQuery>) -> Result<Self> {
        let name = name.into();
        let Some(first) = branches.first() else {
            return Err(Error::invalid(format!(
                "union query `{name}` must have at least one branch"
            )));
        };
        let arity = first.arity();
        for b in &branches {
            if b.arity() != arity {
                return Err(Error::UnionArityMismatch {
                    expected: arity,
                    found: b.arity(),
                });
            }
        }
        Ok(Self { name, branches })
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CQ branches (the paper's "CQ sub-queries").
    pub fn branches(&self) -> &[ConjunctiveQuery] {
        &self.branches
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.branches[0].arity()
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Always false: a union query has at least one branch.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Union of the parameter names declared on the branches.
    pub fn param_names(&self) -> BTreeSet<String> {
        self.branches
            .iter()
            .flat_map(|b| b.params().iter().map(|&v| b.var_name(v).to_owned()))
            .collect()
    }

    /// A copy with one branch replaced.
    pub fn with_branch_replaced(&self, index: usize, branch: ConjunctiveQuery) -> Result<Self> {
        if index >= self.branches.len() {
            return Err(Error::invalid(format!(
                "union query `{}` has no branch {index}",
                self.name
            )));
        }
        let mut branches = self.branches.clone();
        branches[index] = branch;
        Self::from_branches(self.name.clone(), branches)
    }
}

impl fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b", "c"]).unwrap();
        c
    }

    fn branch(c: &Catalog, name: &str, constant: i64) -> ConjunctiveQuery {
        ConjunctiveQuery::builder(name)
            .head(["y"])
            .atom("R", ["x", "y", "z"])
            .eq("x", constant)
            .build(c)
            .unwrap()
    }

    #[test]
    fn build_and_access() {
        let c = catalog();
        let u =
            UnionQuery::from_branches("Q", vec![branch(&c, "Q1", 1), branch(&c, "Q2", 2)]).unwrap();
        assert_eq!(u.name(), "Q");
        assert_eq!(u.len(), 2);
        assert_eq!(u.arity(), 1);
        assert!(!u.is_empty());
        assert!(u.to_string().contains("Q1(y)"));
        assert!(u.to_string().contains("Q2(y)"));
    }

    #[test]
    fn empty_union_rejected() {
        assert!(UnionQuery::from_branches("Q", vec![]).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let c = catalog();
        let b1 = branch(&c, "Q1", 1);
        let b2 = ConjunctiveQuery::builder("Q2")
            .head(["y", "z"])
            .atom("R", ["x", "y", "z"])
            .build(&c)
            .unwrap();
        assert!(matches!(
            UnionQuery::from_branches("Q", vec![b1, b2]),
            Err(Error::UnionArityMismatch { .. })
        ));
    }

    #[test]
    fn param_names_collects_across_branches() {
        let c = catalog();
        let b1 = ConjunctiveQuery::builder("Q1")
            .head(["y"])
            .atom("R", ["x", "y", "z"])
            .param("x")
            .build(&c)
            .unwrap();
        let b2 = ConjunctiveQuery::builder("Q2")
            .head(["y"])
            .atom("R", ["x", "y", "w"])
            .param("w")
            .build(&c)
            .unwrap();
        let u = UnionQuery::from_branches("Q", vec![b1, b2]).unwrap();
        let params = u.param_names();
        assert!(params.contains("x"));
        assert!(params.contains("w"));
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn replace_branch() {
        let c = catalog();
        let u =
            UnionQuery::from_branches("Q", vec![branch(&c, "Q1", 1), branch(&c, "Q2", 2)]).unwrap();
        let u2 = u.with_branch_replaced(1, branch(&c, "Q2b", 3)).unwrap();
        assert_eq!(u2.branches()[1].name(), "Q2b");
        assert!(u.with_branch_replaced(5, branch(&c, "X", 0)).is_err());
    }
}

//! The query IR: conjunctive queries, unions, positive existential and first-order queries.
//!
//! The paper studies four query classes (Section 2):
//!
//! * **CQ** — conjunctive queries ([`cq::ConjunctiveQuery`]), built from relation atoms and
//!   equality atoms, closed under `∧` and `∃`;
//! * **UCQ** — unions of conjunctive queries ([`ucq::UnionQuery`]);
//! * **∃FO⁺** — positive existential queries ([`efo::PositiveQuery`]), closed under `∧`, `∨`
//!   and `∃`, convertible to UCQ by DNF expansion;
//! * **FO** — full first-order queries ([`fo::FirstOrderQuery`]), for which bounded
//!   evaluability is undecidable; they participate only in specialization (Section 5).
//!
//! All conjunctive queries are kept in a *normalized* form mirroring the paper's
//! assumptions: only variables occur in relation atoms and in the head, constants occur
//! only in equality atoms, and every variable is *safe* (equal to a relation-atom variable
//! or to a constant).

pub mod cq;
pub mod efo;
pub mod fo;
pub mod term;
pub mod ucq;

pub use cq::{Atom, ConjunctiveQuery, CqBuilder, Equality};
pub use efo::{PosFormula, PositiveQuery};
pub use fo::{FirstOrderQuery, Formula};
pub use term::{Arg, Term, Var};
pub use ucq::UnionQuery;

use crate::error::{Error, Result};
use crate::schema::Catalog;

/// Any query of the four classes studied in the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A conjunctive query.
    Cq(ConjunctiveQuery),
    /// A union of conjunctive queries.
    Ucq(UnionQuery),
    /// A positive existential (∃FO⁺ / SPJU) query.
    Efo(PositiveQuery),
    /// A full first-order query.
    Fo(FirstOrderQuery),
}

impl Query {
    /// The query name.
    pub fn name(&self) -> &str {
        match self {
            Query::Cq(q) => q.name(),
            Query::Ucq(q) => q.name(),
            Query::Efo(q) => q.name(),
            Query::Fo(q) => q.name(),
        }
    }

    /// The output arity.
    pub fn arity(&self) -> usize {
        match self {
            Query::Cq(q) => q.arity(),
            Query::Ucq(q) => q.arity(),
            Query::Efo(q) => q.arity(),
            Query::Fo(q) => q.arity(),
        }
    }

    /// View as a conjunctive query, if it is one.
    pub fn as_cq(&self) -> Option<&ConjunctiveQuery> {
        match self {
            Query::Cq(q) => Some(q),
            _ => None,
        }
    }

    /// View as a union of conjunctive queries, if it is one.
    pub fn as_ucq(&self) -> Option<&UnionQuery> {
        match self {
            Query::Ucq(q) => Some(q),
            _ => None,
        }
    }

    /// Convert to a union of conjunctive queries when the query is in CQ, UCQ or ∃FO⁺
    /// (or an FO query whose body happens to be positive-existential).
    ///
    /// Returns an error for genuine FO queries, which have no UCQ equivalent in general.
    pub fn to_ucq(&self, catalog: &Catalog) -> Result<UnionQuery> {
        match self {
            Query::Cq(q) => UnionQuery::from_branches(q.name(), vec![q.clone()]),
            Query::Ucq(q) => Ok(q.clone()),
            Query::Efo(q) => q.to_ucq(catalog),
            Query::Fo(q) => q
                .to_positive()
                .ok_or_else(|| {
                    Error::invalid(
                        "first-order queries with negation or universal quantification \
                         cannot be converted to UCQ in general",
                    )
                })?
                .to_ucq(catalog),
        }
    }
}

impl From<ConjunctiveQuery> for Query {
    fn from(q: ConjunctiveQuery) -> Self {
        Query::Cq(q)
    }
}

impl From<UnionQuery> for Query {
    fn from(q: UnionQuery) -> Self {
        Query::Ucq(q)
    }
}

impl From<PositiveQuery> for Query {
    fn from(q: PositiveQuery) -> Self {
        Query::Efo(q)
    }
}

impl From<FirstOrderQuery> for Query {
    fn from(q: FirstOrderQuery) -> Self {
        Query::Fo(q)
    }
}

//! Positive existential first-order queries (∃FO⁺, a.k.a. SPJU queries).
//!
//! A [`PositiveQuery`] is built from relation and equality atoms using conjunction,
//! disjunction and existential quantification. Every ∃FO⁺ query is equivalent to a UCQ;
//! [`PositiveQuery::to_ucq`] performs the DNF expansion (which may be exponential in the
//! size of the formula — as the paper notes, the CQ sub-queries of a ∃FO⁺ query are the
//! sub-queries of its UCQ equivalent).

use crate::error::{Error, Result};
use crate::query::cq::CqBuilder;
use crate::query::term::Arg;
use crate::query::ucq::UnionQuery;
use crate::schema::Catalog;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A positive existential formula.
#[derive(Debug, Clone, PartialEq)]
pub enum PosFormula {
    /// A relation atom `R(t₁, …, tₙ)`.
    Atom {
        /// The relation name.
        relation: String,
        /// The arguments (variables by name, or constants).
        args: Vec<Arg>,
    },
    /// An equality atom `t₁ = t₂`.
    Eq(Arg, Arg),
    /// Conjunction.
    And(Vec<PosFormula>),
    /// Disjunction.
    Or(Vec<PosFormula>),
    /// Existential quantification over the named variables.
    Exists(Vec<String>, Box<PosFormula>),
}

impl PosFormula {
    /// Convenience constructor for a relation atom.
    pub fn atom<A: Into<Arg>>(
        relation: impl Into<String>,
        args: impl IntoIterator<Item = A>,
    ) -> Self {
        PosFormula::Atom {
            relation: relation.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Convenience constructor for an equality atom.
    pub fn eq(left: impl Into<Arg>, right: impl Into<Arg>) -> Self {
        PosFormula::Eq(left.into(), right.into())
    }

    /// Convenience constructor for an existential quantifier.
    pub fn exists<S: Into<String>>(vars: impl IntoIterator<Item = S>, body: PosFormula) -> Self {
        PosFormula::Exists(vars.into_iter().map(Into::into).collect(), Box::new(body))
    }

    /// The names of variables occurring free in the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        fn go(f: &PosFormula, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            match f {
                PosFormula::Atom { args, .. } => {
                    for a in args {
                        if let Arg::Var(name) = a {
                            if !bound.contains(name) {
                                out.insert(name.clone());
                            }
                        }
                    }
                }
                PosFormula::Eq(l, r) => {
                    for a in [l, r] {
                        if let Arg::Var(name) = a {
                            if !bound.contains(name) {
                                out.insert(name.clone());
                            }
                        }
                    }
                }
                PosFormula::And(fs) | PosFormula::Or(fs) => {
                    for f in fs {
                        go(f, bound, out);
                    }
                }
                PosFormula::Exists(vars, body) => {
                    let before = bound.len();
                    bound.extend(vars.iter().cloned());
                    go(body, bound, out);
                    bound.truncate(before);
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

impl fmt::Display for PosFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosFormula::Atom { relation, args } => {
                let args = args.iter().map(Arg::to_string).collect::<Vec<_>>();
                write!(f, "{relation}({})", args.join(", "))
            }
            PosFormula::Eq(l, r) => write!(f, "{l} = {r}"),
            PosFormula::And(fs) => {
                let parts = fs.iter().map(|x| format!("({x})")).collect::<Vec<_>>();
                write!(f, "{}", parts.join(" ∧ "))
            }
            PosFormula::Or(fs) => {
                let parts = fs.iter().map(|x| format!("({x})")).collect::<Vec<_>>();
                write!(f, "{}", parts.join(" ∨ "))
            }
            PosFormula::Exists(vars, body) => {
                write!(f, "∃{}({body})", vars.join(", "))
            }
        }
    }
}

/// One conjunct of the DNF expansion: a list of relation atoms and equality atoms.
#[derive(Debug, Clone, Default)]
struct Conjunct {
    atoms: Vec<(String, Vec<Arg>)>,
    equalities: Vec<(Arg, Arg)>,
}

impl Conjunct {
    fn merge(mut self, other: &Conjunct) -> Conjunct {
        self.atoms.extend(other.atoms.iter().cloned());
        self.equalities.extend(other.equalities.iter().cloned());
        self
    }
}

/// A positive existential (∃FO⁺) query.
#[derive(Debug, Clone, PartialEq)]
pub struct PositiveQuery {
    name: String,
    head: Vec<Arg>,
    body: PosFormula,
    params: Vec<String>,
}

impl PositiveQuery {
    /// Build a positive query from its head arguments and body formula.
    pub fn new<A: Into<Arg>>(
        name: impl Into<String>,
        head: impl IntoIterator<Item = A>,
        body: PosFormula,
    ) -> Self {
        Self {
            name: name.into(),
            head: head.into_iter().map(Into::into).collect(),
            body,
            params: Vec::new(),
        }
    }

    /// Declare parameter names (for query specialization, Section 5).
    pub fn with_params<S: Into<String>>(mut self, params: impl IntoIterator<Item = S>) -> Self {
        self.params = params.into_iter().map(Into::into).collect();
        self
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The head arguments.
    pub fn head(&self) -> &[Arg] {
        &self.head
    }

    /// The output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// The body formula.
    pub fn body(&self) -> &PosFormula {
        &self.body
    }

    /// The declared parameter names.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Expand to an equivalent union of conjunctive queries.
    ///
    /// Bound variables are renamed apart so that quantifiers in different disjuncts (or
    /// shadowed names) cannot collide. Each DNF conjunct becomes one CQ branch.
    pub fn to_ucq(&self, catalog: &Catalog) -> Result<UnionQuery> {
        let renamed = rename_bound_apart(&self.body, &mut 0, &HashMap::new());
        let conjuncts = dnf(&renamed);
        if conjuncts.is_empty() {
            return Err(Error::invalid(format!(
                "query `{}` has an empty disjunction and no UCQ equivalent",
                self.name
            )));
        }
        let mut branches = Vec::with_capacity(conjuncts.len());
        for (i, conj) in conjuncts.iter().enumerate() {
            let mut b = CqBuilder::new(format!("{}_{}", self.name, i + 1));
            b = b.head(self.head.iter().cloned());
            for (rel, args) in &conj.atoms {
                b = b.atom(rel.clone(), args.iter().cloned());
            }
            for (l, r) in &conj.equalities {
                b = b.eq(l.clone(), r.clone());
            }
            // Only declare the parameters that actually occur in this branch.
            let occurring: BTreeSet<String> = conj
                .atoms
                .iter()
                .flat_map(|(_, args)| args.iter())
                .chain(conj.equalities.iter().flat_map(|(l, r)| [l, r]))
                .chain(self.head.iter())
                .filter_map(|a| match a {
                    Arg::Var(n) => Some(n.clone()),
                    Arg::Const(_) => None,
                })
                .collect();
            b = b.params(
                self.params
                    .iter()
                    .filter(|p| occurring.contains(*p))
                    .cloned(),
            );
            branches.push(b.build(catalog)?);
        }
        UnionQuery::from_branches(self.name.clone(), branches)
    }
}

impl fmt::Display for PositiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head = self.head.iter().map(Arg::to_string).collect::<Vec<_>>();
        write!(f, "{}({}) := {}", self.name, head.join(", "), self.body)
    }
}

/// Rename bound variables apart, so DNF expansion cannot capture or confuse variables.
fn rename_bound_apart(
    f: &PosFormula,
    counter: &mut usize,
    env: &HashMap<String, String>,
) -> PosFormula {
    let rename_arg = |a: &Arg| match a {
        Arg::Var(n) => Arg::Var(env.get(n).cloned().unwrap_or_else(|| n.clone())),
        Arg::Const(c) => Arg::Const(c.clone()),
    };
    match f {
        PosFormula::Atom { relation, args } => PosFormula::Atom {
            relation: relation.clone(),
            args: args.iter().map(rename_arg).collect(),
        },
        PosFormula::Eq(l, r) => PosFormula::Eq(rename_arg(l), rename_arg(r)),
        PosFormula::And(fs) => PosFormula::And(
            fs.iter()
                .map(|x| rename_bound_apart(x, counter, env))
                .collect(),
        ),
        PosFormula::Or(fs) => PosFormula::Or(
            fs.iter()
                .map(|x| rename_bound_apart(x, counter, env))
                .collect(),
        ),
        PosFormula::Exists(vars, body) => {
            let mut env = env.clone();
            let mut new_vars = Vec::with_capacity(vars.len());
            for v in vars {
                let fresh = format!("{v}__b{}", *counter);
                *counter += 1;
                env.insert(v.clone(), fresh.clone());
                new_vars.push(fresh);
            }
            PosFormula::Exists(new_vars, Box::new(rename_bound_apart(body, counter, &env)))
        }
    }
}

/// Disjunctive normal form: a list of conjuncts.
fn dnf(f: &PosFormula) -> Vec<Conjunct> {
    match f {
        PosFormula::Atom { relation, args } => vec![Conjunct {
            atoms: vec![(relation.clone(), args.clone())],
            equalities: Vec::new(),
        }],
        PosFormula::Eq(l, r) => vec![Conjunct {
            atoms: Vec::new(),
            equalities: vec![(l.clone(), r.clone())],
        }],
        PosFormula::And(fs) => {
            let mut acc = vec![Conjunct::default()];
            for part in fs {
                let expanded = dnf(part);
                let mut next = Vec::with_capacity(acc.len() * expanded.len());
                for a in &acc {
                    for e in &expanded {
                        next.push(a.clone().merge(e));
                    }
                }
                acc = next;
            }
            acc
        }
        PosFormula::Or(fs) => fs.iter().flat_map(dnf).collect(),
        PosFormula::Exists(_, body) => dnf(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["a", "b"]).unwrap();
        c
    }

    #[test]
    fn atom_and_eq_constructors() {
        let f = PosFormula::And(vec![
            PosFormula::atom("R", ["x", "y"]),
            PosFormula::eq("y", Value::int(1)),
        ]);
        assert_eq!(f.free_vars(), BTreeSet::from(["x".into(), "y".into()]));
        assert!(f.to_string().contains("R(x, y)"));
    }

    #[test]
    fn exists_binds_variables() {
        let f = PosFormula::exists(["y"], PosFormula::atom("R", ["x", "y"]));
        assert_eq!(f.free_vars(), BTreeSet::from(["x".into()]));
        assert!(f.to_string().starts_with("∃y"));
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        // R(x,y) ∧ (y = 1 ∨ y = 2) → two branches.
        let c = catalog();
        let q = PositiveQuery::new(
            "Q",
            ["x"],
            PosFormula::exists(
                ["y"],
                PosFormula::And(vec![
                    PosFormula::atom("R", ["x", "y"]),
                    PosFormula::Or(vec![
                        PosFormula::eq("y", Value::int(1)),
                        PosFormula::eq("y", Value::int(2)),
                    ]),
                ]),
            ),
        );
        let ucq = q.to_ucq(&c).unwrap();
        assert_eq!(ucq.len(), 2);
        assert_eq!(ucq.arity(), 1);
        for b in ucq.branches() {
            assert_eq!(b.atoms().len(), 1);
        }
    }

    #[test]
    fn nested_or_multiplies_branches() {
        let c = catalog();
        // (R(x,y) ∨ S(x,y)) ∧ (y=1 ∨ y=2) → 4 branches.
        let q = PositiveQuery::new(
            "Q",
            ["x"],
            PosFormula::exists(
                ["y"],
                PosFormula::And(vec![
                    PosFormula::Or(vec![
                        PosFormula::atom("R", ["x", "y"]),
                        PosFormula::atom("S", ["x", "y"]),
                    ]),
                    PosFormula::Or(vec![
                        PosFormula::eq("y", Value::int(1)),
                        PosFormula::eq("y", Value::int(2)),
                    ]),
                ]),
            ),
        );
        let ucq = q.to_ucq(&c).unwrap();
        assert_eq!(ucq.len(), 4);
    }

    #[test]
    fn bound_variable_renaming_prevents_capture() {
        let c = catalog();
        // ∃y R(x, y) ∧ ∃y S(x, y): the two `y`s are distinct variables.
        let q = PositiveQuery::new(
            "Q",
            ["x"],
            PosFormula::And(vec![
                PosFormula::exists(["y"], PosFormula::atom("R", ["x", "y"])),
                PosFormula::exists(["y"], PosFormula::atom("S", ["x", "y"])),
            ]),
        );
        let ucq = q.to_ucq(&c).unwrap();
        assert_eq!(ucq.len(), 1);
        let branch = &ucq.branches()[0];
        assert_eq!(branch.atoms().len(), 2);
        // x plus two distinct renamed ys.
        assert_eq!(branch.num_vars(), 3);
    }

    #[test]
    fn params_filtered_per_branch() {
        let c = catalog();
        let q = PositiveQuery::new(
            "Q",
            ["x"],
            PosFormula::Or(vec![
                PosFormula::exists(["y"], PosFormula::atom("R", ["x", "y"])),
                PosFormula::exists(["z"], PosFormula::atom("S", ["x", "z"])),
            ]),
        )
        .with_params(["x"]);
        let ucq = q.to_ucq(&c).unwrap();
        assert_eq!(ucq.len(), 2);
        for b in ucq.branches() {
            assert_eq!(b.params().len(), 1);
        }
        assert_eq!(q.params(), &["x".to_owned()]);
    }

    #[test]
    fn constants_in_head_and_atoms() {
        let c = catalog();
        let q = PositiveQuery::new(
            "Q",
            [Arg::val(Value::int(9)), Arg::var("x")],
            PosFormula::atom("R", [Arg::var("x"), Arg::val(Value::int(1))]),
        );
        let ucq = q.to_ucq(&c).unwrap();
        assert_eq!(ucq.arity(), 2);
        let b = &ucq.branches()[0];
        assert_eq!(b.atoms().len(), 1);
        assert!(!b.has_contradiction());
    }

    #[test]
    fn display_positive_query() {
        let q = PositiveQuery::new("Q", ["x"], PosFormula::atom("R", ["x", "y"]));
        assert_eq!(q.to_string(), "Q(x) := R(x, y)");
        assert_eq!(q.arity(), 1);
        assert_eq!(q.name(), "Q");
        assert!(matches!(q.body(), PosFormula::Atom { .. }));
        assert_eq!(q.head().len(), 1);
    }
}

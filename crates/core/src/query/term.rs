//! Variables, terms and builder arguments.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A query variable, identified by its index in the owning query's variable table.
///
/// Variables are interned per query: the same name in two different queries yields two
/// unrelated `Var` values. Use [`crate::query::cq::ConjunctiveQuery::var_name`] to recover
/// the human-readable name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index in the owning query's variable table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term: a variable or a constant.
///
/// Normalized conjunctive queries only carry variables inside relation atoms; terms appear
/// in the ∃FO⁺ / FO formula trees and in builder input.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Value),
}

impl Term {
    /// The variable, if the term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if the term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A builder argument: a named variable or a constant.
///
/// `Arg` exists so that query builders can accept a natural mix of variable names and
/// constants:
///
/// ```
/// use bea_core::query::term::Arg;
/// use bea_core::value::Value;
///
/// let v: Arg = "district".into();            // a variable named `district`
/// let c: Arg = Value::str("Queen's Park").into(); // a string constant
/// let n: Arg = 610.into();                    // an integer constant
/// assert!(matches!(v, Arg::Var(_)));
/// assert!(matches!(c, Arg::Const(_)));
/// assert!(matches!(n, Arg::Const(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A variable, referenced by name.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Arg {
    /// Build a variable argument.
    pub fn var(name: impl Into<String>) -> Self {
        Arg::Var(name.into())
    }

    /// Build a constant argument.
    pub fn val(value: impl Into<Value>) -> Self {
        Arg::Const(value.into())
    }
}

impl From<&str> for Arg {
    fn from(name: &str) -> Self {
        Arg::Var(name.to_owned())
    }
}

impl From<String> for Arg {
    fn from(name: String) -> Self {
        Arg::Var(name)
    }
}

impl From<Value> for Arg {
    fn from(value: Value) -> Self {
        Arg::Const(value)
    }
}

impl From<i64> for Arg {
    fn from(value: i64) -> Self {
        Arg::Const(Value::Int(value))
    }
}

impl From<bool> for Arg {
    fn from(value: bool) -> Self {
        Arg::Const(Value::Bool(value))
    }
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Arg::Var(name) => write!(f, "{name}"),
            Arg::Const(value) => write!(f, "{value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_display_and_index() {
        assert_eq!(Var(3).to_string(), "?3");
        assert_eq!(Var(3).index(), 3);
    }

    #[test]
    fn term_accessors() {
        let t = Term::Var(Var(1));
        assert_eq!(t.as_var(), Some(Var(1)));
        assert_eq!(t.as_const(), None);
        let c = Term::Const(Value::int(5));
        assert_eq!(c.as_var(), None);
        assert_eq!(c.as_const(), Some(&Value::int(5)));
        assert_eq!(Term::from(Var(0)).to_string(), "?0");
        assert_eq!(Term::from(Value::int(2)).to_string(), "2");
    }

    #[test]
    fn arg_conversions() {
        assert_eq!(Arg::from("x"), Arg::Var("x".into()));
        assert_eq!(Arg::from(String::from("y")), Arg::Var("y".into()));
        assert_eq!(Arg::from(7i64), Arg::Const(Value::int(7)));
        assert_eq!(Arg::from(true), Arg::Const(Value::Bool(true)));
        assert_eq!(Arg::from(Value::str("s")), Arg::Const(Value::str("s")));
        assert_eq!(Arg::var("z"), Arg::Var("z".into()));
        assert_eq!(Arg::val(1i64), Arg::Const(Value::int(1)));
    }

    #[test]
    fn arg_display() {
        assert_eq!(Arg::var("x").to_string(), "x");
        assert_eq!(Arg::val(Value::str("a")).to_string(), "\"a\"");
    }
}

//! Shared parsing for the `BEA_*` tuning variables.
//!
//! Every knob the test matrix and the service read from the environment
//! (`BEA_THREADS`, `BEA_SHARDS`, `BEA_MORSELS`, `BEA_FETCH_BUDGET`,
//! `BEA_CACHE_ROWS`) follows the same loud-failure contract: an unset variable means "use the default", and a
//! set-but-invalid value **panics with the rejection reason** instead of silently
//! falling back — a CI matrix typo must fail the job, not quietly test the wrong
//! configuration. The contract grew up independently in `bea-engine` (threads,
//! morsels) and `bea-storage` (shards); this module is the one copy both delegate to,
//! so the rules can never drift apart again.
//!
//! Parsing is split from environment access on purpose: [`parse_count`] is a pure
//! function, so the rejection rules are testable without mutating the process
//! environment (which would race parallel tests); [`read_env`] owns the
//! variable-to-panic plumbing.

/// A parsed counting variable: the three states every `BEA_*` knob distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvCount {
    /// The empty string — the `BEA_THREADS= cmd` shell idiom for "unset".
    Unset,
    /// An explicit `0`. Most knobs read this as "automatic"; `BEA_SHARDS` rejects it
    /// (a sharded store needs at least one shard).
    Zero,
    /// An explicit positive count.
    Count(u64),
}

impl EnvCount {
    /// The count under the "zero means automatic" reading shared by `BEA_THREADS`,
    /// `BEA_MORSELS`, `BEA_FETCH_BUDGET` and `BEA_CACHE_ROWS` (where "automatic"
    /// means unlimited or disabled, per knob): `None` for [`EnvCount::Unset`] and
    /// [`EnvCount::Zero`], the value otherwise.
    pub fn auto_when_zero(self) -> Option<u64> {
        match self {
            EnvCount::Unset | EnvCount::Zero => None,
            EnvCount::Count(n) => Some(n),
        }
    }
}

/// Parse one counting variable's value: a non-negative integer with surrounding
/// whitespace tolerated. Anything else — signs, units, words — is an error naming the
/// reason, which [`read_env`] (and the per-crate `shards_from_env`-style wrappers)
/// turn into a panic naming the variable.
pub fn parse_count(value: &str) -> Result<EnvCount, String> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Ok(EnvCount::Unset);
    }
    match trimmed.parse::<u64>() {
        Ok(0) => Ok(EnvCount::Zero),
        Ok(n) => Ok(EnvCount::Count(n)),
        Err(_) => Err(format!("expected a non-negative integer, got {trimmed:?}")),
    }
}

/// Read the environment variable `var` through `parse`, with the loud-failure
/// contract: unset returns `None`; a set value must parse or the process panics with
/// the variable name and the parser's rejection reason (non-unicode values included).
pub fn read_env<T>(var: &str, parse: impl Fn(&str) -> Result<T, String>) -> Option<T> {
    match std::env::var(var) {
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("{var} is set to a non-unicode value; expected an integer")
        }
        Ok(value) => {
            Some(parse(&value).unwrap_or_else(|reason| panic!("invalid {var}={value:?}: {reason}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_values_are_validated() {
        assert_eq!(parse_count("4").unwrap(), EnvCount::Count(4));
        assert_eq!(parse_count(" 2 ").unwrap(), EnvCount::Count(2));
        assert_eq!(parse_count("0").unwrap(), EnvCount::Zero);
        assert_eq!(parse_count("").unwrap(), EnvCount::Unset);
        assert_eq!(parse_count("  ").unwrap(), EnvCount::Unset);
        assert!(parse_count("four").unwrap_err().contains("integer"));
        assert!(parse_count("-1").is_err());
        assert!(parse_count("2 threads").is_err());
        assert!(parse_count("1k").is_err());
    }

    #[test]
    fn auto_when_zero_folds_unset_and_zero() {
        assert_eq!(EnvCount::Unset.auto_when_zero(), None);
        assert_eq!(EnvCount::Zero.auto_when_zero(), None);
        assert_eq!(EnvCount::Count(7).auto_when_zero(), Some(7));
    }

    #[test]
    fn read_env_returns_none_for_unset_variables() {
        assert_eq!(
            read_env("BEA_TEST_SURELY_UNSET_VARIABLE", parse_count),
            None
        );
    }
}

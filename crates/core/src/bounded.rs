//! The bounded evaluability analysis (BEP, Section 3).
//!
//! Deciding whether a CQ is boundedly evaluable under an access schema is
//! EXPSPACE-complete (Theorem 3.4), so this module implements the practical, *sound*
//! analysis the paper recommends:
//!
//! 1. check whether the query is **covered** (PTIME, Theorem 3.11) — if so it is
//!    boundedly evaluable and [`crate::plan`] can synthesize a plan;
//! 2. otherwise search for an **`A`-equivalent covered rewriting** by applying
//!    equivalence-preserving rewrites: unification of variables forced equal by
//!    unit-cardinality constraints, and removal of redundant atoms (classically redundant
//!    via the Homomorphism Theorem, or `A`-redundant via the containment test of
//!    Lemma 3.3) — this captures the reasoning of Example 3.1(3);
//! 3. otherwise check **`A`-satisfiability** (Lemma 3.2): an `A`-unsatisfiable query has
//!    an empty answer on every `D ⊨ A` and is therefore trivially boundedly evaluable
//!    (Example 3.1(2));
//! 4. otherwise report [`BoundedVerdict::Unknown`] — the analysis is sound but, by
//!    necessity, incomplete.

use crate::access::AccessSchema;
use crate::cover::{coverage, ucq_coverage, CoverageReport, UcqCoverageReport};
use crate::error::Result;
use crate::plan::{bounded_plan_for_report, QueryPlan};
use crate::query::cq::ConjunctiveQuery;
use crate::query::term::Var;
use crate::query::ucq::UnionQuery;
use crate::reason::containment::{a_contained, classically_contained};
use crate::reason::satisfiability::is_a_satisfiable;
use crate::reason::ReasonConfig;
use std::collections::{BTreeMap, BTreeSet};

/// A single `A`-equivalence-preserving rewrite step applied during the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteStep {
    /// Variables forced equal by a unit-cardinality constraint were unified.
    UnifiedVariables {
        /// The display name of the variable kept as the representative.
        kept: String,
        /// The display names of the variables replaced by the representative.
        merged: Vec<String>,
        /// The unit-cardinality constraint that forces the equality.
        constraint_index: usize,
    },
    /// A redundant relation atom was removed (classically redundant).
    RemovedRedundantAtom {
        /// The relation of the removed atom.
        relation: String,
    },
    /// A relation atom was removed because the remainder is `A`-contained in the original
    /// query (hence `A`-equivalent to it).
    RemovedARedundantAtom {
        /// The relation of the removed atom.
        relation: String,
    },
}

/// The outcome of the bounded evaluability analysis for a conjunctive query.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundedVerdict {
    /// The query itself is covered by the access schema.
    Covered(CoverageReport),
    /// The query is `A`-equivalent to the given covered query.
    EquivalentCovered {
        /// The covered rewriting (evaluating it answers the original query on every
        /// database satisfying the access schema).
        rewritten: ConjunctiveQuery,
        /// The coverage report of the rewriting.
        report: CoverageReport,
        /// The rewrite steps that produced it.
        steps: Vec<RewriteStep>,
    },
    /// The query is not `A`-satisfiable: its answer is empty on every `D ⊨ A`, so an
    /// empty plan answers it.
    Unsatisfiable,
    /// The analysis could not establish bounded evaluability (the query may or may not be
    /// boundedly evaluable; deciding exactly is EXPSPACE-complete).
    Unknown {
        /// The coverage report of the (rewritten) query, for diagnostics.
        report: CoverageReport,
    },
}

impl BoundedVerdict {
    /// Did the analysis establish bounded evaluability?
    pub fn is_bounded(&self) -> bool {
        !matches!(self, BoundedVerdict::Unknown { .. })
    }

    /// The coverage report carried by the verdict, if any.
    pub fn report(&self) -> Option<&CoverageReport> {
        match self {
            BoundedVerdict::Covered(r)
            | BoundedVerdict::EquivalentCovered { report: r, .. }
            | BoundedVerdict::Unknown { report: r } => Some(r),
            BoundedVerdict::Unsatisfiable => None,
        }
    }
}

/// Configuration of the bounded evaluability analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundedConfig {
    /// Configuration of the enumeration-based reasoning sub-procedures.
    pub reason: ReasonConfig,
    /// Whether to attempt `A`-redundant atom removal (uses the Πᵖ₂ containment test; more
    /// powerful but exponentially more expensive than classical redundancy).
    pub use_a_equivalence_removal: bool,
}

impl Default for BoundedConfig {
    fn default() -> Self {
        Self {
            reason: ReasonConfig::default(),
            use_a_equivalence_removal: true,
        }
    }
}

/// The outcome of the bounded evaluability analysis for a union of conjunctive queries.
#[derive(Debug, Clone, PartialEq)]
pub struct UcqBoundedVerdict {
    /// Per-branch verdicts (in branch order).
    pub branch_verdicts: Vec<BoundedVerdict>,
    /// The union with every branch replaced by its covered rewriting when one was found.
    pub rewritten: UnionQuery,
    /// The UCQ coverage report of the rewritten union (Lemma 3.6).
    pub coverage: UcqCoverageReport,
}

impl UcqBoundedVerdict {
    /// Did the analysis establish bounded evaluability of the union?
    pub fn is_bounded(&self) -> bool {
        self.coverage.is_covered()
            || self
                .branch_verdicts
                .iter()
                .all(|v| matches!(v, BoundedVerdict::Unsatisfiable))
    }
}

/// Analyse the bounded evaluability of a conjunctive query under an access schema.
pub fn analyze_cq(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    config: &BoundedConfig,
) -> Result<BoundedVerdict> {
    let report = coverage(query, schema);
    if report.is_covered() {
        return Ok(BoundedVerdict::Covered(report));
    }

    // Search for an A-equivalent covered rewriting.
    let mut current = query.clone();
    let mut steps: Vec<RewriteStep> = Vec::new();
    loop {
        let mut changed = false;

        // Rewrite 1: unify variables forced equal by unit-cardinality constraints.
        if let Some((rewritten, step)) = unify_by_unit_constraints(&current, schema)? {
            current = rewritten;
            steps.push(step);
            changed = true;
        }

        // Rewrite 2: drop classically redundant atoms (Homomorphism Theorem).
        if let Some((rewritten, step)) = remove_redundant_atom(&current, false, schema, config)? {
            current = rewritten;
            steps.push(step);
            changed = true;
        }

        let rewritten_report = coverage(&current, schema);
        if rewritten_report.is_covered() {
            return Ok(BoundedVerdict::EquivalentCovered {
                rewritten: current,
                report: rewritten_report,
                steps,
            });
        }
        if changed {
            continue;
        }

        // Rewrite 3 (optional, more expensive): drop A-redundant atoms.
        if config.use_a_equivalence_removal {
            if let Some((rewritten, step)) = remove_redundant_atom(&current, true, schema, config)?
            {
                current = rewritten;
                steps.push(step);
                let rewritten_report = coverage(&current, schema);
                if rewritten_report.is_covered() {
                    return Ok(BoundedVerdict::EquivalentCovered {
                        rewritten: current,
                        report: rewritten_report,
                        steps,
                    });
                }
                continue;
            }
        }
        break;
    }

    // Unsatisfiability shortcut (Example 3.1(2)).
    if is_a_satisfiable(&current, schema, &config.reason)?.is_none() {
        return Ok(BoundedVerdict::Unsatisfiable);
    }

    Ok(BoundedVerdict::Unknown {
        report: coverage(&current, schema),
    })
}

/// Analyse the bounded evaluability of a union of conjunctive queries: each branch is
/// analysed (and possibly rewritten) individually, then the rewritten union is checked
/// for coverage (Lemma 3.6 / Corollary 3.13).
pub fn analyze_ucq(
    query: &UnionQuery,
    schema: &AccessSchema,
    config: &BoundedConfig,
) -> Result<UcqBoundedVerdict> {
    let mut branch_verdicts = Vec::with_capacity(query.len());
    let mut rewritten_branches = Vec::with_capacity(query.len());
    for branch in query.branches() {
        let verdict = analyze_cq(branch, schema, config)?;
        let rewritten = match &verdict {
            BoundedVerdict::EquivalentCovered { rewritten, .. } => rewritten.clone(),
            _ => branch.clone(),
        };
        branch_verdicts.push(verdict);
        rewritten_branches.push(rewritten);
    }
    let rewritten = UnionQuery::from_branches(query.name(), rewritten_branches)?;
    let coverage = ucq_coverage(&rewritten, schema, &config.reason)?;
    Ok(UcqBoundedVerdict {
        branch_verdicts,
        rewritten,
        coverage,
    })
}

/// Convenience: analyse a CQ and, when it is boundedly evaluable, synthesize a boundedly
/// evaluable plan for it (an empty plan for `A`-unsatisfiable queries; the rewriting's
/// plan for `A`-equivalent rewritings — it answers the original query on every `D ⊨ A`).
pub fn bounded_plan_via_analysis(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    config: &BoundedConfig,
) -> Result<Option<QueryPlan>> {
    match analyze_cq(query, schema, config)? {
        BoundedVerdict::Covered(report) => {
            Ok(Some(bounded_plan_for_report(query, schema, &report)?))
        }
        BoundedVerdict::EquivalentCovered {
            rewritten, report, ..
        } => Ok(Some(bounded_plan_for_report(&rewritten, schema, &report)?)),
        BoundedVerdict::Unsatisfiable => {
            let mut builder = crate::plan::PlanBuilder::new();
            let out = builder.empty(query.arity());
            Ok(Some(builder.finish(query.name(), out)?))
        }
        BoundedVerdict::Unknown { .. } => Ok(None),
    }
}

/// Find one unification step implied by a unit-cardinality constraint: two atoms over the
/// same relation whose `X`-position arguments are pairwise forced equal must agree on
/// their `Y`-position arguments when `R(X → Y, 1)` holds.
fn unify_by_unit_constraints(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
) -> Result<Option<(ConjunctiveQuery, RewriteStep)>> {
    let eq_plus = query.eq_plus_classes();
    for (ci, constraint) in schema.constraints().iter().enumerate() {
        if !constraint.cardinality().is_unit() {
            continue;
        }
        let atoms: Vec<&crate::query::cq::Atom> = query
            .atoms()
            .iter()
            .filter(|a| a.relation == constraint.relation())
            .collect();
        for (i, a1) in atoms.iter().enumerate() {
            for a2 in atoms.iter().skip(i + 1) {
                // X-position arguments pairwise equal (same eq⁺ class)?
                let keys_equal = constraint
                    .x()
                    .iter()
                    .all(|&p| eq_plus.same(a1.args[p], a2.args[p]));
                if !keys_equal {
                    continue;
                }
                // Unify differing Y-position arguments.
                let mut replacement: BTreeMap<Var, Var> = BTreeMap::new();
                let mut merged_names: Vec<String> = Vec::new();
                let mut kept_name = String::new();
                for &p in constraint.y() {
                    let (u, v) = (a1.args[p], a2.args[p]);
                    if u != v && !eq_plus.same(u, v) {
                        let (keep, merge) = if u < v { (u, v) } else { (v, u) };
                        replacement.insert(merge, keep);
                        kept_name = query.var_name(keep).to_owned();
                        merged_names.push(query.var_name(merge).to_owned());
                    }
                }
                if replacement.is_empty() {
                    continue;
                }
                let rewritten = query.merge_vars(&replacement)?;
                return Ok(Some((
                    rewritten,
                    RewriteStep::UnifiedVariables {
                        kept: kept_name,
                        merged: merged_names,
                        constraint_index: ci,
                    },
                )));
            }
        }
    }
    Ok(None)
}

/// Find one redundant atom whose removal preserves (`A`-)equivalence.
fn remove_redundant_atom(
    query: &ConjunctiveQuery,
    use_a_containment: bool,
    schema: &AccessSchema,
    config: &BoundedConfig,
) -> Result<Option<(ConjunctiveQuery, RewriteStep)>> {
    if query.atoms().len() <= 1 {
        return Ok(None);
    }
    for i in 0..query.atoms().len() {
        let Ok(without) = query.without_atoms(&BTreeSet::from([i])) else {
            continue;
        };
        let redundant = if use_a_containment {
            a_contained(&without, query, schema, &config.reason)?
        } else {
            classically_contained(&without, query)?
        };
        if redundant {
            let relation = query.atoms()[i].relation.clone();
            let step = if use_a_containment {
                RewriteStep::RemovedARedundantAtom { relation }
            } else {
                RewriteStep::RemovedRedundantAtom { relation }
            };
            return Ok(Some((without, step)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::plan::PlanOp;
    use crate::query::term::Arg;
    use crate::schema::Catalog;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("R2", ["a", "b"]).unwrap();
        c.declare("R3", ["a", "b", "c"]).unwrap();
        c
    }

    #[test]
    fn covered_query_is_reported_as_covered() {
        let c = catalog();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 4).unwrap()
        ]);
        let q = ConjunctiveQuery::builder("Q")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let verdict = analyze_cq(&q, &a, &BoundedConfig::default()).unwrap();
        assert!(matches!(verdict, BoundedVerdict::Covered(_)));
        assert!(verdict.is_bounded());
        assert!(verdict.report().is_some());
        assert!(bounded_plan_via_analysis(&q, &a, &BoundedConfig::default())
            .unwrap()
            .is_some());
    }

    /// Removing a redundant (and unindexed) atom yields a covered A-equivalent query —
    /// the reasoning of step (b) in Example 3.1(3).
    #[test]
    fn redundant_atom_removal_establishes_bounded_evaluability() {
        let c = catalog();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 4).unwrap()
        ]);
        // Q(y) :- R(x, y), R(z, y), x = 1: the second atom is not indexed (z is not
        // determined), but it is classically redundant (map z ↦ x).
        let q = ConjunctiveQuery::builder("Q")
            .head(["y"])
            .atom("R", ["x", "y"])
            .atom("R", ["z", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        assert!(!crate::cover::is_covered(&q, &a));

        let verdict = analyze_cq(&q, &a, &BoundedConfig::default()).unwrap();
        match &verdict {
            BoundedVerdict::EquivalentCovered {
                rewritten, steps, ..
            } => {
                assert_eq!(rewritten.atoms().len(), 1);
                assert!(steps
                    .iter()
                    .any(|s| matches!(s, RewriteStep::RemovedRedundantAtom { .. })));
            }
            other => panic!("expected EquivalentCovered, got {other:?}"),
        }
        let plan = bounded_plan_via_analysis(&q, &a, &BoundedConfig::default())
            .unwrap()
            .expect("a plan must exist");
        assert!(plan.is_bounded_under(&a));
    }

    /// Example 3.1(2): Q2 is boundedly evaluable under A2 because it is A2-unsatisfiable.
    #[test]
    fn example_3_1_2_unsatisfiable_is_bounded() {
        let c = catalog();
        let a2 =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R2", &["a"], &["b"], 1).unwrap()
            ]);
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x"])
            .atom("R2", ["x", "x1"])
            .atom("R2", ["x", "x2"])
            .eq("x1", 1i64)
            .eq("x2", 2i64)
            .build(&c)
            .unwrap();
        let verdict = analyze_cq(&q2, &a2, &BoundedConfig::default()).unwrap();
        assert_eq!(verdict, BoundedVerdict::Unsatisfiable);
        assert!(verdict.is_bounded());
        assert!(verdict.report().is_none());
        // The synthesized plan is the empty plan.
        let plan = bounded_plan_via_analysis(&q2, &a2, &BoundedConfig::default())
            .unwrap()
            .unwrap();
        assert!(matches!(
            plan.steps()[plan.output()].op,
            PlanOp::Empty { arity: 1 }
        ));
    }

    /// Example 3.1(1): Q1 is not boundedly evaluable under A1 and the analysis reports
    /// Unknown (it is genuinely not boundedly evaluable; our analysis is sound, so it
    /// never claims boundedness here).
    #[test]
    fn example_3_1_1_reports_unknown() {
        let mut c = Catalog::new();
        c.declare("R1", ["a", "b", "e", "f"]).unwrap();
        let a1 = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R1", &["a"], &["b"], 3).unwrap(),
            AccessConstraint::new(&c, "R1", &["e"], &["f"], 3).unwrap(),
        ]);
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["x", "y"])
            .atom("R1", ["x1", "x", "x2", "y"])
            .eq("x1", 1i64)
            .eq("x2", 1i64)
            .build(&c)
            .unwrap();
        let verdict = analyze_cq(&q1, &a1, &BoundedConfig::default()).unwrap();
        assert!(matches!(verdict, BoundedVerdict::Unknown { .. }));
        assert!(!verdict.is_bounded());
        assert!(
            bounded_plan_via_analysis(&q1, &a1, &BoundedConfig::default())
                .unwrap()
                .is_none()
        );
    }

    /// Unification through a unit-cardinality constraint: under R3(∅ → c, 1) the
    /// c-position variables of all R3 atoms are forced equal (the reasoning of step (a)
    /// in Example 3.1(3)).
    #[test]
    fn unit_constraint_unification() {
        let c = catalog();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R3", &[], &["c"], 1).unwrap(),
            AccessConstraint::new(&c, "R3", &["a", "b"], &["c"], 64).unwrap(),
        ]);
        let q = ConjunctiveQuery::builder("Q")
            .head(["x", "y"])
            .atom("R3", ["x1", "x2", "x"])
            .atom("R3", ["z1", "z2", "y"])
            .atom("R3", ["x", "y", "z3"])
            .eq("x1", 1i64)
            .eq("x2", 1i64)
            .build(&c)
            .unwrap();
        let (rewritten, step) = unify_by_unit_constraints(&q, &a).unwrap().unwrap();
        assert!(matches!(step, RewriteStep::UnifiedVariables { .. }));
        // The rewriting is A-equivalent to the original (the unified variables were
        // forced equal by the ∅ → c constraint anyway).
        assert!(crate::reason::containment::a_equivalent(
            &q,
            &rewritten,
            &a,
            &ReasonConfig::default()
        )
        .unwrap());
    }

    #[test]
    fn ucq_analysis_combines_branch_verdicts() {
        let c = catalog();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 4).unwrap()
        ]);
        // Branch 1 covered; branch 2 equivalent-covered after removing a redundant atom.
        let b1 = ConjunctiveQuery::builder("Q1")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let b2 = ConjunctiveQuery::builder("Q2")
            .head(["y"])
            .atom("R", ["x", "y"])
            .atom("R", ["z", "y"])
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Q", vec![b1, b2]).unwrap();
        let verdict = analyze_ucq(&union, &a, &BoundedConfig::default()).unwrap();
        assert!(verdict.is_bounded());
        assert!(matches!(
            verdict.branch_verdicts[0],
            BoundedVerdict::Covered(_)
        ));
        assert!(matches!(
            verdict.branch_verdicts[1],
            BoundedVerdict::EquivalentCovered { .. }
        ));
        assert!(verdict.coverage.is_covered());
        assert_eq!(verdict.rewritten.branches()[1].atoms().len(), 1);
    }

    #[test]
    fn ucq_with_unbounded_branch_is_not_bounded() {
        let c = catalog();
        let b1 = ConjunctiveQuery::builder("Q1")
            .head(["y"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Q", vec![b1]).unwrap();
        let verdict = analyze_ucq(&union, &AccessSchema::new(), &BoundedConfig::default()).unwrap();
        assert!(!verdict.is_bounded());
    }

    #[test]
    fn data_independent_query_is_covered_even_with_empty_schema() {
        let c = catalog();
        // Q(x) :- x = 1 ∧ x = 2 is classically empty; the coverage test accepts it (its
        // variable is data-independent), so the verdict is Covered with an empty answer.
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        let verdict = analyze_cq(&q, &AccessSchema::new(), &BoundedConfig::default()).unwrap();
        assert!(verdict.is_bounded());
    }

    #[test]
    fn a_redundancy_removal_can_be_disabled() {
        let c = catalog();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 4).unwrap()
        ]);
        let q = ConjunctiveQuery::builder("Q")
            .head(["y"])
            .atom("R", ["x", "y"])
            .atom("R", ["z", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let config = BoundedConfig {
            use_a_equivalence_removal: false,
            ..BoundedConfig::default()
        };
        // Classical redundancy already handles this query, so the verdict is unchanged.
        let verdict = analyze_cq(&q, &a, &config).unwrap();
        assert!(verdict.is_bounded());
    }

    #[test]
    fn q0_from_the_introduction_is_bounded() {
        let mut c = Catalog::new();
        c.declare("Accident", ["aid", "district", "date"]).unwrap();
        c.declare("Casualty", ["cid", "aid", "class", "vid"])
            .unwrap();
        c.declare("Vehicle", ["vid", "driver", "age"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "Accident", &["date"], &["aid"], 610).unwrap(),
            AccessConstraint::new(&c, "Casualty", &["aid"], &["vid"], 192).unwrap(),
            AccessConstraint::new(&c, "Accident", &["aid"], &["district", "date"], 1).unwrap(),
            AccessConstraint::new(&c, "Vehicle", &["vid"], &["driver", "age"], 1).unwrap(),
        ]);
        let q0 = ConjunctiveQuery::builder("Q0")
            .head(["xa"])
            .atom(
                "Accident",
                [
                    Arg::var("aid"),
                    Arg::val(Value::str("Queen's Park")),
                    Arg::val(Value::str("1/5/2005")),
                ],
            )
            .atom("Casualty", ["cid", "aid", "class", "vid"])
            .atom("Vehicle", ["vid", "dri", "xa"])
            .build(&c)
            .unwrap();
        let verdict = analyze_cq(&q0, &a, &BoundedConfig::default()).unwrap();
        assert!(matches!(verdict, BoundedVerdict::Covered(_)));
        // Without ψ1 the Accident atom can no longer be reached from a constant, and the
        // analysis no longer claims bounded evaluability.
        let a_without_psi1 = AccessSchema::from_constraints(a.constraints()[1..].to_vec());
        let verdict = analyze_cq(&q0, &a_without_psi1, &BoundedConfig::default()).unwrap();
        assert!(!verdict.is_bounded());
    }
}

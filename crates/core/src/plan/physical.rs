//! Physical plans: pipeline-aware lowering of logical bounded plans.
//!
//! A [`super::QueryPlan`] says *what* to compute — a sequence of fetch/π/σ/×/∪/−/ρ
//! steps mirroring the paper's plan algebra. This module decides *how*: [`lower_plan`]
//! rewrites the logical step list into a [`PhysicalPlan`] of streaming operators that a
//! batch pipeline (in `bea-engine`) can execute without materializing a table per step.
//! Boundedness is untouched by lowering — every physical access still goes through the
//! index of an access constraint, and the set of `(constraint, key)` lookups is exactly
//! the one the logical plan performs — only the *residency* of intermediate results
//! changes, which is the point: the memory footprint of a bounded plan should scale with
//! the access schema's bounds, not with whatever the intermediate relational algebra
//! happens to materialize.
//!
//! Lowering applies these rules:
//!
//! * **Keyed-lookup fusion** — the synthesis emits every fetch as
//!   `σ[key equalities](T × fetch(X ∈ T, R, Y))`. When the product and the fetch have no
//!   other consumer, the triple collapses into one [`PhysOp::KeyedLookup`]: an index
//!   nested-loop join that streams `T`, probes the constraint's index once per distinct
//!   key, and never materializes the cross product *or* the fetched table. This
//!   generalizes the `defer_products` peephole that used to live in the executor.
//! * **Hash-join fallback** — same pattern but with a fetch that other steps also
//!   consume: the product/selection pair becomes a [`PhysOp::HashJoin`] against the
//!   (still shared) fetch node instead of a materialized product.
//! * **Projection pushdown** — a projection that is the sole consumer of a fetch is
//!   folded into the fetch's output positions ([`PhysOp::Fetch::positions`]), so dropped
//!   `Y`-attributes are never copied out of the store.
//! * **Dedup elimination** — each physical step tracks whether its output is already a
//!   set ([`PhysStep::set_valued`]); explicit [`PhysOp::Dedup`] steps are inserted only
//!   where the logical plan's set semantics actually needs them (e.g. after a union, or
//!   after a projection that drops key columns), never after an operator whose output is
//!   provably duplicate-free.
//! * **Rename and empty-branch elimination** — ρ steps vanish into column labels;
//!   `T ∪ ∅` and `T − ∅` collapse to `T`.
//! * **Materialization points** — a step is marked [`PhysStep::materialize`] only when
//!   it is a genuine pipeline breaker: its result is consumed by more than one operator
//!   (or it is the plan output). Everything else streams.
//! * **Exchange points** (opt-in, [`LowerOptions::exchange_parallelism`]) — the inputs
//!   of a union and the buffered sides of products, differences and hash joins are
//!   additionally marked as materialization points when their subtree performs index
//!   access. This cuts the plan into more, *independent* pipelines that a parallel
//!   scheduler can run on worker threads; it trades some residency (the exchanged
//!   results are buffered instead of streamed) for parallelism, and never changes what
//!   data is accessed. The same option additionally cuts the plan at the source of
//!   every keyed lookup whose source subtree performs index access: the lookup then
//!   heads a pipeline whose probe stream is a materialized batch sequence, which the
//!   scheduler can split into **morsels** — consecutive batch groups executed
//!   concurrently on the worker pool (see [`Pipeline::morsel_source`]).
//! * **Shard fan-out** (opt-in, [`LowerOptions::shard_fanout`]) — when the store's
//!   constraint indexes are partitioned into `K` shards, every keyed fetch and keyed
//!   lookup is rewritten into `K` per-shard branches (each tagged with a
//!   [`ShardRoute`], each a materialization point) merged by a union: branch `k`
//!   processes exactly the probe keys the routing hash assigns to shard `k`, so the
//!   branches partition the key set and the union of their outputs equals the
//!   unsharded result — boundedness survives partitioning, and the pipeline DAG gains
//!   one shard-local pipeline per branch (parallel width ≥ `K`). A sole-consumer
//!   projection over a fanned-out keyed lookup is absorbed into the branches' `emit`
//!   column set, so the sharded plan gathers exactly the values the unsharded
//!   executor's projection fusion would — copy traffic is shard-count-invariant.
//!   Fetches whose key is empty are not fanned out (a single shard owns the lone key).
//!
//! [`PhysicalPlan::pipeline_dag`] decomposes any lowered plan into its pipelines: each
//! materialization point, together with the streaming region feeding it, becomes one
//! [`Pipeline`]; the materialized steps it scans are its exchange edges. Pipelines with
//! no path between them are independent and may execute concurrently.
//!
//! The companion executor lives in `bea-engine` (`ops` module); it assigns one streaming
//! operator per physical step and reports peak rows resident alongside the usual access
//! statistics, so the materialized-vs-streaming ablation is observable.

use crate::error::{Error, Result};
use crate::plan::{NodeId, PlanOp, Predicate, QueryPlan};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a physical step within a [`PhysicalPlan`].
pub type PhysId = usize;

/// Routing tag of a per-shard fetch branch: the branch processes exactly the probe
/// keys whose routing hash (`bea-storage`'s `shard_of`) equals `shard` under `of`
/// shards. Lowering only records the tag; the executor applies the hash, so the plan
/// layer never needs to know the hash function itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRoute {
    /// The shard this branch serves.
    pub shard: u32,
    /// Total number of shards the key space is partitioned into (≥ 2).
    pub of: u32,
}

/// One physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// A single-row, single-column constant table.
    Const {
        /// The constant.
        value: Value,
    },
    /// A single row of arity 0.
    Unit,
    /// The empty relation of the given arity.
    Empty {
        /// Number of columns.
        arity: usize,
    },
    /// Streaming index fetch: drain `source`, deduplicate the key projections, then for
    /// each key probe the constraint's index and emit the `positions`-projection of every
    /// matching tuple (deduplicated per key).
    Fetch {
        /// The step supplying the key values.
        source: PhysId,
        /// Columns of `source` holding the key, aligned with `x_attrs`.
        key_cols: Vec<usize>,
        /// The relation fetched from.
        relation: String,
        /// Attribute positions of the relation forming the index key `X`.
        x_attrs: Vec<usize>,
        /// Attribute positions of the relation to emit, in output-column order. For an
        /// unfused fetch this is `x_attrs ++ y_attrs`; projection pushdown narrows or
        /// reorders it.
        positions: Vec<usize>,
        /// Index of the backing access constraint in the access schema.
        constraint_index: usize,
        /// `Some` on a per-shard branch of a sharded lowering: only probe keys routed
        /// to this shard are fetched. `None` fetches every key (the unsharded plan).
        shard: Option<ShardRoute>,
    },
    /// Index nested-loop join: for each row of `source`, probe the constraint's index
    /// with the row's `key_cols` projection (once per distinct key) and emit the row
    /// concatenated with each matching tuple's `positions`-projection, filtered by the
    /// `residual` predicates. This is the fused form of
    /// `σ[key equalities](T × fetch(X ∈ T, R, Y))`.
    KeyedLookup {
        /// The step supplying the probe rows.
        source: PhysId,
        /// Columns of `source` holding the key, aligned with `x_attrs`.
        key_cols: Vec<usize>,
        /// The relation fetched from.
        relation: String,
        /// Attribute positions of the relation forming the index key `X`.
        x_attrs: Vec<usize>,
        /// Attribute positions of the relation to emit for the fetch side.
        positions: Vec<usize>,
        /// Index of the backing access constraint in the access schema.
        constraint_index: usize,
        /// Predicates (over the concatenated output) beyond the fused key equalities.
        /// Evaluated over the *full* concatenation even when `emit` projects it.
        residual: Vec<Predicate>,
        /// `Some` on a per-shard branch of a sharded lowering: only source rows whose
        /// key routes to this shard are probed and emitted.
        shard: Option<ShardRoute>,
        /// Columns of the concatenated output (source columns, then fetched
        /// positions) to emit, set when shard fan-out absorbed a sole-consumer
        /// projection into the branches. `None` emits the full concatenation.
        emit: Option<Vec<usize>>,
    },
    /// Hash join on column equalities: build a hash table over `right` keyed by
    /// `right_keys`, stream `left`, and emit matching concatenations filtered by the
    /// `residual` predicates. Used when the keyed-lookup pattern matches but the fetch
    /// result is shared with other consumers and must stay a separate step.
    HashJoin {
        /// Probe side.
        left: PhysId,
        /// Build side.
        right: PhysId,
        /// Key columns of the probe side.
        left_keys: Vec<usize>,
        /// Key columns of the build side.
        right_keys: Vec<usize>,
        /// Predicates (over the concatenated output) beyond the join equalities.
        residual: Vec<Predicate>,
    },
    /// Streaming selection.
    Filter {
        /// Input step.
        source: PhysId,
        /// Conjunction of predicates.
        predicates: Vec<Predicate>,
    },
    /// Streaming projection (no deduplication — a [`PhysOp::Dedup`] follows if needed).
    Project {
        /// Input step.
        source: PhysId,
        /// Columns to keep.
        cols: Vec<usize>,
    },
    /// Streaming duplicate elimination (keeps a set of rows seen so far).
    Dedup {
        /// Input step.
        source: PhysId,
    },
    /// Cartesian product: the right side is buffered, the left side streams.
    Product {
        /// Streaming side.
        left: PhysId,
        /// Buffered side.
        right: PhysId,
    },
    /// Streaming concatenation of both inputs (a [`PhysOp::Dedup`] restores set
    /// semantics downstream).
    Union {
        /// First input.
        left: PhysId,
        /// Second input.
        right: PhysId,
    },
    /// Anti-semijoin on whole rows: the right side is buffered as a set, the left side
    /// streams through it.
    Difference {
        /// Streaming side.
        left: PhysId,
        /// Buffered side.
        right: PhysId,
    },
}

impl PhysOp {
    /// The steps this operator reads from.
    pub fn inputs(&self) -> Vec<PhysId> {
        match self {
            PhysOp::Const { .. } | PhysOp::Unit | PhysOp::Empty { .. } => Vec::new(),
            PhysOp::Fetch { source, .. }
            | PhysOp::KeyedLookup { source, .. }
            | PhysOp::Filter { source, .. }
            | PhysOp::Project { source, .. }
            | PhysOp::Dedup { source } => vec![*source],
            PhysOp::HashJoin { left, right, .. }
            | PhysOp::Product { left, right }
            | PhysOp::Union { left, right }
            | PhysOp::Difference { left, right } => vec![*left, *right],
        }
    }
}

/// One physical step: an operator plus its output description.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysStep {
    /// The operator producing this step's result.
    pub op: PhysOp,
    /// Labels of the result columns.
    pub columns: Vec<String>,
    /// True when the operator's output is provably duplicate-free; lowering inserts
    /// [`PhysOp::Dedup`] steps exactly where this is false but set semantics is needed.
    pub set_valued: bool,
    /// True when this step's result must be materialized (it has several consumers, or
    /// it is the plan output); everything else streams into its single consumer.
    pub materialize: bool,
    /// Number of operators consuming this step's result (the plan output counts once).
    pub consumers: usize,
}

/// A physical plan: streaming operators plus the index of the output step.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    query_name: String,
    steps: Vec<PhysStep>,
    output: PhysId,
}

impl PhysicalPlan {
    /// The name of the query this plan answers.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// The physical steps in evaluation order.
    pub fn steps(&self) -> &[PhysStep] {
        &self.steps
    }

    /// The output step.
    pub fn output(&self) -> PhysId {
        self.output
    }

    /// Number of physical steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the plan has no steps (never the case for lowered plans).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Structural validation: inputs precede their consumers and arities line up.
    pub fn validate(&self) -> Result<()> {
        if self.steps.is_empty() {
            return Err(Error::InvalidPlan {
                reason: "physical plan has no steps".into(),
            });
        }
        if self.output >= self.steps.len() {
            return Err(Error::InvalidPlan {
                reason: format!("physical output step {} is out of range", self.output),
            });
        }
        for (i, step) in self.steps.iter().enumerate() {
            for input in step.op.inputs() {
                if input >= i {
                    return Err(Error::InvalidPlan {
                        reason: format!(
                            "physical step {i} reads step {input}, which is not earlier"
                        ),
                    });
                }
            }
            let arity = |j: PhysId| self.steps[j].columns.len();
            let preds_in_range = |predicates: &[Predicate], arity: usize| {
                predicates.iter().all(|p| match p {
                    Predicate::ColEqCol(a, b) => *a < arity && *b < arity,
                    Predicate::ColEqConst(a, _) => *a < arity,
                })
            };
            let ok = match &step.op {
                PhysOp::Const { .. } => step.columns.len() == 1,
                PhysOp::Unit => step.columns.is_empty(),
                PhysOp::Empty { arity: a } => step.columns.len() == *a,
                PhysOp::Fetch {
                    key_cols,
                    x_attrs,
                    positions,
                    source,
                    shard,
                    ..
                } => {
                    key_cols.len() == x_attrs.len()
                        && key_cols.iter().all(|&c| c < arity(*source))
                        && step.columns.len() == positions.len()
                        && shard.is_none_or(|r| r.of >= 2 && r.shard < r.of)
                }
                PhysOp::KeyedLookup {
                    key_cols,
                    x_attrs,
                    positions,
                    source,
                    residual,
                    shard,
                    emit,
                    ..
                } => {
                    let full_arity = arity(*source) + positions.len();
                    key_cols.len() == x_attrs.len()
                        && key_cols.iter().all(|&c| c < arity(*source))
                        && match emit {
                            None => step.columns.len() == full_arity,
                            Some(cols) => {
                                step.columns.len() == cols.len()
                                    && cols.iter().all(|&c| c < full_arity)
                            }
                        }
                        && preds_in_range(residual, full_arity)
                        && shard.is_none_or(|r| r.of >= 2 && r.shard < r.of)
                }
                PhysOp::HashJoin {
                    left,
                    right,
                    left_keys,
                    right_keys,
                    residual,
                } => {
                    left_keys.len() == right_keys.len()
                        && left_keys.iter().all(|&c| c < arity(*left))
                        && right_keys.iter().all(|&c| c < arity(*right))
                        && step.columns.len() == arity(*left) + arity(*right)
                        && preds_in_range(residual, step.columns.len())
                }
                PhysOp::Filter { source, predicates } => {
                    step.columns.len() == arity(*source)
                        && preds_in_range(predicates, arity(*source))
                }
                PhysOp::Project { source, cols } => {
                    cols.iter().all(|&c| c < arity(*source)) && step.columns.len() == cols.len()
                }
                PhysOp::Dedup { source } => step.columns.len() == arity(*source),
                PhysOp::Product { left, right } => {
                    step.columns.len() == arity(*left) + arity(*right)
                }
                PhysOp::Union { left, right } | PhysOp::Difference { left, right } => {
                    arity(*left) == arity(*right) && step.columns.len() == arity(*left)
                }
            };
            if !ok {
                return Err(Error::InvalidPlan {
                    reason: format!("physical step {i} has inconsistent arity"),
                });
            }
        }
        Ok(())
    }

    /// Count how many steps are marked as materialization points (pipeline breakers).
    pub fn materialization_points(&self) -> usize {
        self.steps.iter().filter(|s| s.materialize).count()
    }

    /// Decompose the plan into its pipeline DAG: one [`Pipeline`] per materialization
    /// point, whose `sources` are the materialized steps its streaming region scans
    /// The steps of the streaming region rooted at `sink`: the sink itself plus every
    /// non-materialized step feeding it, stopping at materialized inputs (the region's
    /// exchange sources), in ascending step order. This is the set of operators one
    /// pipeline instantiates — the unit the scheduler runs, the morsel machinery
    /// caches for, and [`super::ticket::CostTicket`] sizes allocation surfaces over.
    pub fn region_steps(&self, sink: PhysId) -> Vec<PhysId> {
        let mut region = vec![sink];
        let mut stack: Vec<PhysId> = self.steps[sink].op.inputs();
        while let Some(j) = stack.pop() {
            if self.steps[j].materialize {
                continue;
            }
            region.push(j);
            stack.extend(self.steps[j].op.inputs());
        }
        region.sort_unstable();
        region
    }

    /// (the exchange edges). Pipelines appear in step order, which is a topological
    /// order of the DAG; pipelines with no path between them are independent and may
    /// run concurrently.
    pub fn pipeline_dag(&self) -> PipelineDag {
        let mut sink_to_pipeline: BTreeMap<PhysId, usize> = BTreeMap::new();
        let mut pipelines: Vec<Pipeline> = Vec::new();
        for (sink, step) in self.steps.iter().enumerate() {
            if !step.materialize {
                continue;
            }
            // Walk the streaming region feeding this sink. Non-materialized steps have
            // exactly one consumer (multi-consumer steps are always materialized), so
            // the region is a tree and the walk is linear. Along the way, collect the
            // shard routes of the region's fetch-shaped steps: a region that probes
            // exactly one shard tags the pipeline with it (shard affinity in the
            // scheduler); mixed or shard-free regions stay untagged.
            let mut sources: BTreeSet<PhysId> = BTreeSet::new();
            let mut shard: Option<u32> = None;
            let mut mixed = false;
            // Morsel eligibility of the region: every step must be a per-batch pure
            // map over its input — keyed lookups, filters and projections. Fetch is
            // excluded (it deduplicates keys globally across its whole input), and so
            // is every buffered / order-sensitive operator (dedup, joins, products,
            // differences, unions).
            let mut splittable = true;
            let mut has_lookup = false;
            let mut note_shard = |op: &PhysOp, splittable: &mut bool, has_lookup: &mut bool| {
                match op {
                    PhysOp::KeyedLookup { .. } => *has_lookup = true,
                    PhysOp::Filter { .. } | PhysOp::Project { .. } => {}
                    _ => *splittable = false,
                }
                let tag = match op {
                    PhysOp::Fetch { shard, .. } | PhysOp::KeyedLookup { shard, .. } => {
                        shard.map(|route| route.shard)
                    }
                    _ => None,
                };
                match (tag, shard) {
                    (Some(tag), Some(seen)) if tag != seen => mixed = true,
                    (Some(tag), None) => shard = Some(tag),
                    _ => {}
                }
            };
            note_shard(&step.op, &mut splittable, &mut has_lookup);
            let mut stack: Vec<PhysId> = self.steps[sink].op.inputs();
            while let Some(j) = stack.pop() {
                if self.steps[j].materialize {
                    sources.insert(j);
                } else {
                    note_shard(&self.steps[j].op, &mut splittable, &mut has_lookup);
                    stack.extend(self.steps[j].op.inputs());
                }
            }
            sink_to_pipeline.insert(sink, pipelines.len());
            let sources: Vec<PhysId> = sources.into_iter().collect();
            // A splittable region is a linear chain of per-batch maps over exactly
            // one materialized source: its probe stream can be cut into batch groups
            // (morsels) executed concurrently without changing any result or counter.
            let morsel_source = match sources.as_slice() {
                [source] if splittable && has_lookup => Some(*source),
                _ => None,
            };
            pipelines.push(Pipeline {
                sink,
                sources,
                shard: if mixed { None } else { shard },
                morsel_source,
            });
        }
        let deps: Vec<Vec<usize>> = pipelines
            .iter()
            .map(|p| {
                p.sources
                    .iter()
                    .map(|s| sink_to_pipeline[s])
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); pipelines.len()];
        for (i, dep) in deps.iter().enumerate() {
            for &d in dep {
                dependents[d].push(i);
            }
        }
        PipelineDag {
            pipelines,
            deps,
            dependents,
        }
    }
}

/// One pipeline of a physical plan: the materialization point `sink` plus the streaming
/// region that feeds it. Executing a pipeline means pulling the operator tree rooted at
/// `sink` to exhaustion and materializing the result; the `sources` are the
/// materialization points that region scans, so a pipeline is runnable exactly when all
/// of its sources have been produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    /// The materialized step this pipeline produces.
    pub sink: PhysId,
    /// The materialized steps its streaming region reads (exchange edges), in step
    /// order.
    pub sources: Vec<PhysId>,
    /// The index-partition shard this pipeline probes, when its region is shard-local
    /// (a per-shard branch of a sharded lowering). The parallel scheduler uses it for
    /// shard affinity: a worker that just ran shard `k`'s pipeline prefers the next
    /// pipeline tagged `k`.
    pub shard: Option<u32>,
    /// The pipeline's sole materialized source, when its streaming region is
    /// morsel-splittable: a linear chain of per-batch pure maps (keyed lookups,
    /// filters, projections — at least one lookup) over exactly one source. Such a
    /// region computes each output batch from one input batch independently, so the
    /// scheduler may cut the source's batch stream into **morsels** (consecutive
    /// batch groups) and run them concurrently: the concatenated per-morsel results,
    /// in morsel order, equal the unsplit pipeline's output batch-for-batch, and
    /// every data-access counter is unchanged. `None` for regions with buffered or
    /// order-sensitive state (fetch's global key dedup, dedup, joins, products,
    /// unions, differences) or with several sources.
    pub morsel_source: Option<PhysId>,
}

/// The pipeline decomposition of a [`PhysicalPlan`]: pipelines in topological (step)
/// order plus the dependency edges between them. See [`PhysicalPlan::pipeline_dag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineDag {
    pipelines: Vec<Pipeline>,
    deps: Vec<Vec<usize>>,
    dependents: Vec<Vec<usize>>,
}

impl PipelineDag {
    /// The pipelines in topological order (the last one produces the plan output).
    pub fn pipelines(&self) -> &[Pipeline] {
        &self.pipelines
    }

    /// Number of pipelines.
    pub fn len(&self) -> usize {
        self.pipelines.len()
    }

    /// True when the DAG has no pipelines (never the case for lowered plans).
    pub fn is_empty(&self) -> bool {
        self.pipelines.is_empty()
    }

    /// Pipelines that must complete before pipeline `i` can start.
    pub fn dependencies(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// Pipelines unblocked (in part) by the completion of pipeline `i`.
    pub fn dependents(&self, i: usize) -> &[usize] {
        &self.dependents[i]
    }

    /// The maximum number of pipelines that can run concurrently under level-by-level
    /// scheduling (all pipelines at equal longest-path depth are mutually independent).
    /// A plan with a single pipeline has width 1; wider DAGs are where a parallel
    /// scheduler can win.
    pub fn parallel_width(&self) -> usize {
        let mut level: Vec<usize> = vec![0; self.pipelines.len()];
        let mut width: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..self.pipelines.len() {
            let l = self.deps[i]
                .iter()
                .map(|&d| level[d] + 1)
                .max()
                .unwrap_or(0);
            level[i] = l;
            *width.entry(l).or_insert(0) += 1;
        }
        width.values().copied().max().unwrap_or(0)
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "physical plan for {}:", self.query_name)?;
        for (i, step) in self.steps.iter().enumerate() {
            let mut marks = String::new();
            if i == self.output {
                marks.push_str(" (output)");
            }
            if step.materialize {
                marks.push_str(" [mat]");
            }
            let cols = step.columns.join(", ");
            match &step.op {
                PhysOp::Const { value } => writeln!(f, "  P{i} = {{{value}}}{marks} [{cols}]")?,
                PhysOp::Unit => writeln!(f, "  P{i} = {{()}}{marks}")?,
                PhysOp::Empty { arity } => writeln!(f, "  P{i} = ∅/{arity}{marks}")?,
                PhysOp::Fetch {
                    source,
                    key_cols,
                    relation,
                    positions,
                    constraint_index,
                    shard,
                    ..
                } => {
                    let route =
                        shard.map_or_else(String::new, |r| format!(" @shard {}/{}", r.shard, r.of));
                    writeln!(
                        f,
                        "  P{i} = fetch(X ∈ π{key_cols:?}(P{source}), {relation}→{positions:?}) via φ{constraint_index}{route}{marks} [{cols}]"
                    )?
                }
                PhysOp::KeyedLookup {
                    source,
                    key_cols,
                    relation,
                    positions,
                    constraint_index,
                    residual,
                    shard,
                    emit,
                    ..
                } => {
                    let route =
                        shard.map_or_else(String::new, |r| format!(" @shard {}/{}", r.shard, r.of));
                    let emitted = emit
                        .as_ref()
                        .map_or_else(String::new, |cols| format!(" π{cols:?}"));
                    writeln!(
                        f,
                        "  P{i} = P{source} ⋉× lookup({relation}→{positions:?} by {key_cols:?}, σ[{} residual]){emitted} via φ{constraint_index}{route}{marks} [{cols}]",
                        residual.len()
                    )?
                }
                PhysOp::HashJoin {
                    left,
                    right,
                    left_keys,
                    right_keys,
                    ..
                } => writeln!(
                    f,
                    "  P{i} = P{left} ⋈[{left_keys:?}={right_keys:?}] P{right}{marks} [{cols}]"
                )?,
                PhysOp::Filter { source, predicates } => {
                    let preds = predicates
                        .iter()
                        .map(Predicate::to_string)
                        .collect::<Vec<_>>()
                        .join(" ∧ ");
                    writeln!(f, "  P{i} = σ[{preds}](P{source}){marks} [{cols}]")?
                }
                PhysOp::Project { source, cols: c } => {
                    writeln!(f, "  P{i} = π{c:?}(P{source}){marks} [{cols}]")?
                }
                PhysOp::Dedup { source } => writeln!(f, "  P{i} = δ(P{source}){marks} [{cols}]")?,
                PhysOp::Product { left, right } => {
                    writeln!(f, "  P{i} = P{left} × P{right}{marks} [{cols}]")?
                }
                PhysOp::Union { left, right } => {
                    writeln!(f, "  P{i} = P{left} ∪ P{right}{marks} [{cols}]")?
                }
                PhysOp::Difference { left, right } => {
                    writeln!(f, "  P{i} = P{left} − P{right}{marks} [{cols}]")?
                }
            }
        }
        Ok(())
    }
}

/// How a logical `σ(product)` pair lowers when the keyed-join pattern matches.
enum Fusion {
    /// Product and fetch both disappear into a [`PhysOp::KeyedLookup`].
    Keyed { left: NodeId, fetch: NodeId },
    /// Only the product disappears; the fetch stays shared and the selection becomes a
    /// [`PhysOp::HashJoin`] against it.
    Hash { left: NodeId, fetch: NodeId },
}

/// Options controlling [`lower_plan_with`].
///
/// The struct is `#[non_exhaustive]`: construct it with [`LowerOptions::new`] (or
/// [`Default`]) and adjust knobs through the `with_*` methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct LowerOptions {
    /// Additionally mark the inputs of unions and the buffered sides of products,
    /// differences and hash joins as materialization points when their subtrees perform
    /// index access, so the pipeline DAG gains parallel width (see the module docs).
    /// Off by default: the single-threaded executor prefers the minimal set of
    /// breakers, which minimizes residency.
    pub exchange_parallelism: bool,
    /// Fan every keyed fetch/lookup out into this many per-shard branches merged by
    /// union (see the module docs). `1` (the default) and `0` leave the plan
    /// unsharded; set it to the store's shard count when executing against a
    /// `ShardedDatabase`, so every branch probes only the index partition that owns
    /// its keys.
    pub shard_fanout: u32,
}

impl Default for LowerOptions {
    fn default() -> Self {
        Self {
            exchange_parallelism: false,
            shard_fanout: 1,
        }
    }
}

impl LowerOptions {
    /// The default options: minimal materialization, no exchange points, no sharding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set whether lowering inserts exchange points for parallel execution.
    pub fn with_exchange_parallelism(mut self, exchange_parallelism: bool) -> Self {
        self.exchange_parallelism = exchange_parallelism;
        self
    }

    /// Set the shard fan-out (the store's shard count; 0 or 1 = unsharded).
    pub fn with_shard_fanout(mut self, shard_fanout: u32) -> Self {
        self.shard_fanout = shard_fanout;
        self
    }
}

/// Lower a logical plan to a physical streaming plan with the default options. See the
/// module docs for the rules.
pub fn lower_plan(plan: &QueryPlan) -> Result<PhysicalPlan> {
    lower_plan_with(plan, &LowerOptions::default())
}

/// Lower a logical plan to a physical streaming plan under explicit [`LowerOptions`].
pub fn lower_plan_with(plan: &QueryPlan, options: &LowerOptions) -> Result<PhysicalPlan> {
    plan.validate()?;
    let steps = plan.steps();
    let n = steps.len();

    // Logical consumer lists; the plan output counts as one extra (virtual) consumer.
    let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (i, step) in steps.iter().enumerate() {
        match &step.op {
            PlanOp::Fetch { source, .. }
            | PlanOp::Project { source, .. }
            | PlanOp::Select { source, .. }
            | PlanOp::Rename { source } => consumers[*source].push(i),
            PlanOp::Product { left, right }
            | PlanOp::Union { left, right }
            | PlanOp::Difference { left, right } => {
                consumers[*left].push(i);
                consumers[*right].push(i);
            }
            PlanOp::Const { .. } | PlanOp::Unit | PlanOp::Empty { .. } => {}
        }
    }
    consumers[plan.output()].push(n); // virtual consumer: the caller

    // Keyed-join fusion: σ[all keys tied](T × fetch(X ∈ T, …)) where the product has no
    // other consumer. The fetch is absorbed too when the selection is its only transitive
    // consumer; otherwise it stays shared and the selection becomes a hash join.
    let mut fusion: BTreeMap<NodeId, Fusion> = BTreeMap::new();
    let mut absorbed: BTreeSet<NodeId> = BTreeSet::new();
    for (i, step) in steps.iter().enumerate() {
        let PlanOp::Select { source, predicates } = &step.op else {
            continue;
        };
        let PlanOp::Product { left, right } = &steps[*source].op else {
            continue;
        };
        if consumers[*source].len() != 1 {
            continue;
        }
        let PlanOp::Fetch {
            source: fetch_source,
            key_cols,
            ..
        } = &steps[*right].op
        else {
            continue;
        };
        if fetch_source != left {
            continue;
        }
        let left_arity = steps[*left].columns.len();
        if !keys_all_tied(predicates, key_cols, left_arity) {
            continue;
        }
        absorbed.insert(*source);
        if consumers[*right].len() == 1 {
            absorbed.insert(*right);
            fusion.insert(
                i,
                Fusion::Keyed {
                    left: *left,
                    fetch: *right,
                },
            );
        } else {
            fusion.insert(
                i,
                Fusion::Hash {
                    left: *left,
                    fetch: *right,
                },
            );
        }
    }

    // Projection pushdown: a projection that is the sole consumer of a fetch folds into
    // the fetch's output positions.
    let mut pushdown: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (i, step) in steps.iter().enumerate() {
        let PlanOp::Project { source, .. } = &step.op else {
            continue;
        };
        if absorbed.contains(source) || consumers[*source].len() != 1 {
            continue;
        }
        if matches!(&steps[*source].op, PlanOp::Fetch { .. }) {
            pushdown.insert(i, *source);
            absorbed.insert(*source);
        }
    }

    // Emit physical steps.
    let mut phys: Vec<PhysStep> = Vec::with_capacity(n);
    let mut map: Vec<Option<PhysId>> = vec![None; n];
    let push = |phys: &mut Vec<PhysStep>, op: PhysOp, columns: Vec<String>, sv: bool| {
        phys.push(PhysStep {
            op,
            columns,
            set_valued: sv,
            materialize: false,
            consumers: 0,
        });
        phys.len() - 1
    };
    // Fetch output = x_attrs ++ y_attrs, expressed as relation-attribute positions.
    let fetch_base_positions = |node: NodeId| -> Vec<usize> {
        let PlanOp::Fetch {
            x_attrs, y_attrs, ..
        } = &steps[node].op
        else {
            unreachable!("caller checked the step is a fetch");
        };
        x_attrs.iter().chain(y_attrs.iter()).copied().collect()
    };

    for (i, step) in steps.iter().enumerate() {
        if absorbed.contains(&i) {
            continue;
        }
        let node = match &step.op {
            PlanOp::Const { value } => push(
                &mut phys,
                PhysOp::Const {
                    value: value.clone(),
                },
                step.columns.clone(),
                true,
            ),
            PlanOp::Unit => push(&mut phys, PhysOp::Unit, step.columns.clone(), true),
            PlanOp::Empty { arity } => push(
                &mut phys,
                PhysOp::Empty { arity: *arity },
                step.columns.clone(),
                true,
            ),
            PlanOp::Fetch {
                source,
                key_cols,
                relation,
                x_attrs,
                constraint_index,
                ..
            } => {
                // An unfused fetch emits X ++ Y: distinct keys yield rows that differ on
                // the X prefix, and the operator deduplicates within each key, so the
                // output is a set and the logical fetch's dedup is eliminated.
                push(
                    &mut phys,
                    PhysOp::Fetch {
                        source: map[*source].expect("source lowered earlier"),
                        key_cols: key_cols.clone(),
                        relation: relation.clone(),
                        x_attrs: x_attrs.clone(),
                        positions: fetch_base_positions(i),
                        constraint_index: *constraint_index,
                        shard: None,
                    },
                    step.columns.clone(),
                    true,
                )
            }
            PlanOp::Project { source, cols } => {
                if let Some(&fetch_node) = pushdown.get(&i) {
                    let PlanOp::Fetch {
                        source: fsrc,
                        key_cols,
                        relation,
                        x_attrs,
                        constraint_index,
                        ..
                    } = &steps[fetch_node].op
                    else {
                        unreachable!("pushdown targets are fetches");
                    };
                    let base = fetch_base_positions(fetch_node);
                    let positions: Vec<usize> = cols.iter().map(|&c| base[c]).collect();
                    // Set-valued only if the projection kept every key attribute —
                    // otherwise rows from different keys can collide.
                    let sv = x_attrs.iter().all(|a| positions.contains(a));
                    let id = push(
                        &mut phys,
                        PhysOp::Fetch {
                            source: map[*fsrc].expect("source lowered earlier"),
                            key_cols: key_cols.clone(),
                            relation: relation.clone(),
                            x_attrs: x_attrs.clone(),
                            positions,
                            constraint_index: *constraint_index,
                            shard: None,
                        },
                        step.columns.clone(),
                        sv,
                    );
                    if sv {
                        id
                    } else {
                        push(
                            &mut phys,
                            PhysOp::Dedup { source: id },
                            step.columns.clone(),
                            true,
                        )
                    }
                } else {
                    let src = map[*source].expect("source lowered earlier");
                    let src_arity = phys[src].columns.len();
                    // Keeping every input column (in any order, possibly duplicated)
                    // makes the projection injective on rows.
                    let injective = (0..src_arity).all(|c| cols.contains(&c));
                    let sv = phys[src].set_valued && injective;
                    let id = push(
                        &mut phys,
                        PhysOp::Project {
                            source: src,
                            cols: cols.clone(),
                        },
                        step.columns.clone(),
                        sv,
                    );
                    if sv {
                        id
                    } else {
                        push(
                            &mut phys,
                            PhysOp::Dedup { source: id },
                            step.columns.clone(),
                            true,
                        )
                    }
                }
            }
            PlanOp::Select { source, predicates } => match fusion.get(&i) {
                Some(Fusion::Keyed { left, fetch }) => {
                    let PlanOp::Fetch {
                        key_cols,
                        relation,
                        x_attrs,
                        constraint_index,
                        ..
                    } = &steps[*fetch].op
                    else {
                        unreachable!("fusion targets are fetches");
                    };
                    let src = map[*left].expect("source lowered earlier");
                    let residual =
                        residual_predicates(predicates, key_cols, phys[src].columns.len());
                    // Distinct probe rows emit distinct concatenations (the fetched
                    // side is deduplicated per key).
                    let sv = phys[src].set_valued;
                    push(
                        &mut phys,
                        PhysOp::KeyedLookup {
                            source: src,
                            key_cols: key_cols.clone(),
                            relation: relation.clone(),
                            x_attrs: x_attrs.clone(),
                            positions: fetch_base_positions(*fetch),
                            constraint_index: *constraint_index,
                            residual,
                            shard: None,
                            emit: None,
                        },
                        step.columns.clone(),
                        sv,
                    )
                }
                Some(Fusion::Hash { left, fetch }) => {
                    let PlanOp::Fetch { key_cols, .. } = &steps[*fetch].op else {
                        unreachable!("fusion targets are fetches");
                    };
                    let l = map[*left].expect("source lowered earlier");
                    let r = map[*fetch].expect("source lowered earlier");
                    let residual = residual_predicates(predicates, key_cols, phys[l].columns.len());
                    let sv = phys[l].set_valued && phys[r].set_valued;
                    push(
                        &mut phys,
                        PhysOp::HashJoin {
                            left: l,
                            right: r,
                            left_keys: key_cols.clone(),
                            right_keys: (0..key_cols.len()).collect(),
                            residual,
                        },
                        step.columns.clone(),
                        sv,
                    )
                }
                None => {
                    let src = map[*source].expect("source lowered earlier");
                    let sv = phys[src].set_valued;
                    push(
                        &mut phys,
                        PhysOp::Filter {
                            source: src,
                            predicates: predicates.clone(),
                        },
                        step.columns.clone(),
                        sv,
                    )
                }
            },
            PlanOp::Product { left, right } => {
                let (l, r) = (
                    map[*left].expect("source lowered earlier"),
                    map[*right].expect("source lowered earlier"),
                );
                let sv = phys[l].set_valued && phys[r].set_valued;
                push(
                    &mut phys,
                    PhysOp::Product { left: l, right: r },
                    step.columns.clone(),
                    sv,
                )
            }
            PlanOp::Union { left, right } => {
                let (l, r) = (
                    map[*left].expect("source lowered earlier"),
                    map[*right].expect("source lowered earlier"),
                );
                // ∅ branches vanish (the logical union still dedups, so guard that).
                let alias = if matches!(phys[l].op, PhysOp::Empty { .. }) {
                    Some(r)
                } else if matches!(phys[r].op, PhysOp::Empty { .. }) {
                    Some(l)
                } else {
                    None
                };
                match alias {
                    Some(a) if phys[a].set_valued => a,
                    Some(a) => push(
                        &mut phys,
                        PhysOp::Dedup { source: a },
                        step.columns.clone(),
                        true,
                    ),
                    None => {
                        let u = push(
                            &mut phys,
                            PhysOp::Union { left: l, right: r },
                            step.columns.clone(),
                            false,
                        );
                        push(
                            &mut phys,
                            PhysOp::Dedup { source: u },
                            step.columns.clone(),
                            true,
                        )
                    }
                }
            }
            PlanOp::Difference { left, right } => {
                let (l, r) = (
                    map[*left].expect("source lowered earlier"),
                    map[*right].expect("source lowered earlier"),
                );
                if matches!(phys[r].op, PhysOp::Empty { .. }) {
                    l
                } else {
                    let sv = phys[l].set_valued;
                    push(
                        &mut phys,
                        PhysOp::Difference { left: l, right: r },
                        step.columns.clone(),
                        sv,
                    )
                }
            }
            PlanOp::Rename { source } => map[*source].expect("source lowered earlier"),
        };
        map[i] = Some(node);
    }

    // Restore set semantics at the output and force the logical column labels.
    let mut output = map[plan.output()].expect("output lowered");
    if !phys[output].set_valued {
        let columns = phys[output].columns.clone();
        output = push(&mut phys, PhysOp::Dedup { source: output }, columns, true);
    }
    phys[output].columns = steps[plan.output()].columns.clone();

    // Prune steps no longer reachable from the output (sources of eliminated renames,
    // ∅ branches, steps absorbed into fused operators).
    let (phys, output) = prune_unreachable(phys, output);

    // Shard fan-out: rewrite every keyed fetch/lookup into one branch per shard,
    // merged by union (see the module docs). The branch steps are forced to
    // materialize below, so each becomes a shard-local pipeline.
    let (mut phys, output, shard_branches) = if options.shard_fanout >= 2 {
        fan_out_shards(phys, output, options.shard_fanout)
    } else {
        (phys, output, Vec::new())
    };

    // Consumer counts over the physical graph decide the materialization points.
    let mut counts: Vec<usize> = vec![0; phys.len()];
    for step in &phys {
        for input in step.op.inputs() {
            counts[input] += 1;
        }
    }
    counts[output] += 1; // virtual consumer: the caller takes the output table
    for (step, &count) in phys.iter_mut().zip(counts.iter()) {
        step.consumers = count;
        step.materialize = count >= 2;
    }
    phys[output].materialize = true;
    for &branch in &shard_branches {
        phys[branch].materialize = true;
    }

    // Exchange points: cut the plan at the inputs of unions and at the buffered sides
    // of products, differences and hash joins, provided the cut-off subtree actually
    // performs index access (there is nothing to win by running a constant on its own
    // thread). Materializing a step never changes what is fetched — the same operator
    // tree runs, its result is just buffered at the cut — so data-access accounting is
    // identical with and without exchange points.
    if options.exchange_parallelism {
        let mut has_access: Vec<bool> = vec![false; phys.len()];
        for i in 0..phys.len() {
            has_access[i] = matches!(
                phys[i].op,
                PhysOp::Fetch { .. } | PhysOp::KeyedLookup { .. }
            ) || phys[i].op.inputs().iter().any(|&j| has_access[j]);
        }
        let mut exchange: Vec<PhysId> = Vec::new();
        for step in &phys {
            match &step.op {
                PhysOp::Union { left, right } => {
                    exchange.extend([*left, *right]);
                }
                PhysOp::Product { right, .. }
                | PhysOp::Difference { right, .. }
                | PhysOp::HashJoin { right, .. } => {
                    exchange.push(*right);
                }
                _ => {}
            }
        }
        for j in exchange {
            if has_access[j] {
                phys[j].materialize = true;
            }
        }
        // Morsel cuts: the source of a keyed lookup becomes a materialization point
        // when the source subtree itself performs index access. This turns a heavy
        // straight-line chain (fetch → lookup → lookup) into lookup-over-materialized-
        // source pipelines whose probe streams the scheduler can split into
        // batch-sized morsels (see [`Pipeline::morsel_source`]). Like every exchange
        // point, the cut only buffers a result that was computed anyway — the batch
        // boundaries, data access and copy traffic are all unchanged.
        let mut morsel_cuts: Vec<PhysId> = Vec::new();
        for step in &phys {
            if let PhysOp::KeyedLookup { source, .. } = &step.op {
                if has_access[*source] {
                    morsel_cuts.push(*source);
                }
            }
        }
        for j in morsel_cuts.drain(..) {
            phys[j].materialize = true;
        }
        // A dedup that caps a lookup chain (the set-restoring step over the plan
        // output, typically) is order-sensitive and can never be part of a morsel
        // region — cut *below* it when doing so leaves a splittable chain behind:
        // walking from the dedup's source through streaming filters/projections must
        // reach a streaming keyed lookup.
        for step in &phys {
            let PhysOp::Dedup { source } = &step.op else {
                continue;
            };
            let mut j = *source;
            loop {
                if phys[j].materialize {
                    break;
                }
                match &phys[j].op {
                    PhysOp::KeyedLookup { .. } => {
                        morsel_cuts.push(*source);
                        break;
                    }
                    PhysOp::Filter { source, .. } | PhysOp::Project { source, .. } => j = *source,
                    _ => break,
                }
            }
        }
        for j in morsel_cuts {
            phys[j].materialize = true;
        }
    }

    let plan = PhysicalPlan {
        query_name: plan.query_name().to_owned(),
        steps: phys,
        output,
    };
    plan.validate()?;
    Ok(plan)
}

/// Drop steps unreachable from the output, remapping step ids (order is preserved, so
/// topological validity is too).
fn prune_unreachable(steps: Vec<PhysStep>, output: PhysId) -> (Vec<PhysStep>, PhysId) {
    let mut reachable = vec![false; steps.len()];
    let mut stack = vec![output];
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut reachable[i], true) {
            continue;
        }
        stack.extend(steps[i].op.inputs());
    }
    if reachable.iter().all(|&r| r) {
        return (steps, output);
    }
    let mut remap: Vec<Option<PhysId>> = vec![None; steps.len()];
    let mut kept: Vec<PhysStep> = Vec::with_capacity(steps.len());
    for (i, mut step) in steps.into_iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        remap_op_inputs(&mut step.op, &remap);
        remap[i] = Some(kept.len());
        kept.push(step);
    }
    let output = remap[output].expect("output is reachable");
    (kept, output)
}

/// Point every input of `op` at its image under `map` (which must be total on the
/// inputs).
fn remap_op_inputs(op: &mut PhysOp, map: &[Option<PhysId>]) {
    let fix = |j: &mut PhysId| *j = map[*j].expect("inputs lowered earlier");
    match op {
        PhysOp::Const { .. } | PhysOp::Unit | PhysOp::Empty { .. } => {}
        PhysOp::Fetch { source, .. }
        | PhysOp::KeyedLookup { source, .. }
        | PhysOp::Filter { source, .. }
        | PhysOp::Project { source, .. }
        | PhysOp::Dedup { source } => fix(source),
        PhysOp::HashJoin { left, right, .. }
        | PhysOp::Product { left, right }
        | PhysOp::Union { left, right }
        | PhysOp::Difference { left, right } => {
            fix(left);
            fix(right);
        }
    }
}

/// Rewrite every keyed fetch/lookup into `fanout` per-shard branches merged by a union
/// chain, returning the rewritten steps, the remapped output, and the branch step ids
/// (which the caller forces to materialize — one shard-local pipeline each).
///
/// The branches partition the probe-key set by the routing hash, so their outputs are
/// disjoint slices of the unsharded result: the union preserves the original step's
/// set-valuedness, and data access (which keys are probed, which tuples fetched) is
/// exactly the unsharded plan's. A sole-consumer projection directly over a fanned-out
/// keyed lookup is absorbed into the branches' `emit` columns, so the branches gather
/// exactly the values the unsharded executor's projection fusion would — the copy
/// traffic of a plan is invariant under the shard count. Fetches with an empty key are
/// left alone: one shard owns the lone key, so there is nothing to fan out.
fn fan_out_shards(
    steps: Vec<PhysStep>,
    output: PhysId,
    fanout: u32,
) -> (Vec<PhysStep>, PhysId, Vec<PhysId>) {
    // Consumer counts decide which projections are sole consumers (the output counts
    // as one extra, so an output-feeding lookup keeps its full arity).
    let mut counts: Vec<usize> = vec![0; steps.len()];
    for step in &steps {
        for input in step.op.inputs() {
            counts[input] += 1;
        }
    }
    counts[output] += 1;

    // Projections absorbed into the branches of the keyed lookup they solely consume.
    let mut absorb: BTreeMap<PhysId, PhysId> = BTreeMap::new(); // lookup -> projection
    for (i, step) in steps.iter().enumerate() {
        let PhysOp::Project { source, .. } = &step.op else {
            continue;
        };
        if counts[*source] != 1 {
            continue;
        }
        if let PhysOp::KeyedLookup { key_cols, emit, .. } = &steps[*source].op {
            if !key_cols.is_empty() && emit.is_none() {
                absorb.insert(*source, i);
            }
        }
    }
    let absorbed_projects: BTreeSet<PhysId> = absorb.values().copied().collect();

    let mut out: Vec<PhysStep> = Vec::with_capacity(steps.len());
    let mut map: Vec<Option<PhysId>> = vec![None; steps.len()];
    let mut branches: Vec<PhysId> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        if absorbed_projects.contains(&i) {
            // The projection's result is the union its lookup was fanned out into.
            let PhysOp::Project { source, .. } = &step.op else {
                unreachable!("absorbed steps are projections");
            };
            map[i] = map[*source];
            continue;
        }
        let fan = match &step.op {
            PhysOp::Fetch { key_cols, .. } | PhysOp::KeyedLookup { key_cols, .. } => {
                !key_cols.is_empty()
            }
            _ => false,
        };
        if !fan {
            let mut copy = step.clone();
            remap_op_inputs(&mut copy.op, &map);
            out.push(copy);
            map[i] = Some(out.len() - 1);
            continue;
        }
        // The fanned result carries the absorbed projection's shape when there is one.
        let (columns, set_valued, emit_cols) = match absorb.get(&i) {
            Some(&project) => {
                let PhysOp::Project { cols, .. } = &steps[project].op else {
                    unreachable!("absorb targets are projections");
                };
                (
                    steps[project].columns.clone(),
                    steps[project].set_valued,
                    Some(cols.clone()),
                )
            }
            None => (step.columns.clone(), step.set_valued, None),
        };
        let mut branch_ids = Vec::with_capacity(fanout as usize);
        for shard in 0..fanout {
            let mut op = step.op.clone();
            remap_op_inputs(&mut op, &map);
            let route = Some(ShardRoute { shard, of: fanout });
            match &mut op {
                PhysOp::Fetch { shard: s, .. } => *s = route,
                PhysOp::KeyedLookup { shard: s, emit, .. } => {
                    *s = route;
                    *emit = emit_cols.clone();
                }
                _ => unreachable!("only fetch-shaped steps are fanned out"),
            }
            out.push(PhysStep {
                op,
                columns: columns.clone(),
                set_valued,
                materialize: false,
                consumers: 0,
            });
            branch_ids.push(out.len() - 1);
        }
        // Merge the branches. They partition the key space, so the chain keeps the
        // original step's set-valuedness even though a generic union would lose it.
        let mut acc = branch_ids[0];
        for &branch in &branch_ids[1..] {
            out.push(PhysStep {
                op: PhysOp::Union {
                    left: acc,
                    right: branch,
                },
                columns: columns.clone(),
                set_valued,
                materialize: false,
                consumers: 0,
            });
            acc = out.len() - 1;
        }
        branches.extend(branch_ids);
        map[i] = Some(acc);
    }
    let output = map[output].expect("output survives fan-out");
    (out, output, branches)
}

/// True when `predicates` equates every fetch key column with its source column — the
/// `σ[key equalities](T × fetch(X ∈ T, …))` shape plan synthesis emits for every fetch.
/// Shared with the materialized executor's deferred-product peephole so the two
/// strategies always recognize the same pattern.
pub fn keys_all_tied(predicates: &[Predicate], key_cols: &[usize], left_arity: usize) -> bool {
    key_cols
        .iter()
        .enumerate()
        .all(|(k, &kc)| predicates.contains(&Predicate::ColEqCol(kc, left_arity + k)))
}

/// The predicates of a fused selection that go beyond the key equalities (the part a
/// keyed join still has to check per emitted row). Counterpart of [`keys_all_tied`].
pub fn residual_predicates(
    predicates: &[Predicate],
    key_cols: &[usize],
    left_arity: usize,
) -> Vec<Predicate> {
    predicates
        .iter()
        .filter(|p| match p {
            Predicate::ColEqCol(a, b) => !key_cols
                .iter()
                .enumerate()
                .any(|(k, &kc)| *a == kc && *b == left_arity + k),
            Predicate::ColEqConst(_, _) => true,
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;

    /// `σ[k = a](keys × fetch(a ∈ keys, R, b))` — the exact shape plan synthesis emits.
    fn keyed_join_plan() -> QueryPlan {
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let k2 = b.constant(Value::int(2), "k");
        let keys = b.union(k1, k2);
        let fetched = b.fetch(
            keys,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(keys, fetched);
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        b.finish("Q", sel).unwrap()
    }

    #[test]
    fn keyed_join_fuses_into_lookup() {
        let plan = keyed_join_plan();
        let phys = lower_plan(&plan).unwrap();
        assert!(phys.validate().is_ok());
        // No physical product, no standalone fetch: the whole pattern is one lookup.
        assert!(phys
            .steps()
            .iter()
            .all(|s| !matches!(s.op, PhysOp::Product { .. } | PhysOp::Fetch { .. })));
        let lookups = phys
            .steps()
            .iter()
            .filter(|s| matches!(s.op, PhysOp::KeyedLookup { .. }))
            .count();
        assert_eq!(lookups, 1);
        // The fused key equality leaves no residual predicate.
        let Some(PhysOp::KeyedLookup { residual, .. }) = phys
            .steps()
            .iter()
            .map(|s| &s.op)
            .find(|op| matches!(op, PhysOp::KeyedLookup { .. }))
        else {
            panic!("no keyed lookup");
        };
        assert!(residual.is_empty());
        let display = phys.to_string();
        assert!(display.contains("lookup"));
        assert!(display.contains("(output)"));
    }

    #[test]
    fn shared_fetch_falls_back_to_hash_join() {
        // Same pattern, but the fetch result is also consumed by a projection, so it
        // must stay a step of its own and the selection becomes a hash join.
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let fetched = b.fetch(
            k1,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(k1, fetched);
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        let other = b.project(fetched, vec![1]);
        let out = b.product(sel, other);
        let plan = b.finish("Q", out).unwrap();
        let phys = lower_plan(&plan).unwrap();
        assert!(phys
            .steps()
            .iter()
            .any(|s| matches!(s.op, PhysOp::HashJoin { .. })));
        assert!(phys
            .steps()
            .iter()
            .any(|s| matches!(s.op, PhysOp::Fetch { .. })));
        // The shared fetch is a pipeline breaker: it feeds both the join and the
        // projection.
        let fetch_step = phys
            .steps()
            .iter()
            .find(|s| matches!(s.op, PhysOp::Fetch { .. }))
            .unwrap();
        assert!(fetch_step.materialize);
        assert_eq!(fetch_step.consumers, 2);
    }

    #[test]
    fn projection_pushes_into_fetch_positions() {
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "k");
        let fetched = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1, 2],
            0,
            vec!["a".into(), "b".into(), "c".into()],
        );
        // Keep only (a, c): the y-attribute b is never copied out of the store.
        let projected = b.project(fetched, vec![0, 2]);
        let plan = b.finish("Q", projected).unwrap();
        let phys = lower_plan(&plan).unwrap();
        assert!(phys
            .steps()
            .iter()
            .all(|s| !matches!(s.op, PhysOp::Project { .. })));
        let Some(PhysOp::Fetch { positions, .. }) = phys
            .steps()
            .iter()
            .map(|s| &s.op)
            .find(|op| matches!(op, PhysOp::Fetch { .. }))
        else {
            panic!("no fetch");
        };
        assert_eq!(positions, &[0, 2]);
        // The key attribute survives the projection, so no dedup step is needed.
        assert!(phys
            .steps()
            .iter()
            .all(|s| !matches!(s.op, PhysOp::Dedup { .. })));
    }

    #[test]
    fn projection_dropping_keys_requires_dedup() {
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let k2 = b.constant(Value::int(2), "k");
        let keys = b.union(k1, k2);
        let fetched = b.fetch(
            keys,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        // Keep only b: rows fetched under different keys can now collide.
        let projected = b.project(fetched, vec![1]);
        let plan = b.finish("Q", projected).unwrap();
        let phys = lower_plan(&plan).unwrap();
        let Some(PhysOp::Fetch { positions, .. }) = phys
            .steps()
            .iter()
            .map(|s| &s.op)
            .find(|op| matches!(op, PhysOp::Fetch { .. }))
        else {
            panic!("no fetch");
        };
        assert_eq!(positions, &[1]);
        assert!(phys
            .steps()
            .iter()
            .any(|s| matches!(s.op, PhysOp::Dedup { .. })));
    }

    #[test]
    fn rename_and_empty_branches_vanish() {
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "x");
        let e = b.empty(1);
        let u = b.union(k, e);
        let d = b.difference(u, e);
        let r = b.rename(d, vec!["y".into()]);
        let plan = b.finish("Q", r).unwrap();
        let phys = lower_plan(&plan).unwrap();
        // Everything collapses to the constant: one step, already set-valued.
        assert_eq!(phys.len(), 1);
        assert!(matches!(phys.steps()[0].op, PhysOp::Const { .. }));
        // The output keeps the rename's label.
        assert_eq!(phys.steps()[phys.output()].columns, vec!["y".to_owned()]);
    }

    #[test]
    fn injective_projection_eliminates_dedup() {
        let mut b = PlanBuilder::new();
        let x = b.constant(Value::int(1), "x");
        let y = b.constant(Value::int(2), "y");
        let p = b.product(x, y);
        // Swapping columns keeps every input column: injective, no dedup needed.
        let swapped = b.project(p, vec![1, 0]);
        let plan = b.finish("Q", swapped).unwrap();
        let phys = lower_plan(&plan).unwrap();
        assert!(phys
            .steps()
            .iter()
            .all(|s| !matches!(s.op, PhysOp::Dedup { .. })));
        // Dropping a column of a product of singletons is still injective-free but the
        // source is set-valued… dropping makes it non-injective:
        let mut b = PlanBuilder::new();
        let x = b.constant(Value::int(1), "x");
        let y = b.constant(Value::int(2), "y");
        let p = b.product(x, y);
        let dropped = b.project(p, vec![0]);
        let plan = b.finish("Q", dropped).unwrap();
        let phys = lower_plan(&plan).unwrap();
        assert!(phys
            .steps()
            .iter()
            .any(|s| matches!(s.op, PhysOp::Dedup { .. })));
    }

    #[test]
    fn materialization_points_are_shared_nodes_and_output() {
        let plan = keyed_join_plan();
        let phys = lower_plan(&plan).unwrap();
        // Only the output is a breaker here: the union of keys feeds exactly one
        // operator (the fused lookup), so everything streams.
        assert_eq!(phys.materialization_points(), 1);
        assert!(phys.steps()[phys.output()].materialize);
    }

    #[test]
    fn single_pipeline_dag_for_fully_streaming_plan() {
        let phys = lower_plan(&keyed_join_plan()).unwrap();
        let dag = phys.pipeline_dag();
        assert_eq!(dag.len(), 1);
        assert!(!dag.is_empty());
        assert_eq!(dag.pipelines()[0].sink, phys.output());
        assert!(dag.pipelines()[0].sources.is_empty());
        assert!(dag.dependencies(0).is_empty());
        assert!(dag.dependents(0).is_empty());
        assert_eq!(dag.parallel_width(), 1);
    }

    #[test]
    fn shared_fetch_plan_decomposes_into_dependent_pipelines() {
        // The shared-fetch plan has two materialization points: the fetch and the
        // output. The DAG must chain them with an exchange edge.
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let fetched = b.fetch(
            k1,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(k1, fetched);
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        let other = b.project(fetched, vec![1]);
        let out = b.product(sel, other);
        let plan = b.finish("Q", out).unwrap();
        let phys = lower_plan(&plan).unwrap();
        let dag = phys.pipeline_dag();
        // Three breakers: the shared constant, the shared fetch, and the output.
        assert_eq!(dag.len(), 3);
        let const_pipe = &dag.pipelines()[0];
        let fetch_pipe = &dag.pipelines()[1];
        let out_pipe = &dag.pipelines()[2];
        assert!(matches!(
            phys.steps()[const_pipe.sink].op,
            PhysOp::Const { .. }
        ));
        assert!(matches!(
            phys.steps()[fetch_pipe.sink].op,
            PhysOp::Fetch { .. }
        ));
        assert_eq!(out_pipe.sink, phys.output());
        // Exchange edges: the fetch scans the constant; the output scans both.
        assert_eq!(fetch_pipe.sources, vec![const_pipe.sink]);
        assert_eq!(out_pipe.sources, vec![const_pipe.sink, fetch_pipe.sink]);
        assert_eq!(dag.dependencies(1), &[0]);
        assert_eq!(dag.dependencies(2), &[0, 1]);
        assert_eq!(dag.dependents(0), &[1, 2]);
        // A chain has no parallel width.
        assert_eq!(dag.parallel_width(), 1);
    }

    /// A union of two independent keyed-lookup branches — the shape that parallel
    /// execution targets.
    fn union_of_lookups_plan() -> QueryPlan {
        let mut b = PlanBuilder::new();
        let branch = |b: &mut PlanBuilder, key: i64| {
            let k = b.constant(Value::int(key), "k");
            let fetched = b.fetch(
                k,
                vec![0],
                "R",
                vec![0],
                vec![1],
                0,
                vec!["a".into(), "b".into()],
            );
            let prod = b.product(k, fetched);
            b.select(prod, vec![Predicate::ColEqCol(0, 1)])
        };
        let left = branch(&mut b, 1);
        let right = branch(&mut b, 2);
        let u = b.union(left, right);
        b.finish("Q", u).unwrap()
    }

    #[test]
    fn exchange_lowering_widens_the_pipeline_dag() {
        let plan = union_of_lookups_plan();

        // Default lowering: the union streams, one pipeline.
        let streaming = lower_plan(&plan).unwrap();
        assert_eq!(streaming.pipeline_dag().len(), 1);

        // Exchange lowering: each branch becomes an independent pipeline feeding the
        // output pipeline.
        let exchanged =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        assert!(exchanged.validate().is_ok());
        let dag = exchanged.pipeline_dag();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.parallel_width(), 2);
        let out_pipe = dag.pipelines().last().unwrap();
        assert_eq!(out_pipe.sink, exchanged.output());
        assert_eq!(out_pipe.sources.len(), 2);
        assert_eq!(dag.dependencies(2), &[0, 1]);
        // The two branch pipelines are independent: neither depends on the other.
        assert!(dag.dependencies(0).is_empty());
        assert!(dag.dependencies(1).is_empty());
        // Exchange changes only materialization, never the operators themselves.
        let ops = |p: &PhysicalPlan| p.steps().iter().map(|s| s.op.clone()).collect::<Vec<_>>();
        assert_eq!(ops(&streaming), ops(&exchanged));
    }

    #[test]
    fn exchange_lowering_skips_access_free_subtrees() {
        // A union of constants performs no index access: nothing to parallelize, so
        // exchange lowering must not add breakers.
        let mut b = PlanBuilder::new();
        let one = b.constant(Value::int(1), "x");
        let two = b.constant(Value::int(2), "x");
        let u = b.union(one, two);
        let plan = b.finish("Q", u).unwrap();
        let streaming = lower_plan(&plan).unwrap();
        let exchanged =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        assert_eq!(
            streaming.materialization_points(),
            exchanged.materialization_points()
        );
        let options = LowerOptions::new().with_exchange_parallelism(true);
        assert!(options.exchange_parallelism);
        assert!(!LowerOptions::default().exchange_parallelism);
    }

    /// A two-hop lookup chain — `fetch(R, keys)` feeding `fetch(S, ·)` — the
    /// straight-line shape the morsel cut targets.
    fn lookup_chain_plan(project_tail: bool) -> QueryPlan {
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let k2 = b.constant(Value::int(2), "k");
        let keys = b.union(k1, k2);
        let f1 = b.fetch(
            keys,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let p1 = b.product(keys, f1);
        let s1 = b.select(p1, vec![Predicate::ColEqCol(0, 1)]); // [k, a, b]
        let f2 = b.fetch(
            s1,
            vec![2],
            "S",
            vec![0],
            vec![1],
            1,
            vec!["b".into(), "c".into()],
        );
        let p2 = b.product(s1, f2);
        let s2 = b.select(p2, vec![Predicate::ColEqCol(2, 3)]); // [k, a, b, b, c]
        let out = if project_tail {
            b.project(s2, vec![4]) // drop the key columns: forces a dedup at the output
        } else {
            s2
        };
        b.finish("Q", out).unwrap()
    }

    #[test]
    fn exchange_lowering_cuts_lookup_chains_into_morsel_pipelines() {
        let plan = lookup_chain_plan(false);
        let streaming = lower_plan(&plan).unwrap();
        let exchanged =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        // The cut changes only materialization, never the operators.
        let ops = |p: &PhysicalPlan| p.steps().iter().map(|s| s.op.clone()).collect::<Vec<_>>();
        assert_eq!(ops(&streaming), ops(&exchanged));

        // Streaming: one pipeline, no materialized source, so nothing to split.
        let dag = streaming.pipeline_dag();
        assert!(dag.pipelines().iter().all(|p| p.morsel_source.is_none()));

        // Exchanged: the chain's first lookup is cut into its own pipeline, and the
        // second lookup heads a morsel-splittable pipeline reading it.
        let dag = exchanged.pipeline_dag();
        let lookups: Vec<PhysId> = exchanged
            .steps()
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.op, PhysOp::KeyedLookup { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(lookups.len(), 2);
        let (first, second) = (lookups[0], lookups[1]);
        assert!(
            exchanged.steps()[first].materialize,
            "the chain must be cut at the second lookup's source"
        );
        let splittable: Vec<&Pipeline> = dag
            .pipelines()
            .iter()
            .filter(|p| p.morsel_source.is_some())
            .collect();
        assert_eq!(splittable.len(), 1);
        assert_eq!(splittable[0].sink, second);
        assert_eq!(splittable[0].morsel_source, Some(first));
        assert_eq!(splittable[0].sources, vec![first]);
    }

    #[test]
    fn exchange_lowering_cuts_below_the_output_dedup() {
        // Projecting away the key columns forces a dedup at the output; the dedup is
        // order-sensitive, so the cut lands below it and the lookup + projection chain
        // becomes the morsel-splittable pipeline.
        let plan = lookup_chain_plan(true);
        let exchanged =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        assert!(matches!(
            exchanged.steps()[exchanged.output()].op,
            PhysOp::Dedup { .. }
        ));
        let dag = exchanged.pipeline_dag();
        let splittable: Vec<&Pipeline> = dag
            .pipelines()
            .iter()
            .filter(|p| p.morsel_source.is_some())
            .collect();
        assert_eq!(splittable.len(), 1);
        // The splittable pipeline's sink is the projection feeding the dedup, and its
        // region holds the chain's second lookup.
        assert!(matches!(
            exchanged.steps()[splittable[0].sink].op,
            PhysOp::Project { .. }
        ));
        let output_pipe = dag.pipelines().last().unwrap();
        assert_eq!(output_pipe.sink, exchanged.output());
        assert_eq!(output_pipe.sources, vec![splittable[0].sink]);
        assert!(output_pipe.morsel_source.is_none());
    }

    #[test]
    fn sharded_branches_are_morsel_splittable() {
        // Per-shard lookup branches are single-source keyed-lookup regions: each is a
        // morsel-splittable pipeline tagged with its shard.
        let plan = keyed_join_plan();
        let sharded = lower_plan_with(&plan, &LowerOptions::new().with_shard_fanout(4)).unwrap();
        let dag = sharded.pipeline_dag();
        let splittable: Vec<&Pipeline> = dag
            .pipelines()
            .iter()
            .filter(|p| p.morsel_source.is_some())
            .collect();
        assert_eq!(splittable.len(), 4);
        let mut shards: Vec<u32> = splittable.iter().map(|p| p.shard.unwrap()).collect();
        shards.sort_unstable();
        assert_eq!(shards, vec![0, 1, 2, 3]);
        // All four branches read the same materialized key set.
        let sources: BTreeSet<Option<PhysId>> =
            splittable.iter().map(|p| p.morsel_source).collect();
        assert_eq!(sources.len(), 1);
    }

    #[test]
    fn shard_fanout_partitions_keyed_lookups() {
        let plan = keyed_join_plan();
        let unsharded = lower_plan(&plan).unwrap();
        let sharded = lower_plan_with(&plan, &LowerOptions::new().with_shard_fanout(4)).unwrap();
        assert!(sharded.validate().is_ok());

        // One branch per shard, tagged 0..4, each a materialization point.
        let branches: Vec<&PhysStep> = sharded
            .steps()
            .iter()
            .filter(|s| matches!(s.op, PhysOp::KeyedLookup { .. }))
            .collect();
        assert_eq!(branches.len(), 4);
        let mut tags: Vec<u32> = branches
            .iter()
            .map(|s| {
                let PhysOp::KeyedLookup { shard, .. } = &s.op else {
                    unreachable!()
                };
                let route = shard.expect("branches carry a route");
                assert_eq!(route.of, 4);
                assert!(s.materialize, "branches are shard-local pipelines");
                route.shard
            })
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![0, 1, 2, 3]);
        // Three unions merge the four branches.
        let unions = sharded
            .steps()
            .iter()
            .filter(|s| matches!(s.op, PhysOp::Union { .. }))
            .count();
        assert!(unions >= 3);

        // The DAG gains real parallel width: the branch pipelines are independent and
        // tagged with their shard.
        let dag = sharded.pipeline_dag();
        assert!(dag.parallel_width() >= 4, "width {}", dag.parallel_width());
        let mut pipeline_shards: Vec<u32> =
            dag.pipelines().iter().filter_map(|p| p.shard).collect();
        pipeline_shards.sort_unstable();
        assert_eq!(pipeline_shards, vec![0, 1, 2, 3]);

        // A fan-out of 1 (or 0) is the identity.
        for fanout in [0, 1] {
            let same =
                lower_plan_with(&plan, &LowerOptions::new().with_shard_fanout(fanout)).unwrap();
            assert_eq!(same, unsharded);
        }
    }

    #[test]
    fn shard_fanout_absorbs_sole_consumer_projection() {
        // π over the fused lookup: the fan-out must absorb the projection into the
        // branches' emit set so the sharded plan gathers exactly what the unsharded
        // executor's projection fusion would.
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let k2 = b.constant(Value::int(2), "k");
        let keys = b.union(k1, k2);
        let fetched = b.fetch(
            keys,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(keys, fetched);
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        let projected = b.project(sel, vec![2]); // keep only the fetched b column
        let plan = b.finish("Q", projected).unwrap();
        let sharded = lower_plan_with(&plan, &LowerOptions::new().with_shard_fanout(2)).unwrap();
        assert!(sharded.validate().is_ok());
        // No standalone projection survives; both branches emit the projected column.
        assert!(sharded
            .steps()
            .iter()
            .all(|s| !matches!(s.op, PhysOp::Project { .. })));
        let emits: Vec<_> = sharded
            .steps()
            .iter()
            .filter_map(|s| match &s.op {
                PhysOp::KeyedLookup { emit, .. } => Some(emit.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(emits.len(), 2);
        assert!(emits.iter().all(|e| e == &Some(vec![2])));
        let display = sharded.to_string();
        assert!(display.contains("@shard 0/2"));
        assert!(display.contains("@shard 1/2"));
    }

    #[test]
    fn shard_fanout_skips_empty_key_fetches() {
        // An empty-key fetch has exactly one key; a single shard owns it, so there is
        // nothing to fan out and the plan must lower unchanged.
        let mut b = PlanBuilder::new();
        let u = b.unit();
        let fetched = b.fetch(
            u,
            vec![],
            "R",
            vec![],
            vec![0, 1],
            0,
            vec!["a".into(), "b".into()],
        );
        let plan = b.finish("Q", fetched).unwrap();
        let unsharded = lower_plan(&plan).unwrap();
        let sharded = lower_plan_with(&plan, &LowerOptions::new().with_shard_fanout(4)).unwrap();
        assert_eq!(unsharded, sharded);
    }

    #[test]
    fn unit_and_empty_lower_unchanged() {
        let mut b = PlanBuilder::new();
        let u = b.unit();
        let k = b.constant(Value::int(1), "x");
        let p = b.product(u, k);
        let plan = b.finish("Q", p).unwrap();
        let phys = lower_plan(&plan).unwrap();
        assert!(phys.steps().iter().any(|s| matches!(s.op, PhysOp::Unit)));
        assert!(phys
            .steps()
            .iter()
            .any(|s| matches!(s.op, PhysOp::Product { .. })));
        assert!(!phys.is_empty());
        assert_eq!(phys.query_name(), "Q");
    }
}

//! Boundedly evaluable query plans (Section 2 of the paper).
//!
//! A query plan is a sequence `T₁ = δ₁, …, Tₙ = δₙ` where each `δᵢ` is a constant
//! singleton `{a}`, a `fetch(X ∈ Tⱼ, R, Y)` that retrieves tuples through an index, or a
//! relational operation (π, σ, ×, ∪, −, ρ) over earlier results. A plan is *boundedly
//! evaluable under `A`* when every fetch is backed by an access constraint of `A` (so the
//! amount of data it retrieves is bounded by the constraint's cardinality) and the plan
//! length depends only on the query, the schema and `A` — never on the database.
//!
//! * [`QueryPlan`] / [`PlanOp`] — the logical plan IR, validation, cost bounds and
//!   pretty-printing.
//! * [`synthesis`] — construction of a boundedly evaluable plan from a coverage witness,
//!   which is the constructive half of Theorem 3.11 ("covered ⇒ boundedly evaluable").
//! * [`physical`] — rule-based lowering of logical plans into streaming
//!   [`physical::PhysicalPlan`]s (keyed-lookup fusion, projection pushdown, dedup
//!   elimination, explicit materialization points).
//! * [`ticket`] — admission-control [`ticket::CostTicket`]s: the fetch bound,
//!   pipeline shape and per-probe allocation surface of a lowered plan, priced
//!   before execution.
//!
//! Plans are executed against indexed data by `bea-engine`.

pub mod physical;
pub mod synthesis;
pub mod ticket;

pub use physical::{
    keys_all_tied, lower_plan, lower_plan_with, residual_predicates, LowerOptions, PhysOp,
    PhysStep, PhysicalPlan, Pipeline, PipelineDag, ShardRoute,
};
pub use synthesis::{bounded_plan, bounded_plan_for_report, bounded_plan_ucq};
pub use ticket::{CostTicket, PipelineCost};

use crate::access::AccessSchema;
use crate::error::{Error, Result};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an intermediate result (`Tᵢ`) within a plan: its step index.
pub type NodeId = usize;

/// A selection predicate over the columns of an intermediate result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// The values in two columns must be equal.
    ColEqCol(usize, usize),
    /// The value in a column must equal a constant.
    ColEqConst(usize, Value),
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::ColEqCol(a, b) => write!(f, "#{a} = #{b}"),
            Predicate::ColEqConst(a, c) => write!(f, "#{a} = {c}"),
        }
    }
}

/// One plan operation (`δᵢ`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanOp {
    /// `{a}`: a single-row, single-column table holding a constant of the query.
    Const {
        /// The constant.
        value: Value,
    },
    /// A single row of arity 0 (the neutral element for ×); used to seed plans.
    Unit,
    /// The empty relation with the given arity (used for `A`-unsatisfiable queries).
    Empty {
        /// Number of columns.
        arity: usize,
    },
    /// `fetch(X ∈ Tⱼ, R, X ∪ Y)`: for every row of `source`, read the values of
    /// `key_cols` as an `X`-value and retrieve the matching `X ∪ Y` projections of `R`
    /// through the index of the backing access constraint.
    Fetch {
        /// The node supplying the key values.
        source: NodeId,
        /// Columns of `source` holding the key, aligned with `x_attrs`.
        key_cols: Vec<usize>,
        /// The relation fetched from.
        relation: String,
        /// Attribute positions of `R` forming the index key `X` (sorted).
        x_attrs: Vec<usize>,
        /// Attribute positions of `R` retrieved through the index (sorted, disjoint from
        /// `x_attrs`). The output columns of the fetch are `x_attrs ++ y_attrs`.
        y_attrs: Vec<usize>,
        /// Index of the access constraint backing this fetch in the access schema.
        constraint_index: usize,
    },
    /// Projection onto the given columns (in the given order; may repeat columns).
    Project {
        /// Input node.
        source: NodeId,
        /// Columns to keep.
        cols: Vec<usize>,
    },
    /// Selection by a conjunction of predicates.
    Select {
        /// Input node.
        source: NodeId,
        /// Conjunction of predicates.
        predicates: Vec<Predicate>,
    },
    /// Cartesian product; the right operand's columns are appended to the left's.
    Product {
        /// Left input.
        left: NodeId,
        /// Right input.
        right: NodeId,
    },
    /// Set union (operands must have equal arity).
    Union {
        /// Left input.
        left: NodeId,
        /// Right input.
        right: NodeId,
    },
    /// Set difference (operands must have equal arity).
    Difference {
        /// Left input.
        left: NodeId,
        /// Right input.
        right: NodeId,
    },
    /// Renaming; semantically the identity, kept for completeness of the plan algebra.
    Rename {
        /// Input node.
        source: NodeId,
    },
}

/// One plan step: an operation plus human-readable column labels for its result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStep {
    /// The operation producing this step's result.
    pub op: PlanOp,
    /// Labels of the result columns (variable names, attribute names or constants).
    pub columns: Vec<String>,
}

/// A query plan: a sequence of steps and the index of the output step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    query_name: String,
    steps: Vec<PlanStep>,
    output: NodeId,
}

/// Worst-case cost bounds of a plan, derived from the access schema only (Section 2:
/// the cost of a boundedly evaluable plan is independent of `|D|`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCost {
    /// Upper bound on the number of tuples fetched from the database.
    pub max_fetched_tuples: u64,
    /// Upper bound on the number of rows in the plan's output.
    pub max_output_rows: u64,
    /// Number of fetch operations in the plan.
    pub fetch_ops: usize,
    /// Total number of plan operations.
    pub total_ops: usize,
}

impl QueryPlan {
    /// Build a plan from its steps; validates structural well-formedness.
    pub fn new(
        query_name: impl Into<String>,
        steps: Vec<PlanStep>,
        output: NodeId,
    ) -> Result<Self> {
        let plan = Self {
            query_name: query_name.into(),
            steps,
            output,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// The name of the query this plan answers.
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// The plan steps in evaluation order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// The output node.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// The arity (number of columns) of a node's result.
    pub fn arity_of(&self, node: NodeId) -> usize {
        self.steps[node].columns.len()
    }

    /// The output arity of the plan.
    pub fn output_arity(&self) -> usize {
        self.arity_of(self.output)
    }

    /// Number of operations in the plan (the paper's plan length `n`).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the plan has no steps (never the case for well-formed plans).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Structural validation: every referenced node is an earlier step, columns are in
    /// range, and arities agree for union/difference.
    pub fn validate(&self) -> Result<()> {
        if self.steps.is_empty() {
            return Err(Error::InvalidPlan {
                reason: "plan has no steps".into(),
            });
        }
        if self.output >= self.steps.len() {
            return Err(Error::InvalidPlan {
                reason: format!("output node {} is out of range", self.output),
            });
        }
        for (i, step) in self.steps.iter().enumerate() {
            let check_source = |j: NodeId, what: &str| -> Result<()> {
                if j >= i {
                    return Err(Error::InvalidPlan {
                        reason: format!(
                            "step {i} references {what} {j}, which is not an earlier step"
                        ),
                    });
                }
                Ok(())
            };
            let arity = |j: NodeId| self.steps[j].columns.len();
            match &step.op {
                PlanOp::Const { .. } => {
                    if step.columns.len() != 1 {
                        return Err(Error::InvalidPlan {
                            reason: format!("constant step {i} must have exactly one column"),
                        });
                    }
                }
                PlanOp::Unit => {
                    if !step.columns.is_empty() {
                        return Err(Error::InvalidPlan {
                            reason: format!("unit step {i} must have no columns"),
                        });
                    }
                }
                PlanOp::Empty { arity: a } => {
                    if step.columns.len() != *a {
                        return Err(Error::InvalidPlan {
                            reason: format!(
                                "empty step {i} declares arity {a} but has {} labels",
                                step.columns.len()
                            ),
                        });
                    }
                }
                PlanOp::Fetch {
                    source,
                    key_cols,
                    x_attrs,
                    y_attrs,
                    ..
                } => {
                    check_source(*source, "fetch source")?;
                    if key_cols.len() != x_attrs.len() {
                        return Err(Error::InvalidPlan {
                            reason: format!(
                                "fetch step {i} has {} key columns for {} key attributes",
                                key_cols.len(),
                                x_attrs.len()
                            ),
                        });
                    }
                    if key_cols.iter().any(|&c| c >= arity(*source)) {
                        return Err(Error::InvalidPlan {
                            reason: format!("fetch step {i} references a key column out of range"),
                        });
                    }
                    if step.columns.len() != x_attrs.len() + y_attrs.len() {
                        return Err(Error::InvalidPlan {
                            reason: format!("fetch step {i} must output |X| + |Y| columns"),
                        });
                    }
                }
                PlanOp::Project { source, cols } => {
                    check_source(*source, "projection source")?;
                    if cols.iter().any(|&c| c >= arity(*source)) {
                        return Err(Error::InvalidPlan {
                            reason: format!("projection step {i} references a column out of range"),
                        });
                    }
                    if step.columns.len() != cols.len() {
                        return Err(Error::InvalidPlan {
                            reason: format!("projection step {i} has mismatched column labels"),
                        });
                    }
                }
                PlanOp::Select { source, predicates } => {
                    check_source(*source, "selection source")?;
                    let a = arity(*source);
                    for p in predicates {
                        let ok = match p {
                            Predicate::ColEqCol(x, y) => *x < a && *y < a,
                            Predicate::ColEqConst(x, _) => *x < a,
                        };
                        if !ok {
                            return Err(Error::InvalidPlan {
                                reason: format!(
                                    "selection step {i} references a column out of range"
                                ),
                            });
                        }
                    }
                    if step.columns.len() != a {
                        return Err(Error::InvalidPlan {
                            reason: format!("selection step {i} must keep its source arity"),
                        });
                    }
                }
                PlanOp::Product { left, right } => {
                    check_source(*left, "product operand")?;
                    check_source(*right, "product operand")?;
                    if step.columns.len() != arity(*left) + arity(*right) {
                        return Err(Error::InvalidPlan {
                            reason: format!("product step {i} has mismatched column labels"),
                        });
                    }
                }
                PlanOp::Union { left, right } | PlanOp::Difference { left, right } => {
                    check_source(*left, "operand")?;
                    check_source(*right, "operand")?;
                    if arity(*left) != arity(*right) {
                        return Err(Error::InvalidPlan {
                            reason: format!("step {i} combines operands of different arity"),
                        });
                    }
                    if step.columns.len() != arity(*left) {
                        return Err(Error::InvalidPlan {
                            reason: format!("step {i} has mismatched column labels"),
                        });
                    }
                }
                PlanOp::Rename { source } => {
                    check_source(*source, "rename source")?;
                    if step.columns.len() != arity(*source) {
                        return Err(Error::InvalidPlan {
                            reason: format!("rename step {i} must keep its source arity"),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Is this plan boundedly evaluable under the access schema?
    ///
    /// Checks the fetch condition of Section 2: every `fetch(X ∈ T, R, Y)` must be backed
    /// by a constraint `R(X → Y′, N)` of `A` with `Y ⊆ X ∪ Y′`. (The length condition is
    /// trivially met: plans are built from the query and schema without reference to any
    /// database.)
    pub fn is_bounded_under(&self, schema: &AccessSchema) -> bool {
        self.steps.iter().all(|step| match &step.op {
            PlanOp::Fetch {
                relation,
                x_attrs,
                y_attrs,
                constraint_index,
                ..
            } => match schema.constraint(*constraint_index) {
                Some(c) => {
                    let xy = c.xy();
                    c.relation() == relation
                        && x_attrs == c.x()
                        && y_attrs.iter().all(|p| xy.contains(p))
                }
                None => false,
            },
            _ => true,
        })
    }

    /// Worst-case cost bounds under the access schema, for a database of `db_size` tuples
    /// (`db_size` only matters for general, sublinear constraints).
    pub fn cost(&self, schema: &AccessSchema, db_size: u64) -> PlanCost {
        let mut row_bounds: Vec<u64> = Vec::with_capacity(self.steps.len());
        let mut fetched: u64 = 0;
        let mut fetch_ops = 0usize;
        for step in &self.steps {
            let bound = match &step.op {
                PlanOp::Const { .. } | PlanOp::Unit => 1,
                PlanOp::Empty { .. } => 0,
                PlanOp::Fetch {
                    source,
                    constraint_index,
                    ..
                } => {
                    fetch_ops += 1;
                    let per_key = schema
                        .constraint(*constraint_index)
                        .map(|c| c.cardinality().bound(db_size))
                        .unwrap_or(u64::MAX);
                    let keys = row_bounds[*source];
                    let total = keys.saturating_mul(per_key);
                    fetched = fetched.saturating_add(total);
                    total
                }
                PlanOp::Project { source, .. } | PlanOp::Rename { source } => row_bounds[*source],
                PlanOp::Select { source, predicates } => {
                    // Keyed-join pattern emitted by plan synthesis: σ over
                    // `T × fetch(X ∈ T, R, …)` with equality predicates on all key
                    // columns. Each row of `T` matches at most `N` fetched rows (those
                    // sharing its key), so the bound is |T| · N rather than the generic
                    // |T| · |fetch| product bound.
                    let keyed_join = match &self.steps[*source].op {
                        PlanOp::Product { left, right } => match &self.steps[*right].op {
                            PlanOp::Fetch {
                                source: fetch_source,
                                key_cols,
                                constraint_index,
                                ..
                            } if fetch_source == left => {
                                let left_arity = self.steps[*left].columns.len();
                                let all_keys_tied = key_cols.iter().enumerate().all(|(i, &kc)| {
                                    predicates.contains(&Predicate::ColEqCol(kc, left_arity + i))
                                });
                                if all_keys_tied {
                                    let per_key = schema
                                        .constraint(*constraint_index)
                                        .map(|c| c.cardinality().bound(db_size))
                                        .unwrap_or(u64::MAX);
                                    Some(row_bounds[*left].saturating_mul(per_key))
                                } else {
                                    None
                                }
                            }
                            _ => None,
                        },
                        _ => None,
                    };
                    keyed_join.unwrap_or(row_bounds[*source])
                }
                PlanOp::Product { left, right } => {
                    row_bounds[*left].saturating_mul(row_bounds[*right])
                }
                PlanOp::Union { left, right } => {
                    row_bounds[*left].saturating_add(row_bounds[*right])
                }
                PlanOp::Difference { left, .. } => row_bounds[*left],
            };
            row_bounds.push(bound);
        }
        PlanCost {
            max_fetched_tuples: fetched,
            max_output_rows: row_bounds[self.output],
            fetch_ops,
            total_ops: self.steps.len(),
        }
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan for {}:", self.query_name)?;
        for (i, step) in self.steps.iter().enumerate() {
            let marker = if i == self.output { " (output)" } else { "" };
            let cols = step.columns.join(", ");
            match &step.op {
                PlanOp::Const { value } => writeln!(f, "  T{i} = {{{value}}}{marker} [{cols}]")?,
                PlanOp::Unit => writeln!(f, "  T{i} = {{()}}{marker}")?,
                PlanOp::Empty { arity } => writeln!(f, "  T{i} = ∅/{arity}{marker}")?,
                PlanOp::Fetch {
                    source,
                    key_cols,
                    relation,
                    x_attrs,
                    y_attrs,
                    constraint_index,
                } => writeln!(
                    f,
                    "  T{i} = fetch(X ∈ π{key_cols:?}(T{source}), {relation}, X{x_attrs:?} ∪ Y{y_attrs:?}) via φ{constraint_index}{marker} [{cols}]"
                )?,
                PlanOp::Project { source, cols: c } => {
                    writeln!(f, "  T{i} = π{c:?}(T{source}){marker} [{cols}]")?
                }
                PlanOp::Select { source, predicates } => {
                    let preds = predicates
                        .iter()
                        .map(Predicate::to_string)
                        .collect::<Vec<_>>()
                        .join(" ∧ ");
                    writeln!(f, "  T{i} = σ[{preds}](T{source}){marker} [{cols}]")?
                }
                PlanOp::Product { left, right } => {
                    writeln!(f, "  T{i} = T{left} × T{right}{marker} [{cols}]")?
                }
                PlanOp::Union { left, right } => {
                    writeln!(f, "  T{i} = T{left} ∪ T{right}{marker} [{cols}]")?
                }
                PlanOp::Difference { left, right } => {
                    writeln!(f, "  T{i} = T{left} − T{right}{marker} [{cols}]")?
                }
                PlanOp::Rename { source } => {
                    writeln!(f, "  T{i} = ρ(T{source}){marker} [{cols}]")?
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder used by plan synthesis.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    steps: Vec<PlanStep>,
}

impl PlanBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: PlanOp, columns: Vec<String>) -> NodeId {
        self.steps.push(PlanStep { op, columns });
        self.steps.len() - 1
    }

    /// Column labels of a node.
    pub fn columns(&self, node: NodeId) -> &[String] {
        &self.steps[node].columns
    }

    /// Add a constant singleton `{a}`.
    pub fn constant(&mut self, value: Value, label: impl Into<String>) -> NodeId {
        self.push(PlanOp::Const { value }, vec![label.into()])
    }

    /// Add the unit table (one empty row).
    pub fn unit(&mut self) -> NodeId {
        self.push(PlanOp::Unit, Vec::new())
    }

    /// Add an empty table of the given arity.
    pub fn empty(&mut self, arity: usize) -> NodeId {
        self.push(PlanOp::Empty { arity }, vec!["∅".to_owned(); arity])
    }

    /// Add a fetch node; `labels` must cover the `|X| + |Y|` output columns.
    #[allow(clippy::too_many_arguments)]
    pub fn fetch(
        &mut self,
        source: NodeId,
        key_cols: Vec<usize>,
        relation: impl Into<String>,
        x_attrs: Vec<usize>,
        y_attrs: Vec<usize>,
        constraint_index: usize,
        labels: Vec<String>,
    ) -> NodeId {
        self.push(
            PlanOp::Fetch {
                source,
                key_cols,
                relation: relation.into(),
                x_attrs,
                y_attrs,
                constraint_index,
            },
            labels,
        )
    }

    /// Add a projection node.
    pub fn project(&mut self, source: NodeId, cols: Vec<usize>) -> NodeId {
        let labels = cols
            .iter()
            .map(|&c| self.steps[source].columns[c].clone())
            .collect();
        self.push(PlanOp::Project { source, cols }, labels)
    }

    /// Add a selection node (no-op when `predicates` is empty).
    pub fn select(&mut self, source: NodeId, predicates: Vec<Predicate>) -> NodeId {
        if predicates.is_empty() {
            return source;
        }
        let labels = self.steps[source].columns.clone();
        self.push(PlanOp::Select { source, predicates }, labels)
    }

    /// Add a product node.
    pub fn product(&mut self, left: NodeId, right: NodeId) -> NodeId {
        let mut labels = self.steps[left].columns.clone();
        labels.extend(self.steps[right].columns.iter().cloned());
        self.push(PlanOp::Product { left, right }, labels)
    }

    /// Add a union node.
    pub fn union(&mut self, left: NodeId, right: NodeId) -> NodeId {
        let labels = self.steps[left].columns.clone();
        self.push(PlanOp::Union { left, right }, labels)
    }

    /// Add a difference node.
    pub fn difference(&mut self, left: NodeId, right: NodeId) -> NodeId {
        let labels = self.steps[left].columns.clone();
        self.push(PlanOp::Difference { left, right }, labels)
    }

    /// Add a rename node.
    pub fn rename(&mut self, source: NodeId, labels: Vec<String>) -> NodeId {
        self.push(PlanOp::Rename { source }, labels)
    }

    /// Finish the plan with the given output node.
    pub fn finish(self, query_name: impl Into<String>, output: NodeId) -> Result<QueryPlan> {
        QueryPlan::new(query_name, self.steps, output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::schema::Catalog;

    fn schema() -> (Catalog, AccessSchema) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let a =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap()
            ]);
        (c, a)
    }

    fn simple_plan() -> QueryPlan {
        // {1} ; fetch(a ∈ T0, R, {a,b}) ; σ ; π
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "x");
        let f = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let s = b.select(f, vec![Predicate::ColEqConst(0, Value::int(1))]);
        let p = b.project(s, vec![1]);
        b.finish("Q", p).unwrap()
    }

    #[test]
    fn build_and_validate() {
        let plan = simple_plan();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.output_arity(), 1);
        assert_eq!(plan.query_name(), "Q");
        assert!(!plan.is_empty());
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn bounded_under_matching_schema() {
        let (_, a) = schema();
        let plan = simple_plan();
        assert!(plan.is_bounded_under(&a));

        // A schema whose only constraint is on a different key does not back the fetch.
        let mut c2 = Catalog::new();
        c2.declare("R", ["a", "b"]).unwrap();
        let other =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c2, "R", &["b"], &["a"], 10).unwrap()
            ]);
        assert!(!plan.is_bounded_under(&other));
        assert!(!plan.is_bounded_under(&AccessSchema::new()));
    }

    #[test]
    fn cost_bounds_are_database_independent() {
        let (_, a) = schema();
        let plan = simple_plan();
        let cost_small = plan.cost(&a, 1_000);
        let cost_big = plan.cost(&a, 1_000_000_000);
        assert_eq!(cost_small, cost_big);
        assert_eq!(cost_small.fetch_ops, 1);
        assert_eq!(cost_small.max_fetched_tuples, 10);
        assert_eq!(cost_small.max_output_rows, 10);
        assert_eq!(cost_small.total_ops, 4);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        // Forward reference.
        let steps = vec![PlanStep {
            op: PlanOp::Project {
                source: 0,
                cols: vec![0],
            },
            columns: vec!["x".into()],
        }];
        assert!(QueryPlan::new("Q", steps, 0).is_err());

        // Output out of range.
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "x");
        let plan = b.finish("Q", k + 5);
        assert!(plan.is_err());

        // Union of mismatched arities.
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "x");
        let u = b.unit();
        let steps = vec![
            PlanStep {
                op: PlanOp::Const {
                    value: Value::int(1),
                },
                columns: vec!["x".into()],
            },
            PlanStep {
                op: PlanOp::Unit,
                columns: vec![],
            },
            PlanStep {
                op: PlanOp::Union { left: 0, right: 1 },
                columns: vec!["x".into()],
            },
        ];
        assert!(QueryPlan::new("Q", steps, 2).is_err());
        let _ = (k, u);
    }

    #[test]
    fn empty_and_unit_nodes() {
        let mut b = PlanBuilder::new();
        let e = b.empty(2);
        let plan = b.finish("Q", e).unwrap();
        assert_eq!(plan.output_arity(), 2);
        let (_, a) = schema();
        let cost = plan.cost(&a, 100);
        assert_eq!(cost.max_output_rows, 0);
        assert_eq!(cost.max_fetched_tuples, 0);
    }

    #[test]
    fn product_union_difference_rename_costs() {
        let (_, a) = schema();
        let mut b = PlanBuilder::new();
        let x = b.constant(Value::int(1), "x");
        let y = b.constant(Value::int(2), "y");
        let p = b.product(x, y);
        let q = b.project(p, vec![0]);
        let u = b.union(q, x);
        let d = b.difference(u, x);
        let r = b.rename(d, vec!["z".into()]);
        let plan = b.finish("Q", r).unwrap();
        let cost = plan.cost(&a, 10);
        assert_eq!(cost.max_output_rows, 2); // 1×1 → 1; union 1+1 = 2; difference/renames keep 2
        assert_eq!(cost.fetch_ops, 0);
        assert!(plan.is_bounded_under(&a));
        let display = plan.to_string();
        assert!(display.contains("×"));
        assert!(display.contains("∪"));
        assert!(display.contains("−"));
        assert!(display.contains("ρ"));
    }

    #[test]
    fn display_contains_fetch_and_output_marker() {
        let plan = simple_plan();
        let s = plan.to_string();
        assert!(s.contains("fetch"));
        assert!(s.contains("(output)"));
        assert!(s.contains("plan for Q"));
        assert!(Predicate::ColEqCol(0, 1).to_string().contains("#0 = #1"));
    }

    #[test]
    fn select_with_no_predicates_is_a_no_op() {
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "x");
        let s = b.select(k, vec![]);
        assert_eq!(s, k);
    }
}

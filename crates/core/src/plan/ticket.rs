//! Cost tickets: the admission-control summary of a lowered plan.
//!
//! The paper's central property — a boundedly evaluable plan's worst-case data access
//! is known *before* execution, from the plan and the access schema alone — is exactly
//! the primitive a multi-query server needs: every submitted query presents a
//! [`CostTicket`] naming its fetch bound, and an admission controller can give hard
//! aggregate guarantees ("the queries running right now fetch at most B tuples
//! between them") by simple arithmetic on tickets, with no runtime measurement and no
//! trust in the client.
//!
//! A ticket is derived once per submission from the logical plan (the fetch bound, via
//! [`super::QueryPlan::cost`]) and its lowering (the pipeline decomposition, parallel
//! width, and the per-pipeline **allocation surface**). The allocation surface mirrors
//! the engine's buffer-pool sizing rule — every fetch-shaped physical step demands one
//! buffer per fetched position plus the key row and the selection vector — so a
//! controller can also veto plans that would allocate on the per-probe hot path
//! beyond a configured surface, before the first probe runs.

use super::physical::{PhysOp, PhysicalPlan};
use super::{AccessSchema, QueryPlan};

/// Per-fetch-step buffer demand: one buffer per fetched position, plus the key row
/// and the selection vector. The same formula the engine's executor uses to size its
/// per-worker buffer pools, so the ticket's surface and the runtime's demand agree.
fn step_surface(op: &PhysOp) -> u64 {
    match op {
        PhysOp::Fetch { positions, .. } | PhysOp::KeyedLookup { positions, .. } => {
            positions.len() as u64 + 2
        }
        _ => 0,
    }
}

/// The cost summary of one pipeline of the lowered plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineCost {
    /// The physical step this pipeline materializes.
    pub sink: usize,
    /// The shard this pipeline's region probes, when shard-local.
    pub shard: Option<u32>,
    /// Fetch-shaped steps (fetches and keyed lookups) in the pipeline's region.
    pub fetch_steps: usize,
    /// The pipeline's worst-case simultaneous buffer demand on the probe path.
    pub alloc_surface: u64,
    /// Whether the scheduler may cut this pipeline into concurrent morsels.
    pub splittable: bool,
}

/// The admission-control summary of one lowered query: everything a controller needs
/// to accept, queue or reject the query before it executes. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostTicket {
    /// The query this ticket prices.
    pub query_name: String,
    /// Worst-case tuples fetched from the store, from [`QueryPlan::cost`] — the
    /// quantity aggregate fetch budgets are charged against.
    pub fetch_bound: u64,
    /// Worst-case rows in the query's answer.
    pub max_output_rows: u64,
    /// Fetch operations in the logical plan.
    pub fetch_ops: usize,
    /// Pipelines in the lowered plan's DAG — the query's job count before splitting.
    pub pipelines: usize,
    /// Maximum pipelines runnable concurrently (the DAG's level width).
    pub parallel_width: usize,
    /// Total per-probe buffer demand across all pipelines (the sum of the
    /// per-pipeline surfaces). Admission can veto plans whose surface exceeds a
    /// configured cap — plans that would allocate on the hot path.
    pub alloc_surface: u64,
    /// Per-pipeline breakdown, in the DAG's topological order.
    pub per_pipeline: Vec<PipelineCost>,
}

impl CostTicket {
    /// Price `plan` (lowered to `physical`) under `schema` for a database of
    /// `db_size` tuples. The fetch bound comes from the logical cost model; the
    /// pipeline shape and allocation surfaces come from the lowering.
    pub fn derive(
        plan: &QueryPlan,
        schema: &AccessSchema,
        db_size: u64,
        physical: &PhysicalPlan,
    ) -> Self {
        let cost = plan.cost(schema, db_size);
        let dag = physical.pipeline_dag();
        let per_pipeline: Vec<PipelineCost> = dag
            .pipelines()
            .iter()
            .map(|pipeline| {
                let region = physical.region_steps(pipeline.sink);
                let ops = region.iter().map(|&j| &physical.steps()[j].op);
                PipelineCost {
                    sink: pipeline.sink,
                    shard: pipeline.shard,
                    fetch_steps: ops
                        .clone()
                        .filter(|op| {
                            matches!(op, PhysOp::Fetch { .. } | PhysOp::KeyedLookup { .. })
                        })
                        .count(),
                    alloc_surface: ops.map(step_surface).sum(),
                    splittable: pipeline.morsel_source.is_some(),
                }
            })
            .collect();
        CostTicket {
            query_name: plan.query_name().to_owned(),
            fetch_bound: cost.max_fetched_tuples,
            max_output_rows: cost.max_output_rows,
            fetch_ops: cost.fetch_ops,
            pipelines: dag.len(),
            parallel_width: dag.parallel_width(),
            alloc_surface: per_pipeline.iter().map(|p| p.alloc_surface).sum(),
            per_pipeline,
        }
    }
}

impl std::fmt::Display for CostTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: fetch_bound={} max_output_rows={} fetch_ops={} pipelines={} width={} \
             alloc_surface={}",
            self.query_name,
            self.fetch_bound,
            self.max_output_rows,
            self.fetch_ops,
            self.pipelines,
            self.parallel_width,
            self.alloc_surface
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::plan::{lower_plan, lower_plan_with, LowerOptions, PlanBuilder, Predicate};
    use crate::schema::Catalog;
    use crate::value::Value;

    fn setup() -> (Catalog, AccessSchema) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap()
            ]);
        (c, schema)
    }

    /// A union of keyed-lookup branches anchored at `keys` — the canonical
    /// multi-pipeline shape.
    fn union_of_lookups(keys: &[i64]) -> QueryPlan {
        let mut b = PlanBuilder::new();
        let branch = |b: &mut PlanBuilder, key: i64| {
            let k = b.constant(Value::int(key), "k");
            let fetched = b.fetch(
                k,
                vec![0],
                "R",
                vec![0],
                vec![1],
                0,
                vec!["a".into(), "b".into()],
            );
            let prod = b.product(k, fetched);
            b.select(prod, vec![Predicate::ColEqCol(0, 1)])
        };
        let mut acc = branch(&mut b, keys[0]);
        for &key in &keys[1..] {
            let next = branch(&mut b, key);
            acc = b.union(acc, next);
        }
        b.finish("Q", acc).unwrap()
    }

    #[test]
    fn ticket_matches_the_cost_model_and_the_dag() {
        let (_, schema) = setup();
        let plan = union_of_lookups(&[1, 2, 3]);
        let physical =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        let ticket = CostTicket::derive(&plan, &schema, 1_000, &physical);

        let cost = plan.cost(&schema, 1_000);
        assert_eq!(ticket.query_name, "Q");
        assert_eq!(ticket.fetch_bound, cost.max_fetched_tuples);
        assert_eq!(ticket.fetch_bound, 30, "3 anchors × bound 10");
        assert_eq!(ticket.max_output_rows, cost.max_output_rows);
        assert_eq!(ticket.fetch_ops, 3);

        let dag = physical.pipeline_dag();
        assert_eq!(ticket.pipelines, dag.len());
        assert_eq!(ticket.parallel_width, dag.parallel_width());
        assert!(ticket.parallel_width >= 3);
        assert_eq!(ticket.per_pipeline.len(), dag.len());
        // Each branch pipeline carries one keyed lookup over 2 positions: surface 4.
        let branch_surfaces: Vec<u64> = ticket
            .per_pipeline
            .iter()
            .filter(|p| p.fetch_steps > 0)
            .map(|p| p.alloc_surface)
            .collect();
        assert_eq!(branch_surfaces, vec![4, 4, 4]);
        assert_eq!(ticket.alloc_surface, 12);
    }

    #[test]
    fn fetch_free_plans_have_zero_surface_and_bound() {
        let (_, schema) = setup();
        let mut b = PlanBuilder::new();
        let one = b.constant(Value::int(1), "x");
        let two = b.constant(Value::int(2), "x");
        let u = b.union(one, two);
        let plan = b.finish("C", u).unwrap();
        let physical = lower_plan(&plan).unwrap();
        let ticket = CostTicket::derive(&plan, &schema, 10, &physical);
        assert_eq!(ticket.fetch_bound, 0);
        assert_eq!(ticket.alloc_surface, 0);
        assert_eq!(ticket.fetch_ops, 0);
        assert!(ticket.pipelines >= 1);
        assert!(ticket.per_pipeline.iter().all(|p| p.fetch_steps == 0));
    }

    #[test]
    fn ticket_display_names_the_budgeted_quantities() {
        let (_, schema) = setup();
        let plan = union_of_lookups(&[1]);
        let physical = lower_plan(&plan).unwrap();
        let ticket = CostTicket::derive(&plan, &schema, 100, &physical);
        let line = ticket.to_string();
        assert!(line.contains("fetch_bound=10"));
        assert!(line.contains("alloc_surface="));
        assert!(line.starts_with("Q:"));
    }
}

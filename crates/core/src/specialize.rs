//! Bounded query specialization (QSP, Section 5).
//!
//! A parameterized query `Q` with parameter set `X` (price ranges in e-commerce, the
//! "me" of a personalized search, …) may fail to be boundedly evaluable while its
//! *specializations* `Q(x̄ = c̄)` — obtained by instantiating a tuple `x̄` of parameters
//! with user-supplied constants — are. QSP asks for a tuple of at most `k` parameters
//! whose instantiation makes the specialized query covered **for every valuation**.
//!
//! Coverage is a *generic* property of the instantiation: instantiating a parameter adds
//! an `x = c` equality atom, turning `x` into a constant variable, and the covered-query
//! conditions only look at which variables are constants — not at their values. The
//! search therefore instantiates parameters with pairwise distinct labelled nulls (the
//! least-merging valuation) and checks coverage of the resulting template. In addition,
//! QSP requires at least one valuation to yield an `A`-satisfiable specialization, which
//! (per the lemma used in the proof of Theorem 5.3) follows from `A`-satisfiability of
//! the query itself.
//!
//! Proposition 5.4's syntactic guarantee is also provided: when `A` *covers* the
//! relational schema ([`crate::access::AccessSchema::covers_catalog`]) every fully
//! parameterized FO query can be boundedly specialized.

use crate::access::AccessSchema;
use crate::cover::{coverage, ucq_coverage, CoverageReport};
use crate::error::{Error, Result};
use crate::query::cq::ConjunctiveQuery;
use crate::query::fo::FirstOrderQuery;
use crate::query::term::Var;
use crate::query::ucq::UnionQuery;
use crate::reason::satisfiability::{is_a_satisfiable, is_ucq_a_satisfiable};
use crate::reason::ReasonConfig;
use crate::schema::Catalog;
use crate::value::Value;

/// Configuration of the specialization search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpecializeConfig {
    /// Configuration of the reasoning sub-procedures.
    pub reason: ReasonConfig,
}

/// A successful bounded specialization of a conjunctive query.
#[derive(Debug, Clone, PartialEq)]
pub struct Specialization {
    /// The chosen parameters `x̄` (a minimum-size tuple).
    pub parameters: Vec<Var>,
    /// The display names of the chosen parameters.
    pub parameter_names: Vec<String>,
    /// The specialized template `Q(x̄ = ⊥̄)` with the parameters bound to generic
    /// placeholder constants; instantiate it with [`instantiate`] for concrete values.
    pub template: ConjunctiveQuery,
    /// Coverage report of the template (identical, up to constants, for every valuation).
    pub report: CoverageReport,
}

/// Instantiate a query's parameters with concrete values: `Q(x̄ = c̄)`.
///
/// `bindings` pairs parameter *names* with values; every name must be a declared
/// parameter of the query.
pub fn instantiate(
    query: &ConjunctiveQuery,
    bindings: &[(&str, Value)],
) -> Result<ConjunctiveQuery> {
    let mut resolved = Vec::with_capacity(bindings.len());
    for (name, value) in bindings {
        let var = query
            .var_by_name(name)
            .filter(|v| query.params().contains(v))
            .ok_or_else(|| Error::UnknownParameter {
                parameter: (*name).to_owned(),
            })?;
        resolved.push((var, value.clone()));
    }
    query
        .with_const_equalities(&resolved)
        .map(|q| q.with_name(format!("{}_spec", query.name())))
}

/// The generic specialization template for a chosen parameter tuple: each parameter is
/// bound to a distinct labelled null standing for "an arbitrary user-supplied constant".
pub fn generic_template(query: &ConjunctiveQuery, parameters: &[Var]) -> Result<ConjunctiveQuery> {
    let bindings: Vec<(Var, Value)> = parameters
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, Value::Labelled(u32::MAX - i as u32)))
        .collect();
    query
        .with_const_equalities(&bindings)
        .map(|q| q.with_name(format!("{}_template", query.name())))
}

/// Decide QSP for a conjunctive query: find a minimum tuple of at most `k` parameters
/// whose instantiation makes the query covered for every valuation.
///
/// Returns `Ok(None)` when no such tuple of size ≤ `k` exists (within the declared
/// parameter set `X` of the query).
pub fn specialize_cq(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    k: usize,
    config: &SpecializeConfig,
) -> Result<Option<Specialization>> {
    let params: Vec<Var> = query.params().iter().copied().collect();
    // Condition (b) of bounded specialization: some valuation must yield an
    // A-satisfiable specialization; by genericity this follows from A-satisfiability of
    // the query itself.
    if is_a_satisfiable(query, schema, &config.reason)?.is_none() {
        return Ok(None);
    }
    let max_size = k.min(params.len());
    for size in 0..=max_size {
        let mut chosen: Option<Vec<Var>> = None;
        for_each_subset(&params, size, &mut |subset| {
            let template = generic_template(query, subset)?;
            let report = coverage(&template, schema);
            if report.is_covered() {
                chosen = Some(subset.to_vec());
                return Ok(true);
            }
            Ok(false)
        })?;
        if let Some(parameters) = chosen {
            let template = generic_template(query, &parameters)?;
            let report = coverage(&template, schema);
            let parameter_names = parameters
                .iter()
                .map(|&v| query.var_name(v).to_owned())
                .collect();
            return Ok(Some(Specialization {
                parameters,
                parameter_names,
                template,
                report,
            }));
        }
    }
    Ok(None)
}

/// A successful bounded specialization of a union of conjunctive queries.
#[derive(Debug, Clone, PartialEq)]
pub struct UcqSpecialization {
    /// The chosen parameter names (shared across branches).
    pub parameter_names: Vec<String>,
    /// The specialized template union.
    pub template: UnionQuery,
}

/// Decide QSP for a union of conjunctive queries (Theorem 5.3 for UCQ / ∃FO⁺):
/// parameters are identified by name across branches, and the specialized union must be
/// covered in the UCQ sense (Section 3.2).
pub fn specialize_ucq(
    query: &UnionQuery,
    schema: &AccessSchema,
    k: usize,
    config: &SpecializeConfig,
) -> Result<Option<UcqSpecialization>> {
    let names: Vec<String> = query.param_names().into_iter().collect();
    if is_ucq_a_satisfiable(query, schema, &config.reason)?.is_none() {
        return Ok(None);
    }
    let max_size = k.min(names.len());
    for size in 0..=max_size {
        let mut chosen: Option<Vec<String>> = None;
        for_each_subset(&names, size, &mut |subset| {
            let template = specialize_union_generically(query, subset)?;
            let report = ucq_coverage(&template, schema, &config.reason)?;
            if report.is_covered() {
                chosen = Some(subset.to_vec());
                return Ok(true);
            }
            Ok(false)
        })?;
        if let Some(parameter_names) = chosen {
            let template = specialize_union_generically(query, &parameter_names)?;
            return Ok(Some(UcqSpecialization {
                parameter_names,
                template,
            }));
        }
    }
    Ok(None)
}

/// Bind the named parameters of every branch to generic placeholder constants.
fn specialize_union_generically(query: &UnionQuery, names: &[String]) -> Result<UnionQuery> {
    let mut branches = Vec::with_capacity(query.len());
    for branch in query.branches() {
        let vars: Vec<Var> = names
            .iter()
            .filter_map(|n| branch.var_by_name(n))
            .filter(|v| branch.params().contains(v))
            .collect();
        branches.push(generic_template(branch, &vars)?);
    }
    UnionQuery::from_branches(format!("{}_template", query.name()), branches)
}

/// Proposition 5.4: under an access schema that covers the relational schema, every fully
/// parameterized FO query can be boundedly specialized (instantiate all parameters; every
/// relation atom is then checkable through the covering constraint of its relation).
pub fn always_boundedly_specializable(
    query: &FirstOrderQuery,
    schema: &AccessSchema,
    catalog: &Catalog,
) -> bool {
    schema.covers_catalog(catalog) && query.is_fully_parameterized()
}

/// Enumerate all `size`-subsets of `items`, visiting each; the visitor returns `Ok(true)`
/// to stop early.
fn for_each_subset<T: Clone>(
    items: &[T],
    size: usize,
    visit: &mut dyn FnMut(&[T]) -> Result<bool>,
) -> Result<bool> {
    fn rec<T: Clone>(
        items: &[T],
        start: usize,
        remaining: usize,
        current: &mut Vec<T>,
        visit: &mut dyn FnMut(&[T]) -> Result<bool>,
    ) -> Result<bool> {
        if remaining == 0 {
            return visit(current);
        }
        for i in start..items.len() {
            if items.len() - i < remaining {
                break;
            }
            current.push(items[i].clone());
            if rec(items, i + 1, remaining - 1, current, visit)? {
                current.pop();
                return Ok(true);
            }
            current.pop();
        }
        Ok(false)
    }
    if size > items.len() {
        return Ok(false);
    }
    rec(items, 0, size, &mut Vec::with_capacity(size), visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::query::fo::Formula;

    fn accidents() -> (Catalog, AccessSchema) {
        let mut c = Catalog::new();
        c.declare("Accident", ["aid", "district", "date"]).unwrap();
        c.declare("Casualty", ["cid", "aid", "class", "vid"])
            .unwrap();
        c.declare("Vehicle", ["vid", "driver", "age"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "Accident", &["date"], &["aid"], 610).unwrap(),
            AccessConstraint::new(&c, "Casualty", &["aid"], &["vid"], 192).unwrap(),
            AccessConstraint::new(&c, "Accident", &["aid"], &["district", "date"], 1).unwrap(),
            AccessConstraint::new(&c, "Vehicle", &["vid"], &["driver", "age"], 1).unwrap(),
        ]);
        (c, a)
    }

    /// The parameterized query Q of Example 5.1: find driver ages, with `date` and
    /// `district` as parameters.
    fn example_5_1(c: &Catalog) -> ConjunctiveQuery {
        ConjunctiveQuery::builder("Q")
            .head(["xa"])
            .atom("Accident", ["aid", "district", "date"])
            .atom("Casualty", ["cid", "aid", "class", "vid"])
            .atom("Vehicle", ["vid", "dri", "xa"])
            .params(["date", "district"])
            .build(c)
            .unwrap()
    }

    #[test]
    fn example_5_1_one_parameter_suffices() {
        let (c, a) = accidents();
        let q = example_5_1(&c);
        // Q itself is not boundedly evaluable: its free variable is not covered.
        assert!(!crate::cover::is_covered(&q, &a));

        let spec = specialize_cq(&q, &a, 2, &SpecializeConfig::default())
            .unwrap()
            .expect("Example 5.1: Q can be boundedly specialized");
        // Instantiating the single parameter `date` is enough (and minimal).
        assert_eq!(spec.parameter_names, vec!["date".to_owned()]);
        assert!(spec.report.is_covered());

        // Every concrete valuation yields a covered — hence boundedly evaluable — query;
        // Q0 of Example 1.1 is exactly such an instantiation.
        let q0 = instantiate(
            &q,
            &[
                ("date", Value::str("1/5/2005")),
                ("district", Value::str("Queen's Park")),
            ],
        )
        .unwrap();
        assert!(crate::cover::is_covered(&q0, &a));
        let q_any = instantiate(&q, &[("date", Value::str("2/6/1999"))]).unwrap();
        assert!(crate::cover::is_covered(&q_any, &a));
    }

    #[test]
    fn example_5_1_district_alone_does_not_suffice() {
        let (c, a) = accidents();
        // Same query but with district as the only parameter: no bounded specialization
        // exists (there is no index keyed on district).
        let q = ConjunctiveQuery::builder("Q")
            .head(["xa"])
            .atom("Accident", ["aid", "district", "date"])
            .atom("Casualty", ["cid", "aid", "class", "vid"])
            .atom("Vehicle", ["vid", "dri", "xa"])
            .params(["district"])
            .build(&c)
            .unwrap();
        assert!(specialize_cq(&q, &a, 1, &SpecializeConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn minimality_of_the_parameter_tuple() {
        let (c, a) = accidents();
        let q = example_5_1(&c);
        // k = 0 fails (the query is not covered as-is)…
        assert!(specialize_cq(&q, &a, 0, &SpecializeConfig::default())
            .unwrap()
            .is_none());
        // …k = 1 succeeds with exactly one parameter.
        let spec = specialize_cq(&q, &a, 1, &SpecializeConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(spec.parameters.len(), 1);
    }

    #[test]
    fn unsatisfiable_queries_cannot_be_sensibly_specialized() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 1).unwrap()
        ]);
        // Not A-satisfiable (two distinct b-values for the same a-value).
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y1"])
            .atom("R", ["x", "y2"])
            .eq("y1", 1i64)
            .eq("y2", 2i64)
            .params(["x"])
            .build(&c)
            .unwrap();
        assert!(specialize_cq(&q, &a, 1, &SpecializeConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn instantiate_rejects_non_parameters() {
        let (c, _) = accidents();
        let q = example_5_1(&c);
        let err = instantiate(&q, &[("aid", Value::int(3))]);
        assert!(matches!(err, Err(Error::UnknownParameter { .. })));
        let err = instantiate(&q, &[("nope", Value::int(3))]);
        assert!(matches!(err, Err(Error::UnknownParameter { .. })));
    }

    #[test]
    fn ucq_specialization() {
        let mut c = Catalog::new();
        c.declare("Product", ["pid", "category", "price"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "Product", &["category"], &["pid"], 500).unwrap(),
            AccessConstraint::new(&c, "Product", &["pid"], &["category", "price"], 1).unwrap(),
        ]);
        // Two branches, both parameterized by `category`.
        let b1 = ConjunctiveQuery::builder("Q1")
            .head(["p"])
            .atom("Product", ["pid", "category", "p"])
            .params(["category"])
            .build(&c)
            .unwrap();
        let b2 = ConjunctiveQuery::builder("Q2")
            .head(["p"])
            .atom("Product", ["pid", "category", "p"])
            .eq("p", 0i64)
            .params(["category"])
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Q", vec![b1, b2]).unwrap();
        let spec = specialize_ucq(&union, &a, 1, &SpecializeConfig::default())
            .unwrap()
            .expect("instantiating `category` covers both branches");
        assert_eq!(spec.parameter_names, vec!["category".to_owned()]);
        assert_eq!(spec.template.len(), 2);

        // Without any parameter the union is not covered, so k = 0 fails.
        assert!(specialize_ucq(&union, &a, 0, &SpecializeConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn proposition_5_4() {
        let (c, a) = accidents();
        // ψ1–ψ4 do not cover the catalog (Casualty's cid/class are not spanned).
        let q = FirstOrderQuery::new(
            "Q",
            ["x"],
            Formula::exists(["y"], Formula::atom("Vehicle", ["x", "y", "z"])),
        )
        .with_params(["x", "y", "z"]);
        assert!(!always_boundedly_specializable(&q, &a, &c));

        // A covering access schema flips the answer for fully parameterized queries.
        let covering = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "Accident", &["aid"], &["district", "date"], 1).unwrap(),
            AccessConstraint::new(&c, "Casualty", &["cid"], &["aid", "class", "vid"], 1).unwrap(),
            AccessConstraint::new(&c, "Vehicle", &["vid"], &["driver", "age"], 1).unwrap(),
        ]);
        assert!(always_boundedly_specializable(&q, &covering, &c));
        // A query that is not fully parameterized is not guaranteed.
        let partial = FirstOrderQuery::new(
            "Q",
            ["x"],
            Formula::exists(["y"], Formula::atom("Vehicle", ["x", "y", "z"])),
        )
        .with_params(["x"]);
        assert!(!always_boundedly_specializable(&partial, &covering, &c));
    }

    #[test]
    fn generic_template_marks_parameters_as_constants() {
        let (c, _) = accidents();
        let q = example_5_1(&c);
        let date = q.var_by_name("date").unwrap();
        let template = generic_template(&q, &[date]).unwrap();
        assert!(template.constant_vars().contains(&date));
        // The placeholder is a labelled null, not a real constant.
        assert!(template
            .equalities()
            .iter()
            .any(|e| matches!(e, crate::query::cq::Equality::Const(_, Value::Labelled(_)))));
    }

    #[test]
    fn subset_enumeration() {
        let items = vec![1, 2, 3];
        let mut seen = Vec::new();
        for_each_subset(&items, 2, &mut |s| {
            seen.push(s.to_vec());
            Ok(false)
        })
        .unwrap();
        assert_eq!(seen, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert!(!for_each_subset(&items, 9, &mut |_| Ok(true)).unwrap());
        // Size 0 visits the empty subset once.
        let mut count = 0;
        for_each_subset(&items, 0, &mut |s| {
            assert!(s.is_empty());
            count += 1;
            Ok(false)
        })
        .unwrap();
        assert_eq!(count, 1);
    }
}

//! Shared error type for the analysis crates.

use std::fmt;

/// Convenient result alias used throughout the `bea` workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors raised while constructing or analysing queries, access schemas and plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A relation name was not found in the catalog.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// An attribute name was not found in a relation schema.
    UnknownAttribute {
        /// The relation that was searched.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// An atom used a relation with the wrong number of arguments.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// Arity declared in the catalog.
        expected: usize,
        /// Arity used by the query atom.
        found: usize,
    },
    /// The query is unsafe: a variable is not tied to a relation atom or constant.
    UnsafeQuery {
        /// Name of the offending variable.
        variable: String,
    },
    /// Branches of a union query disagree on head arity.
    UnionArityMismatch {
        /// Arity of the first branch.
        expected: usize,
        /// Arity of the offending branch.
        found: usize,
    },
    /// A variable name was referenced but never introduced.
    UnknownVariable {
        /// The unknown variable name.
        variable: String,
    },
    /// A requested parameter is not a variable of the query.
    UnknownParameter {
        /// The unknown parameter name.
        parameter: String,
    },
    /// A plan referenced an undefined intermediate result.
    InvalidPlan {
        /// Human readable explanation.
        reason: String,
    },
    /// The operation requires an access constraint that is missing.
    MissingConstraint {
        /// Human readable explanation.
        reason: String,
    },
    /// Analysis exceeded a configured search budget.
    BudgetExhausted {
        /// Which analysis gave up.
        analysis: String,
        /// The configured budget.
        budget: u64,
    },
    /// Generic invariant violation with a description.
    Invalid {
        /// Human readable explanation.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            Error::UnknownAttribute {
                relation,
                attribute,
            } => write!(f, "relation `{relation}` has no attribute `{attribute}`"),
            Error::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, but the atom has {found} arguments"
            ),
            Error::UnsafeQuery { variable } => write!(
                f,
                "unsafe query: variable `{variable}` is not bound to a relation atom or constant"
            ),
            Error::UnionArityMismatch { expected, found } => write!(
                f,
                "union branches disagree on head arity: expected {expected}, found {found}"
            ),
            Error::UnknownVariable { variable } => {
                write!(f, "unknown variable `{variable}`")
            }
            Error::UnknownParameter { parameter } => {
                write!(f, "`{parameter}` is not a parameter of the query")
            }
            Error::InvalidPlan { reason } => write!(f, "invalid query plan: {reason}"),
            Error::MissingConstraint { reason } => {
                write!(f, "missing access constraint: {reason}")
            }
            Error::BudgetExhausted { analysis, budget } => write!(
                f,
                "{analysis} exceeded its search budget of {budget} candidates"
            ),
            Error::Invalid { reason } => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Build a generic invariant-violation error.
    pub fn invalid(reason: impl Into<String>) -> Self {
        Error::Invalid {
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_relation() {
        let err = Error::UnknownRelation {
            relation: "Accident".into(),
        };
        assert_eq!(err.to_string(), "unknown relation `Accident`");
    }

    #[test]
    fn display_arity_mismatch() {
        let err = Error::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            found: 2,
        };
        assert!(err.to_string().contains("arity 3"));
        assert!(err.to_string().contains("2 arguments"));
    }

    #[test]
    fn display_budget() {
        let err = Error::BudgetExhausted {
            analysis: "lower envelope search".into(),
            budget: 1000,
        };
        assert!(err.to_string().contains("1000"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&Error::invalid("x"));
    }
}

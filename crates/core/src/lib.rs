//! # bea-core — bounded evaluability analysis
//!
//! This crate implements the static analysis developed in *"Querying Big Data by
//! Accessing Small Data"* (Fan, Geerts, Cao, Deng, Lu — PODS 2015): deciding whether a
//! query can be answered over **any** database satisfying an *access schema* by fetching
//! an amount of data that depends only on the query and the access schema, never on the
//! size of the database.
//!
//! The crate is purely analytical: it never touches data. Data structures and algorithms:
//!
//! * [`schema`] — relation schemas and catalogs.
//! * [`value`] — the constant domain shared by queries, constraints and (in `bea-storage`) data.
//! * [`query`] — the query IR: conjunctive queries ([`query::cq`]), unions ([`query::ucq`]),
//!   positive existential queries ([`query::efo`]) and first-order queries ([`query::fo`]).
//! * [`access`] — access constraints `R(X → Y, N)` and access schemas.
//! * [`cover`] — the covered-variable fixpoint `cov(Q, A)` (Lemma 3.9) and the *covered
//!   query* effective syntax (Theorem 3.11, Corollary 3.13).
//! * [`reason`] — `A`-satisfiability (Lemma 3.2), `A`-containment and `A`-equivalence
//!   (Lemma 3.3) via bounded enumeration of `A`-instances.
//! * [`bounded`] — the bounded-evaluability analysis (BEP) built from coverage,
//!   `A`-equivalence-preserving rewrites and the unsatisfiability shortcut.
//! * [`plan`] — bounded query plans (fetch/π/σ/×/∪/−/ρ) and plan synthesis from coverage
//!   witnesses (constructive direction of Theorem 3.11).
//! * [`envelope`] — upper and lower boundedly evaluable envelopes (Section 4).
//! * [`specialize`] — bounded query specialization (Section 5, Proposition 5.4).
//! * [`env`] — shared loud-failure parsing for the `BEA_*` environment knobs used by
//!   the engine, storage and service crates.
//!
//! Execution of plans against data lives in `bea-engine`; storage and indexes in
//! `bea-storage`.

pub mod access;
pub mod bounded;
pub mod cover;
pub mod env;
pub mod envelope;
pub mod error;
pub mod plan;
pub mod query;
pub mod reason;
pub mod schema;
pub mod specialize;
pub mod value;

pub use access::{AccessConstraint, AccessSchema, Cardinality};
pub use error::{Error, Result};
pub use query::cq::ConjunctiveQuery;
pub use query::ucq::UnionQuery;
pub use query::Query;
pub use schema::{Catalog, RelationSchema};
pub use value::Value;

//! Small in-memory instances used by the reasoning procedures, together with a direct
//! conjunctive-query evaluator over them.
//!
//! These instances are *tiny* (they have at most one tuple per atom of a query), so the
//! evaluator favours simplicity over performance. Large-scale evaluation lives in
//! `bea-engine`.

use crate::access::AccessSchema;
use crate::query::cq::ConjunctiveQuery;
use crate::value::{Row, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A small database instance: a set of rows per relation name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmallInstance {
    relations: BTreeMap<String, BTreeSet<Row>>,
}

impl SmallInstance {
    /// Create an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a tuple into a relation.
    pub fn insert(&mut self, relation: impl Into<String>, row: Row) {
        self.relations
            .entry(relation.into())
            .or_default()
            .insert(row);
    }

    /// The rows of a relation (empty if the relation has no tuples).
    pub fn rows(&self, relation: &str) -> impl Iterator<Item = &Row> {
        self.relations.get(relation).into_iter().flatten()
    }

    /// Total number of tuples.
    pub fn size(&self) -> u64 {
        self.relations.values().map(|r| r.len() as u64).sum()
    }

    /// Relation names that have at least one tuple.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// The active domain: every constant occurring in the instance.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.relations
            .values()
            .flatten()
            .flatten()
            .cloned()
            .collect()
    }

    /// Does the instance satisfy the access schema (`D ⊨ A`)?
    ///
    /// Only the cardinality part of each constraint is checked; the index part is a
    /// physical-design obligation handled by `bea-storage`. For general (sublinear)
    /// constraints the bound is evaluated at `max(assumed_db_size, |D|)`.
    pub fn satisfies(&self, schema: &AccessSchema, assumed_db_size: u64) -> bool {
        let size = self.size().max(assumed_db_size);
        for constraint in schema.constraints() {
            let bound = constraint.cardinality().bound(size);
            let mut groups: BTreeMap<Row, BTreeSet<Row>> = BTreeMap::new();
            for row in self.rows(constraint.relation()) {
                let key: Row = constraint.x().iter().map(|&p| row[p].clone()).collect();
                let y: Row = constraint.y().iter().map(|&p| row[p].clone()).collect();
                groups.entry(key).or_default().insert(y);
            }
            if groups.values().any(|ys| ys.len() as u64 > bound) {
                return false;
            }
        }
        true
    }
}

impl FromIterator<(String, Row)> for SmallInstance {
    fn from_iter<T: IntoIterator<Item = (String, Row)>>(iter: T) -> Self {
        let mut inst = Self::new();
        for (rel, row) in iter {
            inst.insert(rel, row);
        }
        inst
    }
}

/// Evaluate a conjunctive query on a small instance, returning the set of answer rows.
///
/// The evaluation is the textbook semantics: valuations of the query variables into the
/// instance that satisfy every relation atom and every equality atom, projected onto the
/// head. Works for any (safe) normalized CQ, including boolean queries (arity 0, where a
/// non-empty result means "true").
pub fn eval_cq(query: &ConjunctiveQuery, instance: &SmallInstance) -> BTreeSet<Row> {
    let eq = query.eq_classes();
    let mut results = BTreeSet::new();
    if eq.has_contradiction() {
        return results;
    }

    // Work with one slot per equality class, pre-seeded with the class constant.
    let n = query.num_vars();
    let mut binding: Vec<Option<Value>> = vec![None; n];
    for v in query.vars() {
        if let Some(c) = eq.constant(v) {
            binding[eq.root(v)] = Some(c.clone());
        }
    }

    fn search(
        query: &ConjunctiveQuery,
        instance: &SmallInstance,
        eq: &crate::query::cq::EqClasses,
        atom_idx: usize,
        binding: &mut Vec<Option<Value>>,
        results: &mut BTreeSet<Row>,
    ) {
        if atom_idx == query.atoms().len() {
            // All atoms matched; project the head. Safety guarantees every head class is
            // bound (it contains an atom variable or carries a constant).
            let row: Option<Row> = query
                .head()
                .iter()
                .map(|&v| binding[eq.root(v)].clone())
                .collect();
            if let Some(row) = row {
                results.insert(row);
            }
            return;
        }
        let atom = &query.atoms()[atom_idx];
        for tuple in instance.rows(&atom.relation) {
            if tuple.len() != atom.args.len() {
                continue;
            }
            // Try to unify the atom with this tuple.
            let mut touched: Vec<usize> = Vec::new();
            let mut ok = true;
            for (pos, &var) in atom.args.iter().enumerate() {
                let slot = eq.root(var);
                match &binding[slot] {
                    Some(existing) => {
                        if existing != &tuple[pos] {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding[slot] = Some(tuple[pos].clone());
                        touched.push(slot);
                    }
                }
            }
            if ok {
                search(query, instance, eq, atom_idx + 1, binding, results);
            }
            for slot in touched {
                binding[slot] = None;
            }
        }
    }

    search(query, instance, &eq, 0, &mut binding, &mut results);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::schema::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["a", "b"]).unwrap();
        c
    }

    fn inst(rows_r: &[(i64, i64)], rows_s: &[(i64, i64)]) -> SmallInstance {
        let mut d = SmallInstance::new();
        for (a, b) in rows_r {
            d.insert("R", vec![Value::int(*a), Value::int(*b)]);
        }
        for (a, b) in rows_s {
            d.insert("S", vec![Value::int(*a), Value::int(*b)]);
        }
        d
    }

    #[test]
    fn size_domain_and_rows() {
        let d = inst(&[(1, 2), (1, 3)], &[(2, 4)]);
        assert_eq!(d.size(), 3);
        assert_eq!(d.rows("R").count(), 2);
        assert_eq!(d.rows("T").count(), 0);
        assert_eq!(d.active_domain().len(), 4);
        assert_eq!(d.relation_names().count(), 2);
    }

    #[test]
    fn satisfies_cardinality_constraints() {
        let c = catalog();
        let d = inst(&[(1, 2), (1, 3), (2, 4)], &[]);
        let one =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 1).unwrap()
            ]);
        let two =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 2).unwrap()
            ]);
        assert!(!d.satisfies(&one, 1_000));
        assert!(d.satisfies(&two, 1_000));
    }

    #[test]
    fn satisfies_empty_x_constraint() {
        let c = catalog();
        // R(∅ -> b, 1): all b-values must coincide.
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &[], &["b"], 1).unwrap()
        ]);
        assert!(inst(&[(1, 2), (3, 2)], &[]).satisfies(&a, 10));
        assert!(!inst(&[(1, 2), (3, 4)], &[]).satisfies(&a, 10));
    }

    #[test]
    fn eval_simple_join() {
        let c = catalog();
        // Q(x, z) :- R(x, y), S(y, z)
        let q = ConjunctiveQuery::builder("Q")
            .head(["x", "z"])
            .atom("R", ["x", "y"])
            .atom("S", ["y", "z"])
            .build(&c)
            .unwrap();
        let d = inst(&[(1, 2), (5, 6)], &[(2, 3), (2, 4)]);
        let out = eval_cq(&q, &d);
        let expected: BTreeSet<Row> = [
            vec![Value::int(1), Value::int(3)],
            vec![Value::int(1), Value::int(4)],
        ]
        .into_iter()
        .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn eval_respects_constants_and_equalities() {
        let c = catalog();
        // Q(y) :- R(x, y), x = 1
        let q = ConjunctiveQuery::builder("Q")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let d = inst(&[(1, 2), (3, 4)], &[]);
        let out = eval_cq(&q, &d);
        assert_eq!(out, BTreeSet::from([vec![Value::int(2)]]));
    }

    #[test]
    fn eval_variable_equality_forces_join() {
        let c = catalog();
        // Q(x) :- R(x, y), S(x, z), y = z
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .atom("S", ["x", "z"])
            .eq("y", "z")
            .build(&c)
            .unwrap();
        let d = inst(&[(1, 7), (2, 8)], &[(1, 7), (2, 9)]);
        let out = eval_cq(&q, &d);
        assert_eq!(out, BTreeSet::from([vec![Value::int(1)]]));
    }

    #[test]
    fn eval_contradictory_query_is_empty() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        let d = inst(&[(1, 2)], &[]);
        assert!(eval_cq(&q, &d).is_empty());
    }

    #[test]
    fn eval_boolean_query() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(Vec::<crate::query::term::Arg>::new())
            .atom("R", ["x", "y"])
            .eq("y", 3i64)
            .build(&c)
            .unwrap();
        assert!(eval_cq(&q, &inst(&[(1, 3)], &[])).contains(&Vec::new()));
        assert!(eval_cq(&q, &inst(&[(1, 4)], &[])).is_empty());
    }

    #[test]
    fn eval_constant_head_variable() {
        let c = catalog();
        // Q(k, x) :- R(x, y), k = 9 — k is data-independent.
        let q = ConjunctiveQuery::builder("Q")
            .head(["k", "x"])
            .atom("R", ["x", "y"])
            .eq("k", 9i64)
            .build(&c)
            .unwrap();
        let out = eval_cq(&q, &inst(&[(1, 2)], &[]));
        assert_eq!(out, BTreeSet::from([vec![Value::int(9), Value::int(1)]]));
    }

    #[test]
    fn eval_repeated_variable_in_atom() {
        let c = catalog();
        // Q(x) :- R(x, x)
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "x"])
            .build(&c)
            .unwrap();
        let d = inst(&[(1, 1), (2, 3)], &[]);
        assert_eq!(eval_cq(&q, &d), BTreeSet::from([vec![Value::int(1)]]));
    }

    #[test]
    fn from_iterator_builds_instance() {
        let d: SmallInstance = [
            ("R".to_owned(), vec![Value::int(1), Value::int(2)]),
            ("R".to_owned(), vec![Value::int(1), Value::int(2)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(d.size(), 1, "duplicate rows are set-collapsed");
    }
}

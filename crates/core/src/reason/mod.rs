//! Reasoning about queries *under an access schema*: `A`-satisfiability,
//! `A`-containment and `A`-equivalence (Section 3.1 of the paper).
//!
//! The presence of an access schema `A` changes the classical picture:
//!
//! * satisfiability of a CQ is trivial classically, but `A`-satisfiability is
//!   NP-complete (Lemma 3.2);
//! * containment and equivalence of CQs are NP-complete classically (Chandra–Merlin), but
//!   Πᵖ₂-complete under `A` (Lemma 3.3), because *all* `A`-instances of the left query have
//!   to be considered rather than a single canonical instance.
//!
//! The procedures here implement those definitions directly by enumerating canonical
//! valuations of a query's tableau, in the style of representative instances for
//! indefinite databases. The enumeration is exponential in the number of variables of the
//! query (it cannot be otherwise unless the polynomial hierarchy collapses); a
//! [`ReasonConfig::budget`] caps the work and turns the analysis into an explicit
//! [`crate::error::Error::BudgetExhausted`] error instead of an open-ended search.

pub mod containment;
pub mod enumerate;
pub mod instance;
pub mod satisfiability;

pub use containment::{a_contained, a_equivalent, classically_contained};
pub use enumerate::{a_instances, canonical_instance, AInstance};
pub use instance::SmallInstance;
pub use satisfiability::{is_a_satisfiable, SatisfiabilityWitness};

/// Configuration of the enumeration-based reasoning procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReasonConfig {
    /// Maximum number of candidate valuations examined by one reasoning call.
    pub budget: u64,
    /// Database size assumed when evaluating general (sublinear) access constraints on
    /// the small canonical instances.
    pub assumed_db_size: u64,
}

impl Default for ReasonConfig {
    fn default() -> Self {
        Self {
            budget: 2_000_000,
            assumed_db_size: 1_000_000,
        }
    }
}

impl ReasonConfig {
    /// A configuration with a custom enumeration budget.
    pub fn with_budget(budget: u64) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }
}

//! `A`-satisfiability of conjunctive queries (Lemma 3.2).
//!
//! A query `Q` is `A`-satisfiable when some instance `D ⊨ A` has `Q(D) ≠ ∅`. Classical
//! satisfiability of CQs is trivial; under an access schema it becomes NP-complete,
//! because a valuation of the tableau must be found whose induced instance satisfies all
//! cardinality constraints.

use crate::access::AccessSchema;
use crate::error::Result;
use crate::query::cq::ConjunctiveQuery;
use crate::query::ucq::UnionQuery;
use crate::reason::enumerate::visit_a_instances;
use crate::reason::instance::SmallInstance;
use crate::reason::ReasonConfig;
use crate::value::Row;

/// A witness that a query is `A`-satisfiable: an instance satisfying the access schema on
/// which the query returns the given answer row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatisfiabilityWitness {
    /// The witnessing instance (`θ(T_Q)` for the found valuation).
    pub instance: SmallInstance,
    /// The answer `θ(u)` produced on the witnessing instance.
    pub answer: Row,
}

/// Decide whether a CQ is `A`-satisfiable; returns a witness when it is.
pub fn is_a_satisfiable(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<Option<SatisfiabilityWitness>> {
    let mut witness = None;
    visit_a_instances(query, schema, &[], config, &mut |ai| {
        witness = Some(SatisfiabilityWitness {
            instance: ai.instance.clone(),
            answer: ai.head.clone(),
        });
        true
    })?;
    Ok(witness)
}

/// Decide whether a UCQ is `A`-satisfiable (some branch is).
pub fn is_ucq_a_satisfiable(
    query: &UnionQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<Option<SatisfiabilityWitness>> {
    for branch in query.branches() {
        if let Some(w) = is_a_satisfiable(branch, schema, config)? {
            return Ok(Some(w));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::schema::Catalog;
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R2", ["a", "b"]).unwrap();
        c
    }

    /// Q2 and A2 of Example 3.1(2): Q2 is *not* A2-satisfiable because R2(A → B, 1)
    /// forbids (x, 1) and (x, 2) from coexisting.
    fn example_3_1_2(c: &Catalog) -> (ConjunctiveQuery, AccessSchema) {
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x"])
            .atom("R2", ["x", "x1"])
            .atom("R2", ["x", "x2"])
            .eq("x1", 1i64)
            .eq("x2", 2i64)
            .build(c)
            .unwrap();
        let a2 =
            AccessSchema::from_constraints([
                AccessConstraint::new(c, "R2", &["a"], &["b"], 1).unwrap()
            ]);
        (q2, a2)
    }

    #[test]
    fn example_3_1_2_is_unsatisfiable_under_a2() {
        let c = catalog();
        let (q2, a2) = example_3_1_2(&c);
        let result = is_a_satisfiable(&q2, &a2, &ReasonConfig::default()).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn example_3_1_2_is_satisfiable_without_constraints() {
        let c = catalog();
        let (q2, _) = example_3_1_2(&c);
        let witness = is_a_satisfiable(&q2, &AccessSchema::new(), &ReasonConfig::default())
            .unwrap()
            .expect("classically satisfiable");
        assert_eq!(witness.answer.len(), 1);
        assert_eq!(witness.instance.size(), 2);
        // The witness really satisfies the (empty) schema and answers the query.
        let out = crate::reason::instance::eval_cq(&q2, &witness.instance);
        assert!(out.contains(&witness.answer));
    }

    #[test]
    fn contradictory_query_is_never_satisfiable() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        assert!(
            is_a_satisfiable(&q, &AccessSchema::new(), &ReasonConfig::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn witness_satisfies_the_schema() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R2", ["x", "y"])
            .atom("R2", ["x", "z"])
            .build(&c)
            .unwrap();
        let a =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R2", &["a"], &["b"], 1).unwrap()
            ]);
        let witness = is_a_satisfiable(&q, &a, &ReasonConfig::default())
            .unwrap()
            .expect("satisfiable: y and z can be merged");
        assert!(witness.instance.satisfies(&a, 1_000_000));
        assert_eq!(witness.instance.size(), 1);
    }

    #[test]
    fn ucq_satisfiability_checks_branches() {
        let c = catalog();
        let (q2, a2) = example_3_1_2(&c);
        let sat_branch = ConjunctiveQuery::builder("Q1")
            .head(["x"])
            .atom("R2", ["x", "y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        let only_unsat = UnionQuery::from_branches("U", vec![q2.clone()]).unwrap();
        assert!(
            is_ucq_a_satisfiable(&only_unsat, &a2, &ReasonConfig::default())
                .unwrap()
                .is_none()
        );
        let mixed = UnionQuery::from_branches("U", vec![q2, sat_branch]).unwrap();
        let w = is_ucq_a_satisfiable(&mixed, &a2, &ReasonConfig::default())
            .unwrap()
            .expect("second branch is satisfiable");
        assert_eq!(w.answer.len(), 1);
        assert!(w.instance.rows("R2").any(|row| row[1] == Value::int(1)));
    }
}

//! Canonical enumeration of the `A`-instances of a conjunctive query.
//!
//! An *`A`-instance* of a CQ `Q` (Lemma 3.2/3.3) is an instance `θ(T_Q)` obtained by
//! applying a valuation `θ` to the tableau of `Q` such that `θ(T_Q) ⊨ A`. Two valuations
//! that identify the same variables with each other and with the same named constants
//! yield isomorphic instances, so it suffices to enumerate valuations canonically:
//!
//! * every equality class that carries a constant is fixed to that constant;
//! * every other class is mapped to a named constant (a constant of the query or one of
//!   the caller-supplied `extra_constants`), to a previously introduced labelled null, or
//!   to a fresh labelled null.
//!
//! This yields finitely many candidates — exponentially many in the number of classes,
//! which matches the Πᵖ₂ / NP lower bounds of the paper. The enumeration is budgeted.

use crate::access::AccessSchema;
use crate::error::{Error, Result};
use crate::query::cq::{ConjunctiveQuery, Equality};
use crate::reason::instance::SmallInstance;
use crate::reason::ReasonConfig;
use crate::value::{Row, Value};
use std::collections::BTreeSet;

/// One `A`-instance of a query: the instance, the image of the head under the valuation,
/// and the full per-variable assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AInstance {
    /// The instance `θ(T_Q)`.
    pub instance: SmallInstance,
    /// The head image `θ(u)`.
    pub head: Row,
    /// The value assigned to each variable of the query (indexed by variable index).
    pub assignment: Vec<Value>,
}

/// The constants mentioned by a query (through its `x = c` equality atoms).
pub fn query_constants(query: &ConjunctiveQuery) -> BTreeSet<Value> {
    query
        .equalities()
        .iter()
        .filter_map(|e| match e {
            Equality::Const(_, c) => Some(c.clone()),
            Equality::Vars(_, _) => None,
        })
        .collect()
}

/// Visit every canonical valuation of `query` whose induced instance satisfies `schema`.
///
/// The visitor receives each [`AInstance`]; returning `true` stops the enumeration early
/// (used by satisfiability and containment checks). Returns `Ok(true)` when the visitor
/// stopped the enumeration, `Ok(false)` when the enumeration ran to completion.
pub fn visit_a_instances(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    extra_constants: &[Value],
    config: &ReasonConfig,
    visitor: &mut dyn FnMut(&AInstance) -> bool,
) -> Result<bool> {
    let eq = query.eq_classes();
    if eq.has_contradiction() {
        // No valuation is well defined on a contradictory class: no A-instances.
        return Ok(false);
    }

    // The classes, in a stable order; each is represented by its root variable index.
    let mut roots: Vec<usize> = query.vars().map(|v| eq.root(v)).collect();
    roots.sort_unstable();
    roots.dedup();

    // Named constants available to the valuation.
    let mut named: BTreeSet<Value> = query_constants(query);
    named.extend(extra_constants.iter().cloned());
    let named: Vec<Value> = named.into_iter().collect();

    // Per-class choice: the forced constant, or named constants + labelled nulls.
    struct Search<'a> {
        query: &'a ConjunctiveQuery,
        schema: &'a AccessSchema,
        config: &'a ReasonConfig,
        roots: &'a [usize],
        named: &'a [Value],
        eq: &'a crate::query::cq::EqClasses,
        choice: Vec<Value>,
        examined: u64,
    }

    impl Search<'_> {
        fn run(
            &mut self,
            depth: usize,
            visitor: &mut dyn FnMut(&AInstance) -> bool,
        ) -> Result<bool> {
            if depth == self.roots.len() {
                self.examined += 1;
                if self.examined > self.config.budget {
                    return Err(Error::BudgetExhausted {
                        analysis: "A-instance enumeration".into(),
                        budget: self.config.budget,
                    });
                }
                return Ok(self.emit(visitor));
            }
            let root = self.roots[depth];
            if let Some(c) = self.eq.constant(crate::query::term::Var(root as u32)) {
                self.choice.push(c.clone());
                let stop = self.run(depth + 1, visitor)?;
                self.choice.pop();
                return Ok(stop);
            }
            // Named constants.
            for c in self.named {
                self.choice.push(c.clone());
                let stop = self.run(depth + 1, visitor)?;
                self.choice.pop();
                if stop {
                    return Ok(true);
                }
            }
            // Previously used labelled nulls, plus one fresh null (canonical form).
            let used: u32 = self
                .choice
                .iter()
                .filter_map(|v| match v {
                    Value::Labelled(i) => Some(*i + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            for i in 0..=used {
                self.choice.push(Value::Labelled(i));
                let stop = self.run(depth + 1, visitor)?;
                self.choice.pop();
                if stop {
                    return Ok(true);
                }
            }
            Ok(false)
        }

        /// Build the instance for the current complete choice and hand it to the visitor
        /// if it satisfies the access schema.
        fn emit(&self, visitor: &mut dyn FnMut(&AInstance) -> bool) -> bool {
            let value_of = |v: crate::query::term::Var| -> Value {
                let root = self.eq.root(v);
                let idx = self
                    .roots
                    .binary_search(&root)
                    .expect("root must be listed");
                self.choice[idx].clone()
            };
            let mut instance = SmallInstance::new();
            for atom in self.query.atoms() {
                let row: Row = atom.args.iter().map(|&v| value_of(v)).collect();
                instance.insert(atom.relation.clone(), row);
            }
            if !instance.satisfies(self.schema, self.config.assumed_db_size) {
                return false;
            }
            let head: Row = self.query.head().iter().map(|&v| value_of(v)).collect();
            let assignment: Vec<Value> = self.query.vars().map(value_of).collect();
            visitor(&AInstance {
                instance,
                head,
                assignment,
            })
        }
    }

    let mut search = Search {
        query,
        schema,
        config,
        roots: &roots,
        named: &named,
        eq: &eq,
        choice: Vec::with_capacity(roots.len()),
        examined: 0,
    };
    search.run(0, visitor)
}

/// Collect all `A`-instances of a query (up to isomorphism).
pub fn a_instances(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    extra_constants: &[Value],
    config: &ReasonConfig,
) -> Result<Vec<AInstance>> {
    let mut out = Vec::new();
    visit_a_instances(query, schema, extra_constants, config, &mut |inst| {
        out.push(inst.clone());
        false
    })?;
    Ok(out)
}

/// The *canonical* (frozen) instance of a query: constant classes take their constants,
/// every other class takes a distinct labelled null. Returns `None` when the query is
/// classically contradictory. This is the Chandra–Merlin canonical database used for
/// classical containment.
pub fn canonical_instance(query: &ConjunctiveQuery) -> Option<(SmallInstance, Row)> {
    let eq = query.eq_classes();
    if eq.has_contradiction() {
        return None;
    }
    let mut roots: Vec<usize> = query.vars().map(|v| eq.root(v)).collect();
    roots.sort_unstable();
    roots.dedup();
    let value_of = |v: crate::query::term::Var| -> Value {
        match eq.constant(v) {
            Some(c) => c.clone(),
            None => {
                let idx = roots.binary_search(&eq.root(v)).expect("root listed");
                Value::Labelled(idx as u32)
            }
        }
    };
    let mut instance = SmallInstance::new();
    for atom in query.atoms() {
        let row: Row = atom.args.iter().map(|&v| value_of(v)).collect();
        instance.insert(atom.relation.clone(), row);
    }
    let head: Row = query.head().iter().map(|&v| value_of(v)).collect();
    Some((instance, head))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::schema::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("T", ["a", "b", "c"]).unwrap();
        c
    }

    #[test]
    fn canonical_instance_freezes_variables() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        let (inst, head) = canonical_instance(&q).unwrap();
        assert_eq!(inst.size(), 1);
        let row = inst.rows("R").next().unwrap().clone();
        assert!(row[0].is_labelled());
        assert_eq!(row[1], Value::int(1));
        assert_eq!(head, vec![row[0].clone()]);
    }

    #[test]
    fn canonical_instance_none_for_contradiction() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        assert!(canonical_instance(&q).is_none());
    }

    #[test]
    fn enumeration_without_constraints_counts_merge_patterns() {
        let c = catalog();
        // Q(x, y) :- R(x, y): classes {x}, {y}; canonical valuations: (⊥0,⊥0), (⊥0,⊥1).
        let q = ConjunctiveQuery::builder("Q")
            .head(["x", "y"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        let schema = AccessSchema::new();
        let all = a_instances(&q, &schema, &[], &ReasonConfig::default()).unwrap();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn enumeration_uses_named_constants() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        // Classes: {x}, {y=1}. x can be 1 (named) or a fresh null → 2 instances.
        let all = a_instances(&q, &AccessSchema::new(), &[], &ReasonConfig::default()).unwrap();
        assert_eq!(all.len(), 2);
        // With an extra named constant there is one more choice for x.
        let all = a_instances(
            &q,
            &AccessSchema::new(),
            &[Value::int(7)],
            &ReasonConfig::default(),
        )
        .unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn constraint_filters_instances() {
        let c = catalog();
        // Q() :- R(x, y1), R(x, y2), y1 = 1, y2 = 2 — under R(a -> b, 1) the two atoms
        // cannot coexist, so there is no A-instance (this is Q2 of Example 3.1(2)).
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y1"])
            .atom("R", ["x", "y2"])
            .eq("y1", 1i64)
            .eq("y2", 2i64)
            .build(&c)
            .unwrap();
        let unit =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 1).unwrap()
            ]);
        let none = a_instances(&q, &unit, &[], &ReasonConfig::default()).unwrap();
        assert!(none.is_empty());

        let relaxed =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 2).unwrap()
            ]);
        let some = a_instances(&q, &relaxed, &[], &ReasonConfig::default()).unwrap();
        assert!(!some.is_empty());
        for ai in &some {
            assert!(ai.instance.satisfies(&relaxed, 1_000_000));
            assert_eq!(ai.head.len(), 1);
            assert_eq!(ai.assignment.len(), q.num_vars());
        }
    }

    #[test]
    fn early_stop_works() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("T", ["x", "y", "z"])
            .build(&c)
            .unwrap();
        let mut count = 0;
        let stopped = visit_a_instances(
            &q,
            &AccessSchema::new(),
            &[],
            &ReasonConfig::default(),
            &mut |_| {
                count += 1;
                true
            },
        )
        .unwrap();
        assert!(stopped);
        assert_eq!(count, 1);
    }

    #[test]
    fn budget_is_enforced() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("T", ["x", "y", "z"])
            .atom("T", ["u", "v", "w"])
            .build(&c)
            .unwrap();
        let tiny = ReasonConfig::with_budget(3);
        let err = a_instances(&q, &AccessSchema::new(), &[], &tiny);
        assert!(matches!(err, Err(Error::BudgetExhausted { .. })));
    }

    #[test]
    fn query_constants_collects_constants() {
        let c = catalog();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("y", 1i64)
            .eq("x", Value::str("a"))
            .build(&c)
            .unwrap();
        let consts = query_constants(&q);
        assert!(consts.contains(&Value::int(1)));
        assert!(consts.contains(&Value::str("a")));
        assert_eq!(consts.len(), 2);
    }
}

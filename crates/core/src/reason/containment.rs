//! Containment and equivalence of conjunctive queries, classically and under an access
//! schema (Lemma 3.3).
//!
//! * Classical containment `Q₁ ⊆ Q₂` is decided with the Chandra–Merlin canonical-instance
//!   test: `Q₁ ⊆ Q₂` iff the frozen head of `Q₁` belongs to `Q₂` evaluated on the frozen
//!   (canonical) instance of `Q₁`.
//! * `A`-containment `Q₁ ⊑_A Q₂` holds iff `Q₁` is not `A`-satisfiable, or the head image
//!   belongs to `Q₂(θ(T_{Q₁}))` for **every** `A`-instance `θ(T_{Q₁})` of `Q₁`
//!   (statement (1) of Lemma 3.3). The `A`-instances are enumerated canonically with the
//!   constants of both queries as the named constants.

use crate::access::AccessSchema;
use crate::error::{Error, Result};
use crate::query::cq::ConjunctiveQuery;
use crate::query::ucq::UnionQuery;
use crate::reason::enumerate::{canonical_instance, query_constants, visit_a_instances};
use crate::reason::instance::eval_cq;
use crate::reason::ReasonConfig;
use crate::value::Value;

/// Classical containment `Q₁ ⊆ Q₂` (no access schema).
pub fn classically_contained(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Result<bool> {
    if q1.arity() != q2.arity() {
        return Err(Error::invalid(format!(
            "cannot compare containment of `{}` (arity {}) and `{}` (arity {})",
            q1.name(),
            q1.arity(),
            q2.name(),
            q2.arity()
        )));
    }
    match canonical_instance(q1) {
        // A contradictory query is empty on every database, hence contained in anything.
        None => Ok(true),
        Some((frozen, head)) => Ok(eval_cq(q2, &frozen).contains(&head)),
    }
}

/// `A`-containment `Q₁ ⊑_A Q₂`.
pub fn a_contained(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<bool> {
    if q1.arity() != q2.arity() {
        return Err(Error::invalid(format!(
            "cannot compare A-containment of `{}` (arity {}) and `{}` (arity {})",
            q1.name(),
            q1.arity(),
            q2.name(),
            q2.arity()
        )));
    }
    // Named constants must include the constants of Q2 so that the enumeration
    // distinguishes instances that Q2 can tell apart.
    let extra: Vec<Value> = query_constants(q2).into_iter().collect();
    let mut counterexample = false;
    visit_a_instances(q1, schema, &extra, config, &mut |ai| {
        if !eval_cq(q2, &ai.instance).contains(&ai.head) {
            counterexample = true;
            true
        } else {
            false
        }
    })?;
    Ok(!counterexample)
}

/// `A`-equivalence `Q₁ ≡_A Q₂`.
pub fn a_equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<bool> {
    Ok(a_contained(q1, q2, schema, config)? && a_contained(q2, q1, schema, config)?)
}

/// `A`-containment of a CQ in a UCQ: `Q ⊑_A Q₁ ∪ … ∪ Qₖ` iff every `A`-instance of `Q`
/// has its head answered by **some** branch. Note (Example 3.5) that this is weaker than
/// requiring containment in a single branch, unlike the classical Sagiv–Yannakakis
/// characterization.
pub fn a_contained_in_union(
    q: &ConjunctiveQuery,
    union: &UnionQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<bool> {
    if q.arity() != union.arity() {
        return Err(Error::invalid(format!(
            "cannot compare A-containment of `{}` (arity {}) and `{}` (arity {})",
            q.name(),
            q.arity(),
            union.name(),
            union.arity()
        )));
    }
    let mut extra: Vec<Value> = Vec::new();
    for b in union.branches() {
        extra.extend(query_constants(b));
    }
    extra.sort();
    extra.dedup();
    let mut counterexample = false;
    visit_a_instances(q, schema, &extra, config, &mut |ai| {
        let answered = union
            .branches()
            .iter()
            .any(|b| eval_cq(b, &ai.instance).contains(&ai.head));
        if !answered {
            counterexample = true;
            true
        } else {
            false
        }
    })?;
    Ok(!counterexample)
}

/// `A`-containment of two UCQs: every branch of the left query must be `A`-contained in
/// the right query (as a union).
pub fn a_contained_union(
    left: &UnionQuery,
    right: &UnionQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<bool> {
    for branch in left.branches() {
        if !a_contained_in_union(branch, right, schema, config)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// `A`-equivalence of two UCQs.
pub fn a_equivalent_union(
    left: &UnionQuery,
    right: &UnionQuery,
    schema: &AccessSchema,
    config: &ReasonConfig,
) -> Result<bool> {
    Ok(a_contained_union(left, right, schema, config)?
        && a_contained_union(right, left, schema, config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::schema::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("R1", ["x"]).unwrap();
        c.declare("R3", ["a", "b", "c"]).unwrap();
        c
    }

    #[test]
    fn classical_containment_basic() {
        let c = catalog();
        // Q1(x) :- R(x, y), y = 1   ⊆   Q2(x) :- R(x, y)
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        assert!(classically_contained(&q1, &q2).unwrap());
        assert!(!classically_contained(&q2, &q1).unwrap());
    }

    #[test]
    fn classical_containment_join_vs_single() {
        let c = catalog();
        // Q1(x) :- R(x, y), R(y, z)  ⊆  Q2(x) :- R(x, y)
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["x"])
            .atom("R", ["x", "y"])
            .atom("R", ["y", "z"])
            .build(&c)
            .unwrap();
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        assert!(classically_contained(&q1, &q2).unwrap());
        assert!(!classically_contained(&q2, &q1).unwrap());
    }

    #[test]
    fn contradictory_query_contained_in_everything() {
        let c = catalog();
        let empty = ConjunctiveQuery::builder("E")
            .head(["x"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        assert!(classically_contained(&empty, &q).unwrap());
        assert!(a_contained(&empty, &q, &AccessSchema::new(), &ReasonConfig::default()).unwrap());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let c = catalog();
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["x"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x", "y"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        assert!(classically_contained(&q1, &q2).is_err());
        assert!(a_contained(&q1, &q2, &AccessSchema::new(), &ReasonConfig::default()).is_err());
    }

    /// Example 3.1(3): under A3, Q3 is A-equivalent to Q3' although they are not
    /// classically equivalent.
    #[test]
    fn example_3_1_3_a_equivalence() {
        use crate::query::term::Arg;

        let c = catalog();
        let a3 = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R3", &[], &["c"], 1).unwrap(),
            AccessConstraint::new(&c, "R3", &["a", "b"], &["c"], 64).unwrap(),
        ]);
        // Q3(x, y) = ∃x1,x2,z1,z2,z3 (R3(x1,x2,x) ∧ R3(z1,z2,y) ∧ R3(x,y,z3) ∧ x1=1 ∧ x2=1)
        let q3 = ConjunctiveQuery::builder("Q3")
            .head(["x", "y"])
            .atom("R3", ["x1", "x2", "x"])
            .atom("R3", ["z1", "z2", "y"])
            .atom("R3", ["x", "y", "z3"])
            .eq("x1", 1i64)
            .eq("x2", 1i64)
            .build(&c)
            .unwrap();
        // Q3'(x, x) = R3(1,1,x) ∧ R3(x,x,x)
        let q3p = ConjunctiveQuery::builder("Q3p")
            .head(["x", "x"])
            .atom(
                "R3",
                [
                    Arg::val(Value::int(1)),
                    Arg::val(Value::int(1)),
                    Arg::var("x"),
                ],
            )
            .atom("R3", ["x", "x", "x"])
            .build(&c)
            .unwrap();

        // Not classically equivalent: Q3 allows x ≠ y, Q3' does not.
        assert!(classically_contained(&q3p, &q3).unwrap());
        assert!(!classically_contained(&q3, &q3p).unwrap());
        // But A3-equivalent (the ∅ → C constraint forces x = y = z3).
        assert!(a_equivalent(&q3, &q3p, &a3, &ReasonConfig::default()).unwrap());
    }

    /// Example 3.5 (first part): Q ⊑_A Q1 ∪ Q2 although Q ⋢_A Q1 and Q ⋢_A Q2, breaking
    /// the classical Sagiv–Yannakakis characterization of union containment.
    #[test]
    fn example_3_5_union_containment() {
        let c = catalog();
        // A: R1(∅ → X, 2) — the unary relation R1 holds at most two distinct values.
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R1", &[], &["x"], 2).unwrap()
        ]);
        // Qψ(x, y) := R(x, y) ∧ R1(y), and Qc asserts that both 0 and 1 appear in R1, so
        // that under A the relation R1 encodes exactly the Boolean domain {0, 1}.
        // Q(x) = ∃y (Qc ∧ Qψ(x, y)).
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R1", ["y1"])
            .atom("R1", ["y2"])
            .atom("R", ["x", "y"])
            .atom("R1", ["y"])
            .eq("y1", 1i64)
            .eq("y2", 0i64)
            .build(&c)
            .unwrap();
        // Q1(x) = ∃y (Qψ(x, y) ∧ y = 1), Q2(x) = ∃y (Qψ(x, y) ∧ y = 0).
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["x"])
            .atom("R", ["x", "y"])
            .atom("R1", ["y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x"])
            .atom("R", ["x", "y"])
            .atom("R1", ["y"])
            .eq("y", 0i64)
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Qp", vec![q1.clone(), q2.clone()]).unwrap();
        let cfg = ReasonConfig::default();

        // Q is contained in the union under A …
        assert!(a_contained_in_union(&q, &union, &a, &cfg).unwrap());
        // … but in neither branch alone (the paper's point).
        assert!(!a_contained(&q, &q1, &a, &cfg).unwrap());
        assert!(!a_contained(&q, &q2, &a, &cfg).unwrap());
        // Without the access schema even the union containment fails (y may take a value
        // outside {0, 1}), showing that the containment genuinely uses A.
        let empty = AccessSchema::new();
        assert!(!a_contained_in_union(&q, &union, &empty, &cfg).unwrap());
    }

    #[test]
    fn union_containment_both_directions() {
        let c = catalog();
        let q1 = ConjunctiveQuery::builder("Q1")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("y", 1i64)
            .build(&c)
            .unwrap();
        let q2 = ConjunctiveQuery::builder("Q2")
            .head(["x"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        let small = UnionQuery::from_branches("S", vec![q1.clone()]).unwrap();
        let big = UnionQuery::from_branches("B", vec![q1, q2]).unwrap();
        let cfg = ReasonConfig::default();
        let empty = AccessSchema::new();
        assert!(a_contained_union(&small, &big, &empty, &cfg).unwrap());
        assert!(!a_contained_union(&big, &small, &empty, &cfg).unwrap());
        assert!(!a_equivalent_union(&big, &small, &empty, &cfg).unwrap());
        assert!(a_equivalent_union(&big, &big, &empty, &cfg).unwrap());
    }
}

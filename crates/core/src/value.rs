//! The constant domain shared by queries, access constraints and data.
//!
//! The paper assumes a countably infinite domain `D` of data values. We model it with
//! integers, strings and booleans, plus *labelled nulls* ([`Value::Labelled`]) which the
//! reasoning procedures use as "fresh, pairwise distinct" constants when enumerating
//! canonical instances (Section 3 of the paper works with representative instances in the
//! style of indefinite databases).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single data value.
///
/// Cloning a `Value` is **O(1)**: the scalar variants are plain copies and the string
/// payload is a shared [`Arc<str>`], so a clone is a refcount bump, never a deep copy of
/// the character data. The executor relies on this — join keys, per-key fetch caches,
/// dedup sets and columnar batch gathers all clone values freely; the bytes themselves
/// are written once when the value is created (typically at data-load or parse time)
/// and shared from then on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string. The payload is shared: clones alias the same allocation.
    Str(Arc<str>),
    /// A boolean.
    Bool(bool),
    /// A labelled null: a fresh constant distinct from every other value except itself.
    ///
    /// Labelled nulls never appear in user data; they are introduced by the reasoning
    /// procedures ([`crate::reason`]) and by generic query specialization
    /// ([`crate::specialize`]) to stand for "an arbitrary value".
    Labelled(u32),
}

impl Value {
    /// Build a string value (the payload is allocated once and shared by every clone).
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Build an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// True when the value is a labelled null (a generic placeholder constant).
    pub const fn is_labelled(&self) -> bool {
        matches!(self, Value::Labelled(_))
    }

    /// A short tag describing the value's type, used in error messages.
    pub const fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Labelled(_) => "labelled-null",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Labelled(n) => write!(f, "⊥{n}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across heterogeneous values: ints < strings < bools < labelled nulls,
    /// with the natural order inside each group. The order is only used to make results
    /// and canonical instances deterministic; it carries no query semantics.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Labelled(a), Labelled(b)) => a.cmp(b),
            (Int(_), _) => Ordering::Less,
            (_, Int(_)) => Ordering::Greater,
            (Str(_), _) => Ordering::Less,
            (_, Str(_)) => Ordering::Greater,
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
        }
    }
}

/// A tuple of values, i.e. one row of a relation or of a query answer.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_formats() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("ab").to_string(), "\"ab\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Labelled(3).to_string(), "⊥3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn ordering_is_total_and_groups_types() {
        let mut vals = vec![
            Value::Labelled(0),
            Value::Bool(false),
            Value::str("a"),
            Value::int(-1),
            Value::int(5),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::int(-1),
                Value::int(5),
                Value::str("a"),
                Value::Bool(false),
                Value::Labelled(0),
            ]
        );
    }

    #[test]
    fn hashable_and_distinct() {
        let set: HashSet<Value> = [
            Value::int(1),
            Value::str("1"),
            Value::Bool(true),
            Value::Labelled(1),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn labelled_nulls_equal_only_themselves() {
        assert_eq!(Value::Labelled(2), Value::Labelled(2));
        assert_ne!(Value::Labelled(2), Value::Labelled(3));
        assert_ne!(Value::Labelled(2), Value::int(2));
        assert!(Value::Labelled(0).is_labelled());
        assert!(!Value::int(0).is_labelled());
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::int(0).type_name(), "int");
        assert_eq!(Value::str("").type_name(), "string");
        assert_eq!(Value::Bool(false).type_name(), "bool");
        assert_eq!(Value::Labelled(0).type_name(), "labelled-null");
    }
}

//! Boundedly evaluable envelopes (Section 4): approximating a query that is not
//! boundedly evaluable by covered queries that sandwich it.
//!
//! For a query `Q` that is not boundedly evaluable under `A`, the paper looks for
//!
//! * an **upper envelope** `Qᵤ` — a *relaxation* of `Q` (a subset of its atoms over the
//!   same free variables) that is covered by `A`, so that `Q(D) ⊆ Qᵤ(D)` and
//!   `|Qᵤ(D) − Q(D)| ≤ Nᵤ` for a constant `Nᵤ` derived from `Q` and `A` (Section 4.2);
//! * a **lower envelope** `Qₗ` — a *k-expansion* of `Q` (the atoms of `Q` plus at most
//!   `k` additional atoms) that is covered by `A` and `A`-satisfiable, so that
//!   `Qₗ(D) ⊆ Q(D)` and `|Q(D) − Qₗ(D)| ≤ Nₗ` (Section 4.3).
//!
//! Existence of either envelope requires `Q` to be *bounded* (all free variables covered,
//! Lemma 4.2); the approximation bounds then follow from the output-size bound of the
//! coverage witness. UEP is NP-complete and LEP NP-complete for CQ; the searches below are
//! budgeted and complete relative to their candidate spaces (documented per function).

use crate::access::AccessSchema;
use crate::cover::{coverage, CoverageReport};
use crate::error::{Error, Result};
use crate::query::cq::ConjunctiveQuery;
use crate::query::term::Arg;
use crate::query::ucq::UnionQuery;
use crate::reason::containment::a_contained;
use crate::reason::satisfiability::is_a_satisfiable;
use crate::reason::ReasonConfig;
use crate::schema::Catalog;
use std::collections::BTreeSet;

/// Configuration of the envelope searches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeConfig {
    /// Configuration of the reasoning sub-procedures (satisfiability, containment).
    pub reason: ReasonConfig,
    /// Maximum number of candidate queries examined by one search.
    pub max_candidates: u64,
}

impl Default for EnvelopeConfig {
    fn default() -> Self {
        Self {
            reason: ReasonConfig::default(),
            max_candidates: 200_000,
        }
    }
}

/// A covered upper envelope of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct UpperEnvelope {
    /// The envelope query `Qᵤ` (a relaxation of the input, covered by `A`).
    pub query: ConjunctiveQuery,
    /// The coverage report of the envelope.
    pub report: CoverageReport,
    /// Indices (in the input query) of the atoms that were removed.
    pub removed_atoms: Vec<usize>,
}

impl UpperEnvelope {
    /// The approximation bound `Nᵤ`: `|Qᵤ(D) − Q(D)| ≤ |Qᵤ(D)| ≤ Nᵤ` for every `D ⊨ A`
    /// with at most `db_size` tuples (the size only matters for sublinear constraints).
    pub fn approximation_bound(&self, schema: &AccessSchema, db_size: u64) -> Option<u64> {
        self.report.output_bound(schema, db_size)
    }
}

/// A covered lower envelope of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerEnvelope {
    /// The envelope query `Qₗ` (an expansion of the input — possibly with an unindexed
    /// atom split as in Example 4.5 — covered by `A` and `A`-satisfiable).
    pub query: ConjunctiveQuery,
    /// The coverage report of the envelope.
    pub report: CoverageReport,
    /// How many atoms were added relative to the input query.
    pub added_atoms: usize,
    /// Whether an unindexed atom of the input was split into indexed copies (in which
    /// case `Qₗ ⊑_A Q` was verified with the containment oracle rather than holding
    /// syntactically).
    pub used_split: bool,
}

impl LowerEnvelope {
    /// The approximation bound `Nₗ`: `|Q(D) − Qₗ(D)| ≤ |Q(D)| ≤ Nₗ` for every `D ⊨ A`.
    /// The bound is derived from the coverage fixpoint of the *input* query (its free
    /// variables are covered because boundedness is a precondition of LEP), which the
    /// caller supplies as `input_report`.
    pub fn approximation_bound(
        &self,
        input_report: &CoverageReport,
        schema: &AccessSchema,
        db_size: u64,
    ) -> u64 {
        input_report.trace_bound(schema, db_size)
    }
}

/// Search for a covered relaxation of a CQ: an upper envelope (UEP, Theorem 4.4).
///
/// The search enumerates atom-removal sets in increasing size, so the returned envelope
/// removes a minimal number of atoms. Returns `Ok(None)` when no covered relaxation
/// exists (in particular when the query is not bounded, Lemma 4.2).
pub fn upper_envelope_cq(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    config: &EnvelopeConfig,
) -> Result<Option<UpperEnvelope>> {
    let own = coverage(query, schema);
    if own.is_covered() {
        return Ok(Some(UpperEnvelope {
            query: query.clone(),
            report: own,
            removed_atoms: Vec::new(),
        }));
    }
    // Lemma 4.2(a): an envelope with a constant bound can only exist for bounded queries.
    if !own.is_bounded() {
        return Ok(None);
    }

    let n = query.atoms().len();
    let mut examined: u64 = 0;
    for removal_size in 1..=n {
        let mut found: Option<UpperEnvelope> = None;
        for_each_combination(n, removal_size, &mut |subset| {
            examined += 1;
            if examined > config.max_candidates {
                return Err(Error::BudgetExhausted {
                    analysis: "upper envelope search".into(),
                    budget: config.max_candidates,
                });
            }
            let remove: BTreeSet<usize> = subset.iter().copied().collect();
            let Ok(candidate) = query.without_atoms(&remove) else {
                return Ok(false);
            };
            let report = coverage(&candidate, schema);
            if report.is_covered() {
                found = Some(UpperEnvelope {
                    query: candidate.with_name(format!("{}_upper", query.name())),
                    report,
                    removed_atoms: subset.to_vec(),
                });
                return Ok(true);
            }
            Ok(false)
        })?;
        if found.is_some() {
            return Ok(found);
        }
    }
    Ok(None)
}

/// Search for a covered, `A`-satisfiable `k`-expansion of a CQ: a lower envelope (LEP,
/// Theorem 4.7).
///
/// Two kinds of candidates are explored, mirroring the paper's discussion:
///
/// * **covering additions** — new atoms that place an uncovered variable of the query at
///   a `Y`-position of an access constraint whose `X`-positions hold determined
///   variables, so the constraint starts covering it;
/// * **atom splits** (Example 4.5) — an atom that no constraint indexes is replaced by
///   copies that are indexed, with fresh variables at the positions each copy does not
///   retain; `Qₗ ⊑_A Q` is then verified with the containment oracle.
///
/// The search is complete relative to this candidate space (which is the paper's own
/// characterization of when expansions help), and is budgeted by
/// [`EnvelopeConfig::max_candidates`].
pub fn lower_envelope_cq(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    catalog: &Catalog,
    k: usize,
    config: &EnvelopeConfig,
) -> Result<Option<LowerEnvelope>> {
    let own = coverage(query, schema);
    // Lemma 4.2: boundedness is necessary.
    if !own.is_bounded() {
        return Ok(None);
    }
    if own.is_covered() && is_a_satisfiable(query, schema, &config.reason)?.is_some() {
        return Ok(Some(LowerEnvelope {
            query: query.clone(),
            report: own,
            added_atoms: 0,
            used_split: false,
        }));
    }

    // Breadth-first search over expansions, by number of added atoms.
    #[derive(Clone)]
    struct Candidate {
        query: ConjunctiveQuery,
        added: usize,
        used_split: bool,
    }
    let mut frontier = vec![Candidate {
        query: query.clone(),
        added: 0,
        used_split: false,
    }];
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut examined: u64 = 0;

    while !frontier.is_empty() {
        let mut next = Vec::new();
        for cand in frontier {
            examined += 1;
            if examined > config.max_candidates {
                return Err(Error::BudgetExhausted {
                    analysis: "lower envelope search".into(),
                    budget: config.max_candidates,
                });
            }
            let report = coverage(&cand.query, schema);
            if report.is_covered()
                && is_a_satisfiable(&cand.query, schema, &config.reason)?.is_some()
            {
                let contained = if cand.used_split {
                    a_contained(&cand.query, query, schema, &config.reason)?
                } else {
                    // Pure expansions are contained in the original query by construction.
                    true
                };
                if contained {
                    return Ok(Some(LowerEnvelope {
                        query: cand.query.with_name(format!("{}_lower", query.name())),
                        report,
                        added_atoms: cand.added,
                        used_split: cand.used_split,
                    }));
                }
            }
            if cand.added >= k {
                continue;
            }
            for (child, is_split) in expansion_children(&cand.query, schema, catalog, &report)? {
                let signature = child.to_string();
                if seen.insert(signature) {
                    next.push(Candidate {
                        added: cand.added + child.atoms().len() - cand.query.atoms().len(),
                        used_split: cand.used_split || is_split,
                        query: child,
                    });
                }
            }
        }
        frontier = next;
    }
    Ok(None)
}

/// Generate one-step expansions of a query: covering additions and atom splits.
fn expansion_children(
    query: &ConjunctiveQuery,
    schema: &AccessSchema,
    catalog: &Catalog,
    report: &CoverageReport,
) -> Result<Vec<(ConjunctiveQuery, bool)>> {
    let mut children = Vec::new();
    let determined: Vec<_> = report
        .determined_vars()
        .iter()
        .map(|&v| query.var_name(v).to_owned())
        .collect();
    let uncovered: Vec<_> = query
        .vars()
        .filter(|v| !report.is_determined(*v))
        .map(|v| query.var_name(v).to_owned())
        .collect();

    // Covering additions: place an uncovered variable at a Y-position of a constraint
    // whose X-positions are filled with determined variables.
    for constraint in schema.constraints() {
        let Ok(rel) = catalog.relation(constraint.relation()) else {
            continue;
        };
        // Choices for the X positions: determined variables (all combinations).
        let x_positions = constraint.x();
        let mut x_choices: Vec<Vec<&String>> = vec![Vec::new()];
        for _ in x_positions {
            let mut extended = Vec::new();
            for partial in &x_choices {
                for d in &determined {
                    let mut p = partial.clone();
                    p.push(d);
                    extended.push(p);
                }
            }
            x_choices = extended;
        }
        for target in &uncovered {
            for &y_pos in constraint.y() {
                for xc in &x_choices {
                    let mut fresh_counter = 0usize;
                    let args: Vec<Arg> = (0..rel.arity())
                        .map(|p| {
                            if p == y_pos {
                                Arg::Var(target.clone())
                            } else if let Some(idx) = x_positions.iter().position(|&xp| xp == p) {
                                Arg::Var(xc[idx].clone())
                            } else {
                                fresh_counter += 1;
                                Arg::Var(query.fresh_name(&format!("_exp{fresh_counter}")))
                            }
                        })
                        .collect();
                    let mut builder = query.to_builder();
                    builder = builder.atom(constraint.relation(), args);
                    if let Ok(child) = builder.build(catalog) {
                        children.push((child, false));
                    }
                }
            }
        }
    }

    // Atom splits (Example 4.5): replace an unindexed atom by one indexed copy per
    // constraint pair, keeping the original argument only at the positions the copy's
    // constraint spans.
    for (atom_index, witness) in report.atom_witness().iter().enumerate() {
        if witness.is_some() {
            continue;
        }
        let atom = query.atoms()[atom_index].clone();
        let constraints: Vec<_> = schema.constraints_for(&atom.relation).collect();
        for (i, (_, c1)) in constraints.iter().enumerate() {
            for (_, c2) in constraints.iter().skip(i) {
                let Ok(rel) = catalog.relation(&atom.relation) else {
                    continue;
                };
                let copy_for = |c: &crate::access::AccessConstraint, tag: &str| -> Vec<Arg> {
                    let xy = c.xy();
                    (0..rel.arity())
                        .map(|p| {
                            if xy.contains(&p) {
                                Arg::Var(query.var_name(atom.args[p]).to_owned())
                            } else {
                                Arg::Var(query.fresh_name(&format!("_split_{tag}_{p}")))
                            }
                        })
                        .collect()
                };
                // Replace the atom inside a builder (rather than via `without_atoms`,
                // whose safety check would reject dropping the atom before the indexed
                // copies are added back).
                let mut builder = query.to_builder();
                builder.atoms.remove(atom_index);
                builder = builder.atom(atom.relation.clone(), copy_for(c1, "a"));
                builder = builder.atom(atom.relation.clone(), copy_for(c2, "b"));
                if let Ok(child) = builder.build(catalog) {
                    children.push((child, true));
                }
            }
        }
    }
    Ok(children)
}

/// Upper envelope for a union of conjunctive queries (Lemma 4.3): every branch needs a
/// covered relaxation, or all of its `A`-instances must be answered by the relaxations of
/// the other branches. The returned union consists of the per-branch relaxations.
pub fn upper_envelope_ucq(
    query: &UnionQuery,
    schema: &AccessSchema,
    config: &EnvelopeConfig,
) -> Result<Option<UnionQuery>> {
    let mut relaxed = Vec::new();
    let mut unrelaxed: Vec<&ConjunctiveQuery> = Vec::new();
    for branch in query.branches() {
        match upper_envelope_cq(branch, schema, config)? {
            Some(env) => relaxed.push(env.query),
            None => unrelaxed.push(branch),
        }
    }
    if relaxed.is_empty() {
        return Ok(None);
    }
    // Branches with no covered relaxation must be subsumed by the relaxed ones: every
    // A-instance of such a branch must be answered by some relaxation (which over-approximates
    // the corresponding original branch, so answering is preserved).
    let relaxed_union = UnionQuery::from_branches(format!("{}_upper", query.name()), relaxed)?;
    for branch in unrelaxed {
        if !crate::reason::containment::a_contained_in_union(
            branch,
            &relaxed_union,
            schema,
            &config.reason,
        )? {
            return Ok(None);
        }
    }
    Ok(Some(relaxed_union))
}

/// Lower envelope for a union of conjunctive queries (Lemma 4.6): the union must be
/// bounded and some branch must have a covered, `A`-satisfiable `k`-expansion; that
/// expansion (as a single-branch union) is a lower envelope of the whole union.
pub fn lower_envelope_ucq(
    query: &UnionQuery,
    schema: &AccessSchema,
    catalog: &Catalog,
    k: usize,
    config: &EnvelopeConfig,
) -> Result<Option<UnionQuery>> {
    // Lemma 4.2(c): the union is bounded iff every branch is bounded.
    for branch in query.branches() {
        if !coverage(branch, schema).is_bounded() {
            return Ok(None);
        }
    }
    for branch in query.branches() {
        if let Some(env) = lower_envelope_cq(branch, schema, catalog, k, config)? {
            return Ok(Some(UnionQuery::from_branches(
                format!("{}_lower", query.name()),
                vec![env.query],
            )?));
        }
    }
    Ok(None)
}

/// Enumerate all `size`-subsets of `0..n` in lexicographic order, visiting each; the
/// visitor returns `Ok(true)` to stop.
fn for_each_combination(
    n: usize,
    size: usize,
    visit: &mut dyn FnMut(&[usize]) -> Result<bool>,
) -> Result<bool> {
    fn rec(
        start: usize,
        n: usize,
        remaining: usize,
        current: &mut Vec<usize>,
        visit: &mut dyn FnMut(&[usize]) -> Result<bool>,
    ) -> Result<bool> {
        if remaining == 0 {
            return visit(current);
        }
        for i in start..n {
            if n - i < remaining {
                break;
            }
            current.push(i);
            if rec(i + 1, n, remaining - 1, current, visit)? {
                current.pop();
                return Ok(true);
            }
            current.pop();
        }
        Ok(false)
    }
    if size > n {
        return Ok(false);
    }
    rec(0, n, size, &mut Vec::with_capacity(size), visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConstraint;
    use crate::value::Value;

    /// The schema of Example 4.1: R(A, B) with R(A → B, N).
    fn example_4_1() -> (Catalog, AccessSchema) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 6).unwrap()
        ]);
        (c, a)
    }

    /// Q1 of Example 4.1: not boundedly evaluable, but has both envelopes.
    fn q1(c: &Catalog) -> ConjunctiveQuery {
        ConjunctiveQuery::builder("Q1")
            .head(["x"])
            .atom("R", ["w", "x"])
            .atom("R", ["y", "w"])
            .atom("R", ["x", "z"])
            .eq("w", 1i64)
            .build(c)
            .unwrap()
    }

    /// Q2 of Example 4.1: not bounded, hence no envelopes.
    fn q2(c: &Catalog) -> ConjunctiveQuery {
        ConjunctiveQuery::builder("Q2")
            .head(["x", "y"])
            .atom("R", ["w", "x"])
            .atom("R", ["y", "w"])
            .eq("w", 1i64)
            .build(c)
            .unwrap()
    }

    #[test]
    fn example_4_1_q1_has_an_upper_envelope() {
        let (_, a) = example_4_1();
        let c = {
            let mut c = Catalog::new();
            c.declare("R", ["a", "b"]).unwrap();
            c
        };
        let q1 = q1(&c);
        assert!(!crate::cover::is_covered(&q1, &a));
        let env = upper_envelope_cq(&q1, &a, &EnvelopeConfig::default())
            .unwrap()
            .expect("Q1 has an upper envelope (Example 4.1)");
        // The paper's Qu removes the atom R(y, w); one removal suffices.
        assert_eq!(env.removed_atoms.len(), 1);
        assert_eq!(env.query.atoms().len(), 2);
        assert!(env.report.is_covered());
        // Nu is a constant derived from A (here: the key has one value, so ≤ N · N).
        let nu = env.approximation_bound(&a, 1_000_000).unwrap();
        assert!(nu <= 6 * 6);
        // The envelope contains the original query on all instances.
        assert!(crate::reason::containment::classically_contained(&q1, &env.query).unwrap());
    }

    #[test]
    fn example_4_1_q1_has_a_lower_envelope() {
        let (c, a) = example_4_1();
        let q1 = q1(&c);
        let env = lower_envelope_cq(&q1, &a, &c, 2, &EnvelopeConfig::default())
            .unwrap()
            .expect("Q1 has a lower envelope (Example 4.1)");
        assert!(env.added_atoms >= 1);
        assert!(env.report.is_covered());
        // The lower envelope is contained in the original query under A.
        assert!(a_contained(&env.query, &q1, &a, &ReasonConfig::default()).unwrap());
        // And it is A-satisfiable (non-trivial).
        assert!(is_a_satisfiable(&env.query, &a, &ReasonConfig::default())
            .unwrap()
            .is_some());
        // The bound Nl is derived from the input query's coverage fixpoint.
        let input_report = coverage(&q1, &a);
        assert!(env.approximation_bound(&input_report, &a, 1_000) >= 1);
    }

    #[test]
    fn example_4_1_q2_has_no_envelopes() {
        let (c, a) = example_4_1();
        let q2 = q2(&c);
        // y is a free variable that A cannot cover: Q2 is not bounded.
        assert!(!crate::cover::is_bounded(&q2, &a));
        assert!(upper_envelope_cq(&q2, &a, &EnvelopeConfig::default())
            .unwrap()
            .is_none());
        assert!(
            lower_envelope_cq(&q2, &a, &c, 3, &EnvelopeConfig::default())
                .unwrap()
                .is_none()
        );
    }

    /// Example 4.5: Q(x, y) = R(1, x, y) under {R(A → B, N), R(B → C, 1)} has a covered
    /// 1-expansion obtained by splitting the unindexed atom.
    #[test]
    fn example_4_5_split_expansion() {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b", "cc"]).unwrap();
        let a = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 5).unwrap(),
            AccessConstraint::new(&c, "R", &["b"], &["cc"], 1).unwrap(),
        ]);
        let q = ConjunctiveQuery::builder("Q")
            .head(["x", "y"])
            .atom("R", [Arg::val(Value::int(1)), Arg::var("x"), Arg::var("y")])
            .build(&c)
            .unwrap();
        assert!(!crate::cover::is_covered(&q, &a));
        assert!(crate::cover::is_bounded(&q, &a));

        let env = lower_envelope_cq(&q, &a, &c, 1, &EnvelopeConfig::default())
            .unwrap()
            .expect("Example 4.5 has a 1-expansion lower envelope");
        assert!(env.used_split);
        assert!(env.report.is_covered());
        // The split envelope is A-equivalent to Q here (the paper's Q′), so containment
        // holds in both directions.
        assert!(a_contained(&env.query, &q, &a, &ReasonConfig::default()).unwrap());
        assert!(a_contained(&q, &env.query, &a, &ReasonConfig::default()).unwrap());
    }

    #[test]
    fn covered_query_is_its_own_envelope() {
        let (c, a) = example_4_1();
        let q = ConjunctiveQuery::builder("Q")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let upper = upper_envelope_cq(&q, &a, &EnvelopeConfig::default())
            .unwrap()
            .unwrap();
        assert!(upper.removed_atoms.is_empty());
        let lower = lower_envelope_cq(&q, &a, &c, 1, &EnvelopeConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(lower.added_atoms, 0);
    }

    #[test]
    fn ucq_envelopes() {
        let (c, a) = example_4_1();
        let covered_branch = ConjunctiveQuery::builder("Qc")
            .head(["x"])
            .atom("R", ["w", "x"])
            .eq("w", 1i64)
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Q", vec![q1(&c), covered_branch]).unwrap();
        let upper = upper_envelope_ucq(&union, &a, &EnvelopeConfig::default())
            .unwrap()
            .expect("both branches have covered relaxations");
        assert_eq!(upper.len(), 2);

        let lower = lower_envelope_ucq(&union, &a, &c, 2, &EnvelopeConfig::default())
            .unwrap()
            .expect("some branch has a covered expansion");
        assert_eq!(lower.len(), 1);

        // A union containing an unbounded branch has no envelopes (Lemma 4.2(c)). Here
        // the extra branch's free variable cannot be covered by the key-side index.
        let unbounded_branch = ConjunctiveQuery::builder("Qu")
            .head(["y"])
            .atom("R", ["x", "y"])
            .build(&c)
            .unwrap();
        let unbounded = UnionQuery::from_branches("U", vec![unbounded_branch, q1(&c)]).unwrap();
        assert!(
            lower_envelope_ucq(&unbounded, &a, &c, 2, &EnvelopeConfig::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn combination_enumeration() {
        let mut seen = Vec::new();
        for_each_combination(4, 2, &mut |c| {
            seen.push(c.to_vec());
            Ok(false)
        })
        .unwrap();
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![0, 3]));
        // Early stop.
        let mut count = 0;
        let stopped = for_each_combination(5, 2, &mut |_| {
            count += 1;
            Ok(count == 3)
        })
        .unwrap();
        assert!(stopped);
        assert_eq!(count, 3);
        // Degenerate cases.
        assert!(!for_each_combination(2, 5, &mut |_| Ok(false)).unwrap());
    }

    #[test]
    fn budget_is_enforced() {
        let (c, a) = example_4_1();
        let q = q1(&c);
        let tiny = EnvelopeConfig {
            max_candidates: 1,
            reason: ReasonConfig::default(),
        };
        // The first candidate of the upper search is not covered, so the second one trips
        // the budget.
        let result = upper_envelope_cq(&q, &a, &tiny);
        assert!(matches!(result, Err(Error::BudgetExhausted { .. })));
    }
}

//! The bounded plan executor.
//!
//! Executes a [`QueryPlan`] against an [`IndexedDatabase`]. Every `fetch` goes through
//! the hash index of its backing access constraint; nothing in this executor ever scans a
//! relation, so the amount of data read is exactly what the plan's cost model bounds.
//!
//! Two execution strategies share this entry point, selected by
//! [`ExecOptions::streaming`]:
//!
//! * **streaming** (the default) — the plan is lowered to a
//!   [`bea_core::plan::PhysicalPlan`] and run by the batch pipeline in [`crate::ops`]:
//!   intermediate results flow through operators in bounded batches, and only genuine
//!   pipeline breakers hold rows. Peak memory residency tracks the access-schema bounds.
//!   With [`ExecOptions::threads`] > 1 the plan is lowered with exchange points and its
//!   independent pipelines run on scoped worker threads (see the [`crate::ops`] docs
//!   for the threading model); data access is identical at every thread count.
//! * **materialized** — the historical step loop below: one [`Table`] per plan step,
//!   all of them alive until the end. Kept as the ablation baseline (and, with
//!   [`ExecOptions::defer_products`] off, as the literal plan semantics).
//!
//! Both strategies perform the same index lookups and fetch the same tuples; see
//! [`AccessStats::same_data_access`].

use crate::ops;
use crate::stats::AccessStats;
use crate::table::Table;
use bea_core::error::{Error, Result};
use bea_core::plan::{
    keys_all_tied, lower_plan_with, residual_predicates, LowerOptions, PhysicalPlan, PlanOp,
    Predicate, QueryPlan,
};
use bea_core::value::Row;
use bea_storage::{IndexedDatabase, Store};
use std::collections::BTreeSet;

/// Environment variable overriding the automatic worker-thread count (used by the CI
/// matrix to run the whole test suite at a fixed parallelism). An explicit
/// [`ExecOptions::with_threads`] beats the environment.
pub const THREADS_ENV: &str = "BEA_THREADS";

/// Environment variable overriding the automatic morsel size (rows per intra-pipeline
/// work unit; see [`ExecOptions::morsel_size`]). An explicit
/// [`ExecOptions::with_morsel_size`] beats the environment.
pub const MORSELS_ENV: &str = "BEA_MORSELS";

/// The automatic morsel size: one full batch per morsel, the finest split that keeps
/// batch boundaries (and therefore every per-batch counter charge) intact.
pub const DEFAULT_MORSEL_ROWS: usize = 1024;

/// Options controlling plan execution.
///
/// The struct is `#[non_exhaustive]`: construct it with [`ExecOptions::new`] (or
/// [`Default`]) and adjust knobs through the `with_*` methods, so adding future knobs is
/// not a breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ExecOptions {
    /// Execute through the streaming batch pipeline (lowering the plan to a physical
    /// plan first). On by default; off selects the materialized step loop.
    pub streaming: bool,
    /// In the materialized strategy, run the deferred-product peephole:
    /// `σ[key equalities](source × fetch)` patterns execute as hash joins instead of
    /// materializing the cross product. On by default; the switch exists so tests and
    /// ablations can compare against the literal plan semantics. (The streaming
    /// strategy subsumes this via keyed-lookup fusion during lowering.)
    pub defer_products: bool,
    /// Worker threads for the streaming pipeline. `0` (the default) resolves
    /// automatically: the [`THREADS_ENV`] environment variable if set, otherwise the
    /// machine's available parallelism. `1` runs every pipeline on the calling thread
    /// and reproduces the historical single-threaded streaming behavior exactly;
    /// `> 1` lowers with exchange points and schedules independent pipelines on scoped
    /// worker threads (see `bea_core::plan::physical` and the `ops` module docs).
    /// Ignored by the materialized strategy.
    pub threads: usize,
    /// Target rows per **morsel** — the unit in which the parallel scheduler splits a
    /// morsel-splittable pipeline's probe stream across the worker pool (see
    /// `bea_core::plan::Pipeline::morsel_source`). A morsel is a group of consecutive
    /// whole source batches totaling at least this many rows; batches are never cut,
    /// so every per-batch counter charge is identical at any morsel size. `0` (the
    /// default) resolves automatically: the [`MORSELS_ENV`] environment variable if
    /// set, otherwise [`DEFAULT_MORSEL_ROWS`]. `usize::MAX` forces a single morsel
    /// (the unsplit pipeline). Only multi-threaded streaming runs split; results and
    /// every deterministic counter are morsel-size-invariant — only wall clock moves.
    pub morsel_size: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            streaming: true,
            defer_products: true,
            threads: 0,
            morsel_size: 0,
        }
    }
}

impl ExecOptions {
    /// The default options: streaming execution, automatic thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// The materialized step-loop strategy (ablation baseline).
    pub fn materialized() -> Self {
        Self::new().with_streaming(false)
    }

    /// Set whether execution goes through the streaming pipeline.
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Set whether the materialized strategy defers keyed products into hash joins.
    pub fn with_defer_products(mut self, defer_products: bool) -> Self {
        self.defer_products = defer_products;
        self
    }

    /// Set the worker-thread count for the streaming pipeline (0 = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the target rows per morsel (0 = automatic, `usize::MAX` = never split).
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size;
        self
    }

    /// The effective worker-thread count: the explicit [`ExecOptions::threads`] if
    /// nonzero, else the [`THREADS_ENV`] environment variable, else the machine's
    /// available parallelism (1 if unknown). A set-but-invalid variable
    /// (`BEA_THREADS=four`) panics with the rejection reason instead of silently
    /// falling back to automatic — a CI matrix typo must fail the job, not quietly
    /// test the wrong thread count. `BEA_THREADS=0` and the empty string mean
    /// "automatic", mirroring [`ExecOptions::threads`].
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(threads) = bea_core::env::read_env(THREADS_ENV, parse_threads).flatten() {
            return threads;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The effective morsel size: the explicit [`ExecOptions::morsel_size`] if
    /// nonzero, else the [`MORSELS_ENV`] environment variable, else
    /// [`DEFAULT_MORSEL_ROWS`]. Follows the same loud-failure contract as
    /// [`ExecOptions::resolved_threads`]: a set-but-invalid variable
    /// (`BEA_MORSELS=big`) panics with the rejection reason instead of silently
    /// benchmarking the wrong split; `BEA_MORSELS=0` and the empty string mean
    /// "automatic".
    pub fn resolved_morsel_size(&self) -> usize {
        if self.morsel_size > 0 {
            return self.morsel_size;
        }
        bea_core::env::read_env(MORSELS_ENV, parse_morsels)
            .flatten()
            .unwrap_or(DEFAULT_MORSEL_ROWS)
    }
}

/// Parse a [`THREADS_ENV`] value. `Ok(Some(n))` is an explicit worker count;
/// `Ok(None)` means "automatic" (`0`, or the empty string — the `BEA_THREADS= cmd`
/// shell idiom); anything unparsable is an error naming the reason. The rejection
/// rules are the shared [`bea_core::env`] contract, and the parser stays a pure
/// function so they are testable without mutating the process environment (which
/// would race parallel tests).
pub fn parse_threads(value: &str) -> std::result::Result<Option<usize>, String> {
    Ok(bea_core::env::parse_count(value)?
        .auto_when_zero()
        .map(|threads| threads as usize))
}

/// Parse a [`MORSELS_ENV`] value. `Ok(Some(n))` is an explicit rows-per-morsel target;
/// `Ok(None)` means "automatic" (`0`, or the empty string); anything unparsable is an
/// error naming the reason. Same shared contract — and the same
/// testable-without-the-environment split — as [`parse_threads`].
pub fn parse_morsels(value: &str) -> std::result::Result<Option<usize>, String> {
    Ok(bea_core::env::parse_count(value)?
        .auto_when_zero()
        .map(|rows| rows as usize))
}

/// Execute a physical plan with the default options (streaming, automatic threads).
pub fn execute_physical(
    plan: &PhysicalPlan,
    database: &IndexedDatabase,
) -> Result<(Table, AccessStats)> {
    execute_physical_with_options(plan, database, &ExecOptions::default())
}

/// Execute an already-lowered physical plan under explicit [`ExecOptions`] (only the
/// thread count applies — the lowering knobs were decided when `plan` was built).
pub fn execute_physical_with_options(
    plan: &PhysicalPlan,
    database: &IndexedDatabase,
    options: &ExecOptions,
) -> Result<(Table, AccessStats)> {
    execute_physical_on(plan, Store::Indexed(database), options)
}

/// [`execute_physical_with_options`] against either store flavor — pass
/// `Store::Sharded(&sharded)` to run a shard-fanned plan against the index partitions
/// that own its keys.
pub fn execute_physical_on(
    plan: &PhysicalPlan,
    store: Store<'_>,
    options: &ExecOptions,
) -> Result<(Table, AccessStats)> {
    ops::execute(
        plan,
        store,
        options.resolved_threads(),
        options.resolved_morsel_size(),
    )
}

/// Execute a plan, returning the output table and the access statistics.
pub fn execute_plan(plan: &QueryPlan, database: &IndexedDatabase) -> Result<(Table, AccessStats)> {
    execute_plan_with_options(plan, database, &ExecOptions::default())
}

/// Execute a plan under explicit [`ExecOptions`].
pub fn execute_plan_with_options(
    plan: &QueryPlan,
    database: &IndexedDatabase,
    options: &ExecOptions,
) -> Result<(Table, AccessStats)> {
    execute_plan_on(plan, Store::Indexed(database), options)
}

/// Execute a plan under explicit [`ExecOptions`] against either store flavor.
///
/// When the store is sharded, the streaming strategy lowers the plan with a shard
/// fan-out equal to the store's shard count: every keyed fetch becomes one branch per
/// shard, each probing only the index partition that owns its keys (see
/// `bea_core::plan::physical`). The materialized strategy routes each fetch to the
/// owning shard inside the store instead. Either way the answers, the data-access
/// totals and the copy traffic are identical to an unsharded run — only the per-shard
/// fetch distribution (`AccessStats::rows_fetched_by_shard`) and the pipeline
/// decomposition change.
pub fn execute_plan_on(
    plan: &QueryPlan,
    store: Store<'_>,
    options: &ExecOptions,
) -> Result<(Table, AccessStats)> {
    if options.streaming {
        let threads = options.resolved_threads();
        // Multi-threaded runs lower with exchange points so the pipeline DAG gains
        // parallel width; single-threaded runs keep the minimal (lowest-residency)
        // breaker set. Exchange points never change what is fetched, and neither does
        // the shard fan-out (it partitions the probe keys without altering their set).
        let lower_options = LowerOptions::new()
            .with_exchange_parallelism(threads > 1)
            .with_shard_fanout(store.shard_count());
        let physical = lower_plan_with(plan, &lower_options)?;
        return ops::execute(&physical, store, threads, options.resolved_morsel_size());
    }
    execute_plan_materialized(plan, store, options)
}

/// The materialized step loop: every plan step produces a full [`Table`], all of which
/// stay resident until the end (reflected in `peak_rows_resident`).
fn execute_plan_materialized(
    plan: &QueryPlan,
    store: Store<'_>,
    options: &ExecOptions,
) -> Result<(Table, AccessStats)> {
    plan.validate()?;
    validate_fetches_for(plan, store)?;
    let mut stats = AccessStats::default();
    let mut resident: u64 = 0;
    let mut results: Vec<Table> = Vec::with_capacity(plan.len());

    // Peephole: plan synthesis joins a fetch back against its source with
    // `σ[key equalities](source × fetch)`. Materializing the cross product first is
    // wasteful (it is |source| · |fetch| rows even though each source row matches at most
    // N fetched rows), so products that are consumed *only* by such a selection are
    // deferred and the selection is executed as a hash join.
    let deferred_products = if options.defer_products {
        find_deferred_products(plan)
    } else {
        BTreeSet::new()
    };

    for (node, step) in plan.steps().iter().enumerate() {
        if deferred_products.contains(&node) {
            // Placeholder; the consuming selection reads the operands directly.
            results.push(Table::new(step.columns.clone()));
            continue;
        }
        let table = match &step.op {
            PlanOp::Const { value } => {
                Table::with_rows(step.columns.clone(), vec![vec![value.clone()]])
            }
            PlanOp::Unit => Table::with_rows(step.columns.clone(), vec![Vec::new()]),
            PlanOp::Empty { .. } => Table::new(step.columns.clone()),
            PlanOp::Fetch {
                source,
                key_cols,
                relation,
                x_attrs,
                y_attrs,
                constraint_index,
            } => {
                let src = &results[*source];
                // Distinct keys only: fetching the same key twice reads the same data.
                let keys: BTreeSet<Row> = src
                    .rows()
                    .iter()
                    .map(|row| key_cols.iter().map(|&c| row[c].clone()).collect())
                    .collect();
                // Every candidate key projection is cloned before the set dedups.
                stats.values_cloned += (src.len() * key_cols.len()) as u64;
                let mut out = Table::new(step.columns.clone());
                let positions: Vec<usize> = x_attrs.iter().chain(y_attrs.iter()).copied().collect();
                for key in keys {
                    stats.index_lookups += 1;
                    let (fetched, shard) = store.fetch_iter(*constraint_index, &key)?;
                    stats.record_fetched_sharded(relation, shard, fetched.len() as u64);
                    stats.values_cloned += (fetched.len() * positions.len()) as u64;
                    for tuple in fetched {
                        out.push(positions.iter().map(|&p| tuple[p].clone()).collect());
                    }
                }
                stats.fetch_ops += 1;
                dedup_counted(&mut out, &mut stats);
                out
            }
            PlanOp::Project { source, cols } => {
                let src = &results[*source];
                let mut out = Table::new(step.columns.clone());
                stats.values_cloned += (src.len() * cols.len()) as u64;
                for row in src.rows() {
                    out.push(cols.iter().map(|&c| row[c].clone()).collect());
                }
                dedup_counted(&mut out, &mut stats);
                out
            }
            PlanOp::Select { source, predicates } => {
                if deferred_products.contains(source) {
                    execute_keyed_join(
                        plan,
                        &results,
                        *source,
                        predicates,
                        &step.columns,
                        &mut stats,
                    )?
                } else {
                    let src = &results[*source];
                    let mut out = Table::new(step.columns.clone());
                    for row in src.rows() {
                        let keep = predicates.iter().all(|p| match p {
                            Predicate::ColEqCol(a, b) => row[*a] == row[*b],
                            Predicate::ColEqConst(a, c) => &row[*a] == c,
                        });
                        if keep {
                            out.push(row.clone());
                        }
                    }
                    stats.values_cloned += (out.len() * out.arity()) as u64;
                    out
                }
            }
            PlanOp::Product { left, right } => {
                let (l, r) = (&results[*left], &results[*right]);
                let mut out = Table::new(step.columns.clone());
                for lrow in l.rows() {
                    for rrow in r.rows() {
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().cloned());
                        out.push(row);
                    }
                }
                stats.product_rows_materialized += (l.len() * r.len()) as u64;
                stats.values_cloned += (l.len() * r.len() * (l.arity() + r.arity())) as u64;
                out
            }
            PlanOp::Union { left, right } => {
                let (l, r) = (&results[*left], &results[*right]);
                let mut out = Table::new(step.columns.clone());
                for row in l.rows().iter().chain(r.rows().iter()) {
                    out.push(row.clone());
                }
                stats.values_cloned += (out.len() * out.arity()) as u64;
                dedup_counted(&mut out, &mut stats);
                out
            }
            PlanOp::Difference { left, right } => {
                let (l, r) = (&results[*left], &results[*right]);
                let remove = r.row_set();
                stats.values_cloned += (r.len() * r.arity()) as u64;
                let mut out = Table::new(step.columns.clone());
                for row in l.rows() {
                    if !remove.contains(row) {
                        out.push(row.clone());
                    }
                }
                stats.values_cloned += (out.len() * out.arity()) as u64;
                out
            }
            PlanOp::Rename { source } => {
                let src = &results[*source];
                stats.values_cloned += (src.len() * src.arity()) as u64;
                Table::with_rows(step.columns.clone(), src.rows().to_vec())
            }
        };
        // Every step's table stays alive until the end of the loop, so residency only
        // ever grows: the high-water mark is the sum of all intermediate sizes.
        resident += table.len() as u64;
        stats.peak_rows_resident = stats.peak_rows_resident.max(resident);
        results.push(table);
    }

    let mut output = results
        .into_iter()
        .nth(plan.output())
        .ok_or_else(|| Error::InvalidPlan {
            reason: "plan output node is missing".into(),
        })?;
    dedup_counted(&mut output, &mut stats);
    Ok((output, stats))
}

/// Deduplicate a step table, accounting the row clones the membership set performs
/// (one clone of every candidate row) in `values_cloned`.
fn dedup_counted(table: &mut Table, stats: &mut AccessStats) {
    stats.values_cloned += (table.len() * table.arity()) as u64;
    table.dedup();
}

/// Validate every fetch of a logical plan against the store it is about to run on,
/// through the same [`ops::validate_fetch_shape`] check the physical executor applies
/// at its entry. [`QueryPlan::validate`] covers step wiring and predicate column
/// bounds; together they make malformed plans fail *before* execution instead of
/// panicking mid-loop on an out-of-range index.
fn validate_fetches_for(plan: &QueryPlan, store: Store<'_>) -> Result<()> {
    for (i, step) in plan.steps().iter().enumerate() {
        let PlanOp::Fetch {
            relation,
            key_cols,
            x_attrs,
            y_attrs,
            constraint_index,
            ..
        } = &step.op
        else {
            continue;
        };
        ops::validate_fetch_shape(
            store,
            &format!("plan step {i}"),
            relation,
            key_cols,
            x_attrs.iter().chain(y_attrs.iter()),
            *constraint_index,
        )?;
    }
    Ok(())
}

/// Product nodes of the shape `source × fetch(X ∈ source, …)` whose only consumer is a
/// selection that equates every key column: these can be executed as hash joins by the
/// consuming selection instead of being materialized.
fn find_deferred_products(plan: &QueryPlan) -> std::collections::BTreeSet<usize> {
    use std::collections::BTreeSet;
    let steps = plan.steps();

    // Count consumers of every node (including the output marker).
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); steps.len()];
    for (i, step) in steps.iter().enumerate() {
        let mut add = |j: usize| consumers[j].push(i);
        match &step.op {
            PlanOp::Fetch { source, .. }
            | PlanOp::Project { source, .. }
            | PlanOp::Select { source, .. }
            | PlanOp::Rename { source } => add(*source),
            PlanOp::Product { left, right }
            | PlanOp::Union { left, right }
            | PlanOp::Difference { left, right } => {
                add(*left);
                add(*right);
            }
            PlanOp::Const { .. } | PlanOp::Unit | PlanOp::Empty { .. } => {}
        }
    }

    let mut deferred = BTreeSet::new();
    for (i, step) in steps.iter().enumerate() {
        let PlanOp::Select { source, predicates } = &step.op else {
            continue;
        };
        if plan.output() == *source {
            continue;
        }
        let PlanOp::Product { left, right } = &steps[*source].op else {
            continue;
        };
        let PlanOp::Fetch {
            source: fetch_source,
            key_cols,
            ..
        } = &steps[*right].op
        else {
            continue;
        };
        if fetch_source != left || consumers[*source].len() != 1 {
            continue;
        }
        let left_arity = steps[*left].columns.len();
        // Same pattern test as physical lowering's keyed-lookup fusion, shared so the
        // two strategies can never drift apart.
        if keys_all_tied(predicates, key_cols, left_arity) {
            deferred.insert(*source);
        }
        let _ = i;
    }
    deferred
}

/// Execute `σ[predicates](left × fetch)` as a hash join of `left` and the fetched table
/// on the fetch's key columns, then apply the remaining predicates.
fn execute_keyed_join(
    plan: &QueryPlan,
    results: &[Table],
    product_node: usize,
    predicates: &[Predicate],
    columns: &[String],
    stats: &mut AccessStats,
) -> Result<Table> {
    let PlanOp::Product { left, right } = &plan.steps()[product_node].op else {
        return Err(Error::InvalidPlan {
            reason: "deferred node is not a product".into(),
        });
    };
    let PlanOp::Fetch { key_cols, .. } = &plan.steps()[*right].op else {
        return Err(Error::InvalidPlan {
            reason: "deferred product's right operand is not a fetch".into(),
        });
    };
    let left_table = &results[*left];
    let right_table = &results[*right];
    let left_arity = left_table.arity();

    // Hash the fetched rows on their key columns (the first |X| output columns),
    // pre-sizing the table from the build side's row count.
    let mut buckets: std::collections::HashMap<Vec<_>, Vec<&bea_core::value::Row>> =
        std::collections::HashMap::with_capacity(right_table.len());
    stats.values_cloned += (right_table.len() * key_cols.len()) as u64;
    for row in right_table.rows() {
        let key: Vec<_> = (0..key_cols.len()).map(|k| row[k].clone()).collect();
        buckets.entry(key).or_default().push(row);
    }

    // Predicates other than the key equalities still need checking.
    let residual = residual_predicates(predicates, key_cols, left_arity);

    let mut out = Table::new(columns.to_vec());
    // One probe-key gather per probe row.
    stats.values_cloned += (left_table.len() * key_cols.len()) as u64;
    for lrow in left_table.rows() {
        let key: Vec<_> = key_cols.iter().map(|&c| lrow[c].clone()).collect();
        let Some(matches) = buckets.get(&key) else {
            continue;
        };
        for rrow in matches {
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            let keep = residual.iter().all(|p| match p {
                Predicate::ColEqCol(a, b) => row[*a] == row[*b],
                Predicate::ColEqConst(a, c) => &row[*a] == c,
            });
            if keep {
                out.push(row);
            }
        }
    }
    stats.values_cloned += (out.len() * out.arity()) as u64;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::access::{AccessConstraint, AccessSchema};
    use bea_core::plan::bounded_plan;
    use bea_core::query::cq::ConjunctiveQuery;
    use bea_core::query::term::Arg;
    use bea_core::schema::Catalog;
    use bea_core::value::Value;
    use bea_storage::Database;

    fn setup() -> (Catalog, AccessSchema, IndexedDatabase) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap(),
            AccessConstraint::new(&c, "R", &["b"], &["a"], 10).unwrap(),
        ]);
        let mut db = Database::new(c.clone());
        db.extend(
            "R",
            [
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(11)],
                vec![Value::int(2), Value::int(10)],
                vec![Value::int(3), Value::int(30)],
            ],
        )
        .unwrap();
        let idb = IndexedDatabase::build(db, schema.clone()).unwrap();
        (c, schema, idb)
    }

    #[test]
    fn thread_env_values_are_validated() {
        assert_eq!(parse_threads("4").unwrap(), Some(4));
        assert_eq!(parse_threads(" 2 ").unwrap(), Some(2));
        assert_eq!(parse_threads("0").unwrap(), None, "0 means automatic");
        assert_eq!(parse_threads("").unwrap(), None, "empty means unset");
        // The silent-fallback bug: `BEA_THREADS=four` used to mean "automatic"
        // without a word. Every malformed value must now carry a rejection reason.
        assert!(parse_threads("four").unwrap_err().contains("integer"));
        assert!(parse_threads("-1").is_err());
        assert!(parse_threads("2 threads").is_err());
        // The resolved count honors whatever the CI matrix set for this process (the
        // panic path cannot be exercised here without racing parallel tests on the
        // process environment — hence the pure parser above).
        let resolved = ExecOptions::new().resolved_threads();
        match std::env::var(THREADS_ENV) {
            Ok(value) => match parse_threads(&value).unwrap() {
                Some(threads) => assert_eq!(resolved, threads),
                None => assert!(resolved >= 1),
            },
            Err(_) => assert!(resolved >= 1),
        }
        // An explicit thread count always beats the environment.
        assert_eq!(ExecOptions::new().with_threads(3).resolved_threads(), 3);
    }

    #[test]
    fn morsel_env_values_are_validated() {
        assert_eq!(parse_morsels("512").unwrap(), Some(512));
        assert_eq!(parse_morsels(" 64 ").unwrap(), Some(64));
        assert_eq!(parse_morsels("0").unwrap(), None, "0 means automatic");
        assert_eq!(parse_morsels("").unwrap(), None, "empty means unset");
        // Same loud-failure contract as BEA_THREADS: a typo must fail the run, not
        // silently benchmark the default split.
        assert!(parse_morsels("big").unwrap_err().contains("integer"));
        assert!(parse_morsels("-8").is_err());
        assert!(parse_morsels("1k").is_err());
        // An explicit morsel size always beats the environment; the automatic default
        // honors whatever the environment set for this process.
        assert_eq!(
            ExecOptions::new()
                .with_morsel_size(7)
                .resolved_morsel_size(),
            7
        );
        let resolved = ExecOptions::new().resolved_morsel_size();
        match std::env::var(MORSELS_ENV) {
            Ok(value) => match parse_morsels(&value).unwrap() {
                Some(rows) => assert_eq!(resolved, rows),
                None => assert_eq!(resolved, DEFAULT_MORSEL_ROWS),
            },
            Err(_) => assert_eq!(resolved, DEFAULT_MORSEL_ROWS),
        }
    }

    #[test]
    fn execute_bounded_plan_for_simple_query() {
        let (c, schema, idb) = setup();
        // Q(y) :- R(x, y), x = 1.
        let q = ConjunctiveQuery::builder("Q")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let plan = bounded_plan(&q, &schema).unwrap();
        let (result, stats) = execute_plan(&plan, &idb).unwrap();
        assert_eq!(
            result.row_set(),
            [vec![Value::int(10)], vec![Value::int(11)]]
                .into_iter()
                .collect()
        );
        assert_eq!(stats.tuples_fetched, 2);
        assert_eq!(stats.tuples_scanned, 0);
        assert!(stats.index_lookups >= 1);
    }

    #[test]
    fn execute_join_query() {
        let (c, schema, idb) = setup();
        // Q(z) :- R(x, y), R(z, y), x = 3: accidents sharing the b-value of key 3.
        let q = ConjunctiveQuery::builder("Q")
            .head(["z"])
            .atom("R", ["x", "y"])
            .atom("R", ["z", "y"])
            .eq("x", 3i64)
            .build(&c)
            .unwrap();
        let plan = bounded_plan(&q, &schema).unwrap();
        let (result, stats) = execute_plan(&plan, &idb).unwrap();
        assert_eq!(
            result.row_set(),
            [vec![Value::int(3)]].into_iter().collect()
        );
        assert!(stats.tuples_fetched >= 2);

        // Same query anchored at key 1: b-values 10 and 11, and 10 is shared with key 2.
        let q = ConjunctiveQuery::builder("Q")
            .head(["z"])
            .atom("R", ["x", "y"])
            .atom("R", ["z", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let plan = bounded_plan(&q, &schema).unwrap();
        let (result, _) = execute_plan(&plan, &idb).unwrap();
        assert_eq!(
            result.row_set(),
            [vec![Value::int(1)], vec![Value::int(2)]]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn empty_plan_yields_empty_result() {
        let (_, _, idb) = setup();
        let mut b = bea_core::plan::PlanBuilder::new();
        let e = b.empty(2);
        let plan = b.finish("Q", e).unwrap();
        let (result, stats) = execute_plan(&plan, &idb).unwrap();
        assert!(result.is_empty());
        assert_eq!(result.arity(), 2);
        assert_eq!(stats.tuples_fetched, 0);
    }

    #[test]
    fn difference_and_rename_ops() {
        let (_, _, idb) = setup();
        let mut b = bea_core::plan::PlanBuilder::new();
        let one = b.constant(Value::int(1), "x");
        let two = b.constant(Value::int(2), "x");
        let union = b.union(one, two);
        let diff = b.difference(union, two);
        let renamed = b.rename(diff, vec!["y".into()]);
        let plan = b.finish("Q", renamed).unwrap();
        let (result, _) = execute_plan(&plan, &idb).unwrap();
        assert_eq!(
            result.row_set(),
            [vec![Value::int(1)]].into_iter().collect()
        );
        assert_eq!(result.columns(), &["y".to_owned()]);
    }

    #[test]
    fn fetch_with_unknown_constraint_fails() {
        let (_, _, idb) = setup();
        let mut b = bea_core::plan::PlanBuilder::new();
        let k = b.constant(Value::int(1), "x");
        let f = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1],
            99,
            vec!["a".into(), "b".into()],
        );
        let plan = b.finish("Q", f).unwrap();
        assert!(execute_plan(&plan, &idb).is_err());
    }

    /// Hand-build the exact shape the peephole targets: `σ[k = a](keys × fetch)` where
    /// the fetch reads `R(a → b)` keyed by the `keys` column.
    fn keyed_join_plan() -> bea_core::plan::QueryPlan {
        let mut b = bea_core::plan::PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let k2 = b.constant(Value::int(2), "k");
        let keys = b.union(k1, k2);
        let fetched = b.fetch(
            keys,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(keys, fetched);
        // Tie the fetch's key column (position 1 = left arity 1 + first X attr) back to
        // the source key — the pattern the synthesis emits for every fetch.
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        b.finish("Q", sel).unwrap()
    }

    #[test]
    fn deferred_product_peephole_is_transparent() {
        let (_, _, idb) = setup();
        let plan = keyed_join_plan();
        let peephole_on = ExecOptions::materialized().with_defer_products(true);
        let peephole_off = ExecOptions::materialized().with_defer_products(false);

        let (fast, fast_stats) = execute_plan_with_options(&plan, &idb, &peephole_on).unwrap();
        let (slow, slow_stats) = execute_plan_with_options(&plan, &idb, &peephole_off).unwrap();

        // Identical output either way…
        assert_eq!(fast.columns(), slow.columns());
        assert_eq!(fast.row_set(), slow.row_set());
        assert_eq!(
            fast.row_set(),
            [
                vec![Value::int(1), Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(1), Value::int(11)],
                vec![Value::int(2), Value::int(2), Value::int(10)],
            ]
            .into_iter()
            .collect()
        );
        // …and identical data access: the peephole changes join strategy, not fetches.
        assert_eq!(fast_stats.tuples_fetched, slow_stats.tuples_fetched);

        // The peephole never materializes the cross product; the literal semantics
        // materialize |keys| · |fetched| = 2 · 3 rows.
        assert_eq!(fast_stats.product_rows_materialized, 0);
        assert_eq!(slow_stats.product_rows_materialized, 6);
    }

    #[test]
    fn deferred_product_peephole_is_transparent_on_synthesized_plans() {
        // Same property on a plan produced by the synthesizer (not hand-built): the
        // join query from `execute_join_query` exercises σ[key eq](source × fetch).
        let (c, schema, idb) = setup();
        let q = ConjunctiveQuery::builder("Q")
            .head(["z"])
            .atom("R", ["x", "y"])
            .atom("R", ["z", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let plan = bounded_plan(&q, &schema).unwrap();

        let (fast, fast_stats) = execute_plan_with_options(
            &plan,
            &idb,
            &ExecOptions::materialized().with_defer_products(true),
        )
        .unwrap();
        let (slow, slow_stats) = execute_plan_with_options(
            &plan,
            &idb,
            &ExecOptions::materialized().with_defer_products(false),
        )
        .unwrap();

        assert_eq!(fast.row_set(), slow.row_set());
        assert_eq!(fast_stats.tuples_fetched, slow_stats.tuples_fetched);
        // The synthesized plan contains at least one deferrable keyed-join product the
        // peephole eliminates. (Constant-sized seed products — unit × const — are not
        // part of the pattern and may still materialize a row each.)
        assert!(slow_stats.product_rows_materialized > fast_stats.product_rows_materialized);
        let seed_products = plan
            .steps()
            .iter()
            .filter(|s| matches!(s.op, PlanOp::Product { .. }))
            .count() as u64;
        // Whatever remains materialized under the peephole is at most one row per
        // product node — never a data-dependent cross product.
        assert!(fast_stats.product_rows_materialized <= seed_products);
    }

    #[test]
    fn streaming_matches_materialized_and_uses_less_memory() {
        let (c, schema, idb) = setup();
        let q = ConjunctiveQuery::builder("Q")
            .head(["z"])
            .atom("R", ["x", "y"])
            .atom("R", ["z", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let plan = bounded_plan(&q, &schema).unwrap();

        let (streamed, streamed_stats) =
            execute_plan_with_options(&plan, &idb, &ExecOptions::new()).unwrap();
        let (materialized, materialized_stats) =
            execute_plan_with_options(&plan, &idb, &ExecOptions::materialized()).unwrap();

        assert_eq!(streamed.row_set(), materialized.row_set());
        // Boundedness preserved: the pipeline reads exactly the same data…
        assert!(streamed_stats.same_data_access(&materialized_stats));
        assert!(!streamed_stats.rows_fetched_by_relation.is_empty());
        // …while holding strictly fewer rows at its peak.
        assert!(
            streamed_stats.peak_rows_resident <= materialized_stats.peak_rows_resident,
            "streaming peak {} exceeds materialized peak {}",
            streamed_stats.peak_rows_resident,
            materialized_stats.peak_rows_resident
        );
    }

    #[test]
    fn streaming_handles_every_operator() {
        // Exercise union, difference, rename, product, filter and dedup through the
        // pipeline on a hand-built plan.
        let (_, _, idb) = setup();
        let mut b = bea_core::plan::PlanBuilder::new();
        let one = b.constant(Value::int(1), "x");
        let two = b.constant(Value::int(2), "x");
        let three = b.constant(Value::int(3), "x");
        let union = b.union(one, two);
        let union = b.union(union, three);
        let diff = b.difference(union, two);
        let pair = b.product(diff, one);
        let sel = b.select(pair, vec![Predicate::ColEqConst(1, Value::int(1))]);
        let proj = b.project(sel, vec![0]);
        let renamed = b.rename(proj, vec!["y".into()]);
        let plan = b.finish("Q", renamed).unwrap();

        let (streamed, _) = execute_plan_with_options(&plan, &idb, &ExecOptions::new()).unwrap();
        let (materialized, _) =
            execute_plan_with_options(&plan, &idb, &ExecOptions::materialized()).unwrap();
        assert_eq!(streamed.row_set(), materialized.row_set());
        assert_eq!(
            streamed.row_set(),
            [vec![Value::int(1)], vec![Value::int(3)]]
                .into_iter()
                .collect()
        );
        assert_eq!(streamed.columns(), &["y".to_owned()]);
    }

    #[test]
    fn exec_options_builder_round_trips() {
        let default = ExecOptions::new();
        assert!(default.streaming);
        assert!(default.defer_products);
        assert_eq!(default.threads, 0, "0 = resolve automatically");
        assert_eq!(default, ExecOptions::default());
        let materialized = ExecOptions::materialized();
        assert!(!materialized.streaming);
        let literal = ExecOptions::materialized().with_defer_products(false);
        assert!(!literal.streaming);
        assert!(!literal.defer_products);
        assert!(literal.with_streaming(true).streaming);
        let pinned = ExecOptions::new().with_threads(4);
        assert_eq!(pinned.threads, 4);
        assert_eq!(default.morsel_size, 0, "0 = resolve automatically");
        assert_eq!(ExecOptions::new().with_morsel_size(256).morsel_size, 256);
        assert_eq!(
            pinned.resolved_threads(),
            4,
            "an explicit thread count beats the environment"
        );
        assert!(ExecOptions::new().resolved_threads() >= 1);
    }

    #[test]
    fn q0_example_1_1_end_to_end() {
        // The full Example 1.1 pipeline on a miniature accidents database.
        let mut c = Catalog::new();
        c.declare("Accident", ["aid", "district", "date"]).unwrap();
        c.declare("Casualty", ["cid", "aid", "class", "vid"])
            .unwrap();
        c.declare("Vehicle", ["vid", "driver", "age"]).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "Accident", &["date"], &["aid"], 610).unwrap(),
            AccessConstraint::new(&c, "Casualty", &["aid"], &["vid"], 192).unwrap(),
            AccessConstraint::new(&c, "Accident", &["aid"], &["district", "date"], 1).unwrap(),
            AccessConstraint::new(&c, "Vehicle", &["vid"], &["driver", "age"], 1).unwrap(),
        ]);
        let mut db = Database::new(c.clone());
        let day = Value::str("1/5/2005");
        let other_day = Value::str("2/5/2005");
        let qp = Value::str("Queen's Park");
        let elsewhere = Value::str("Leith");
        db.extend(
            "Accident",
            [
                vec![Value::int(1), qp.clone(), day.clone()],
                vec![Value::int(2), elsewhere.clone(), day.clone()],
                vec![Value::int(3), qp.clone(), other_day.clone()],
            ],
        )
        .unwrap();
        db.extend(
            "Casualty",
            [
                vec![
                    Value::int(10),
                    Value::int(1),
                    Value::int(0),
                    Value::int(100),
                ],
                vec![
                    Value::int(11),
                    Value::int(1),
                    Value::int(1),
                    Value::int(101),
                ],
                vec![
                    Value::int(12),
                    Value::int(2),
                    Value::int(0),
                    Value::int(102),
                ],
                vec![
                    Value::int(13),
                    Value::int(3),
                    Value::int(0),
                    Value::int(103),
                ],
            ],
        )
        .unwrap();
        db.extend(
            "Vehicle",
            [
                vec![Value::int(100), Value::str("d1"), Value::int(34)],
                vec![Value::int(101), Value::str("d2"), Value::int(52)],
                vec![Value::int(102), Value::str("d3"), Value::int(19)],
                vec![Value::int(103), Value::str("d4"), Value::int(77)],
            ],
        )
        .unwrap();
        let idb = IndexedDatabase::build(db, schema.clone()).unwrap();
        assert!(idb.satisfies_schema());

        let q0 = ConjunctiveQuery::builder("Q0")
            .head(["xa"])
            .atom(
                "Accident",
                [Arg::var("aid"), Arg::Const(qp), Arg::Const(day)],
            )
            .atom("Casualty", ["cid", "aid", "class", "vid"])
            .atom("Vehicle", ["vid", "dri", "xa"])
            .build(&c)
            .unwrap();
        let plan = bounded_plan(&q0, &schema).unwrap();
        let (result, stats) = execute_plan(&plan, &idb).unwrap();
        // Only accident 1 matches (Queen's Park on 1/5/2005), with drivers aged 34, 52.
        assert_eq!(
            result.row_set(),
            [vec![Value::int(34)], vec![Value::int(52)]]
                .into_iter()
                .collect()
        );
        // Far fewer tuples fetched than the 11 tuples of the database? The plan fetches
        // only what the indices return for the relevant keys.
        assert!(stats.tuples_fetched <= 8);
        assert_eq!(stats.tuples_scanned, 0);
    }
}

//! The baseline evaluator: answer queries by scanning relations.
//!
//! This is the stand-in for "just run the query on the DBMS" (MySQL in the paper's
//! Example 1.1). Conjunctive queries are evaluated left-to-right with hash joins, so the
//! baseline is a competent conventional evaluator — but every atom still scans (or
//! hash-builds over) its entire relation, so the cost grows linearly with `|D|`, which is
//! exactly the behaviour bounded evaluation avoids.
//!
//! A first-order evaluator over the active domain is also provided for completeness; it
//! is exponential in the quantifier depth and only intended for the small instances used
//! by tests and the reasoning procedures.

use crate::stats::AccessStats;
use crate::table::Table;
use bea_core::error::{Error, Result};
use bea_core::query::cq::ConjunctiveQuery;
use bea_core::query::fo::{FirstOrderQuery, Formula};
use bea_core::query::term::Arg;
use bea_core::query::ucq::UnionQuery;
use bea_core::query::Query;
use bea_core::value::{Row, Value};
use bea_storage::Database;
use std::collections::{BTreeSet, HashMap};

/// Evaluate a conjunctive query by scanning and hash-joining the relations.
pub fn eval_cq(query: &ConjunctiveQuery, database: &Database) -> Result<(Table, AccessStats)> {
    let mut stats = AccessStats::default();
    let columns: Vec<String> = query
        .head()
        .iter()
        .map(|&v| query.var_name(v).to_owned())
        .collect();
    let eq = query.eq_classes();
    if eq.has_contradiction() {
        return Ok((Table::new(columns), stats));
    }

    // Partial bindings over equality-class representatives.
    let num_vars = query.num_vars();
    let root = |v: bea_core::query::term::Var| eq.root(v);

    // Seed with the class constants.
    let mut seed: Vec<Option<Value>> = vec![None; num_vars];
    for v in query.vars() {
        if let Some(c) = eq.constant(v) {
            seed[root(v)] = Some(c.clone());
        }
    }
    let mut partials: Vec<Vec<Option<Value>>> = vec![seed];
    let mut bound_roots: BTreeSet<usize> = query
        .vars()
        .filter(|&v| eq.constant(v).is_some())
        .map(root)
        .collect();

    for atom in query.atoms() {
        let relation = database.relation(&atom.relation)?;
        stats.tuples_scanned += relation.len() as u64;

        // Positions of the atom whose class is already bound form the hash key.
        let key_positions: Vec<usize> = (0..atom.args.len())
            .filter(|&p| bound_roots.contains(&root(atom.args[p])))
            .collect();

        // Build the hash table over the relation, keyed on those positions, keeping only
        // tuples that are self-consistent with repeated variables in the atom.
        let mut buckets: HashMap<Row, Vec<&Row>> = HashMap::new();
        'tuples: for tuple in relation.rows() {
            for p1 in 0..atom.args.len() {
                for p2 in (p1 + 1)..atom.args.len() {
                    if root(atom.args[p1]) == root(atom.args[p2]) && tuple[p1] != tuple[p2] {
                        continue 'tuples;
                    }
                }
            }
            let key: Row = key_positions.iter().map(|&p| tuple[p].clone()).collect();
            buckets.entry(key).or_default().push(tuple);
        }

        // Probe with every partial binding.
        let mut next: Vec<Vec<Option<Value>>> = Vec::new();
        for partial in &partials {
            let key: Row = key_positions
                .iter()
                .map(|&p| {
                    partial[root(atom.args[p])]
                        .clone()
                        .expect("key positions are bound")
                })
                .collect();
            let Some(matches) = buckets.get(&key) else {
                continue;
            };
            for tuple in matches {
                let mut extended = partial.clone();
                let mut ok = true;
                for (p, &var) in atom.args.iter().enumerate() {
                    let slot = root(var);
                    match &extended[slot] {
                        Some(existing) => {
                            if existing != &tuple[p] {
                                ok = false;
                                break;
                            }
                        }
                        None => extended[slot] = Some(tuple[p].clone()),
                    }
                }
                if ok {
                    next.push(extended);
                }
            }
        }
        partials = next;
        for &v in &atom.args {
            bound_roots.insert(root(v));
        }
        if partials.is_empty() {
            break;
        }
    }

    let mut table = Table::new(columns);
    for partial in &partials {
        let row: Option<Row> = query
            .head()
            .iter()
            .map(|&v| partial[root(v)].clone())
            .collect();
        match row {
            Some(row) => table.push(row),
            None => {
                return Err(Error::invalid(format!(
                    "query `{}` has an unbound head variable (unsafe query)",
                    query.name()
                )))
            }
        }
    }
    table.dedup();
    Ok((table, stats))
}

/// Evaluate a union of conjunctive queries (the union of its branches' answers).
pub fn eval_ucq(query: &UnionQuery, database: &Database) -> Result<(Table, AccessStats)> {
    let mut stats = AccessStats::default();
    let mut combined: Option<Table> = None;
    for branch in query.branches() {
        let (table, branch_stats) = eval_cq(branch, database)?;
        stats += branch_stats;
        combined = Some(match combined {
            None => table,
            Some(mut acc) => {
                for row in table.rows() {
                    acc.push(row.clone());
                }
                acc
            }
        });
    }
    let mut table = combined.unwrap_or_default();
    table.dedup();
    Ok((table, stats))
}

/// Evaluate any query of the supported classes; FO queries fall back to the active-domain
/// evaluator.
pub fn eval_query(query: &Query, database: &Database) -> Result<(Table, AccessStats)> {
    match query {
        Query::Cq(q) => eval_cq(q, database),
        Query::Ucq(q) => eval_ucq(q, database),
        Query::Efo(q) => eval_ucq(&q.to_ucq(database.catalog())?, database),
        Query::Fo(q) => eval_fo(q, database),
    }
}

/// Evaluate a first-order query over the active domain of the database.
///
/// The active domain is the set of constants occurring in the database or the query
/// (Section 2 of the paper). The evaluation is exponential in the number of quantified
/// variables and is only meant for small instances.
pub fn eval_fo(query: &FirstOrderQuery, database: &Database) -> Result<(Table, AccessStats)> {
    let stats = AccessStats {
        tuples_scanned: database.size(),
        ..AccessStats::default()
    };

    // Active domain: all database constants plus the query's constants.
    let mut domain: BTreeSet<Value> = BTreeSet::new();
    for relation in database.relations() {
        for row in relation.rows() {
            domain.extend(row.iter().cloned());
        }
    }
    collect_formula_constants(query.body(), &mut domain);

    let head_names: Vec<String> = query
        .head()
        .iter()
        .map(|a| match a {
            Arg::Var(n) => n.clone(),
            Arg::Const(c) => c.to_string(),
        })
        .collect();
    let mut free_vars: Vec<String> = Vec::new();
    for a in query.head() {
        if let Arg::Var(n) = a {
            if !free_vars.contains(n) {
                free_vars.push(n.clone());
            }
        }
    }
    for v in query.body().free_vars() {
        if !free_vars.contains(&v) {
            free_vars.push(v);
        }
    }

    let domain: Vec<Value> = domain.into_iter().collect();
    let mut table = Table::new(head_names);
    let mut assignment: HashMap<String, Value> = HashMap::new();
    enumerate_assignments(&free_vars, 0, &domain, &mut assignment, &mut |assignment| {
        if eval_formula(query.body(), database, &domain, assignment)? {
            let row: Row = query
                .head()
                .iter()
                .map(|a| match a {
                    Arg::Var(n) => assignment[n].clone(),
                    Arg::Const(c) => c.clone(),
                })
                .collect();
            table.push(row);
        }
        Ok(())
    })?;
    table.dedup();
    Ok((table, stats))
}

fn collect_formula_constants(formula: &Formula, out: &mut BTreeSet<Value>) {
    match formula {
        Formula::Atom { args, .. } => {
            for a in args {
                if let Arg::Const(c) = a {
                    out.insert(c.clone());
                }
            }
        }
        Formula::Eq(l, r) => {
            for a in [l, r] {
                if let Arg::Const(c) = a {
                    out.insert(c.clone());
                }
            }
        }
        Formula::Not(inner) => collect_formula_constants(inner, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for f in fs {
                collect_formula_constants(f, out);
            }
        }
        Formula::Exists(_, body) | Formula::Forall(_, body) => {
            collect_formula_constants(body, out);
        }
    }
}

fn enumerate_assignments(
    vars: &[String],
    index: usize,
    domain: &[Value],
    assignment: &mut HashMap<String, Value>,
    visit: &mut dyn FnMut(&HashMap<String, Value>) -> Result<()>,
) -> Result<()> {
    if index == vars.len() {
        return visit(assignment);
    }
    for value in domain {
        assignment.insert(vars[index].clone(), value.clone());
        enumerate_assignments(vars, index + 1, domain, assignment, visit)?;
    }
    assignment.remove(&vars[index]);
    Ok(())
}

fn eval_formula(
    formula: &Formula,
    database: &Database,
    domain: &[Value],
    assignment: &HashMap<String, Value>,
) -> Result<bool> {
    let resolve = |a: &Arg| -> Result<Value> {
        match a {
            Arg::Const(c) => Ok(c.clone()),
            Arg::Var(n) => assignment
                .get(n)
                .cloned()
                .ok_or_else(|| Error::UnknownVariable {
                    variable: n.clone(),
                }),
        }
    };
    match formula {
        Formula::Atom { relation, args } => {
            let row: Row = args.iter().map(resolve).collect::<Result<_>>()?;
            Ok(database.relation(relation)?.rows().contains(&row))
        }
        Formula::Eq(l, r) => Ok(resolve(l)? == resolve(r)?),
        Formula::Not(inner) => Ok(!eval_formula(inner, database, domain, assignment)?),
        Formula::And(fs) => {
            for f in fs {
                if !eval_formula(f, database, domain, assignment)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for f in fs {
                if eval_formula(f, database, domain, assignment)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Exists(vars, body) => {
            let mut found = false;
            let mut nested = assignment.clone();
            enumerate_assignments(vars, 0, domain, &mut nested, &mut |a| {
                if !found && eval_formula(body, database, domain, a)? {
                    found = true;
                }
                Ok(())
            })?;
            Ok(found)
        }
        Formula::Forall(vars, body) => {
            let mut all = true;
            let mut nested = assignment.clone();
            enumerate_assignments(vars, 0, domain, &mut nested, &mut |a| {
                if all && !eval_formula(body, database, domain, a)? {
                    all = false;
                }
                Ok(())
            })?;
            Ok(all)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::query::efo::{PosFormula, PositiveQuery};
    use bea_core::schema::Catalog;

    fn setup() -> (Catalog, Database) {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["a", "b"]).unwrap();
        let mut db = Database::new(c.clone());
        db.extend(
            "R",
            [
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(11)],
                vec![Value::int(2), Value::int(10)],
            ],
        )
        .unwrap();
        db.extend(
            "S",
            [
                vec![Value::int(10), Value::int(100)],
                vec![Value::int(11), Value::int(101)],
            ],
        )
        .unwrap();
        (c, db)
    }

    #[test]
    fn cq_selection_and_join() {
        let (c, db) = setup();
        // Q(z) :- R(x, y), S(y, z), x = 1.
        let q = ConjunctiveQuery::builder("Q")
            .head(["z"])
            .atom("R", ["x", "y"])
            .atom("S", ["y", "z"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let (result, stats) = eval_cq(&q, &db).unwrap();
        assert_eq!(
            result.row_set(),
            [vec![Value::int(100)], vec![Value::int(101)]]
                .into_iter()
                .collect()
        );
        // The baseline scans both relations entirely.
        assert_eq!(stats.tuples_scanned, 5);
        assert_eq!(stats.tuples_fetched, 0);
    }

    #[test]
    fn cq_with_repeated_variable() {
        let (c, mut db) = setup();
        db.insert("R", vec![Value::int(7), Value::int(7)]).unwrap();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "x"])
            .build(&c)
            .unwrap();
        let (result, _) = eval_cq(&q, &db).unwrap();
        assert_eq!(
            result.row_set(),
            [vec![Value::int(7)]].into_iter().collect()
        );
    }

    #[test]
    fn cq_contradiction_is_empty() {
        let (c, db) = setup();
        let q = ConjunctiveQuery::builder("Q")
            .head(["x"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        let (result, _) = eval_cq(&q, &db).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn boolean_cq() {
        let (c, db) = setup();
        let q = ConjunctiveQuery::builder("Q")
            .head(Vec::<Arg>::new())
            .atom("R", ["x", "y"])
            .eq("y", 11i64)
            .build(&c)
            .unwrap();
        let (result, _) = eval_cq(&q, &db).unwrap();
        assert_eq!(result.len(), 1);
        let q_false = ConjunctiveQuery::builder("Q")
            .head(Vec::<Arg>::new())
            .atom("R", ["x", "y"])
            .eq("y", 99i64)
            .build(&c)
            .unwrap();
        let (result, _) = eval_cq(&q_false, &db).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn ucq_union_of_branches() {
        let (c, db) = setup();
        let b1 = ConjunctiveQuery::builder("Q1")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let b2 = ConjunctiveQuery::builder("Q2")
            .head(["y"])
            .atom("R", ["x", "y"])
            .eq("x", 2i64)
            .build(&c)
            .unwrap();
        let union = UnionQuery::from_branches("Q", vec![b1, b2]).unwrap();
        let (result, stats) = eval_ucq(&union, &db).unwrap();
        assert_eq!(
            result.row_set(),
            [vec![Value::int(10)], vec![Value::int(11)]]
                .into_iter()
                .collect()
        );
        assert_eq!(stats.tuples_scanned, 6); // both branches scan R
    }

    #[test]
    fn efo_query_via_ucq_expansion() {
        let (_c, db) = setup();
        let q = PositiveQuery::new(
            "Q",
            ["y"],
            PosFormula::exists(
                ["x"],
                PosFormula::And(vec![
                    PosFormula::atom("R", ["x", "y"]),
                    PosFormula::Or(vec![
                        PosFormula::eq("x", Value::int(1)),
                        PosFormula::eq("x", Value::int(2)),
                    ]),
                ]),
            ),
        );
        let (result, _) = eval_query(&Query::Efo(q), &db).unwrap();
        assert_eq!(result.row_set().len(), 2);
    }

    #[test]
    fn fo_query_with_negation_and_universal() {
        let (_c, db) = setup();
        // Values b of R such that *every* S-tuple starting with b has second component 100.
        let q = FirstOrderQuery::new(
            "Q",
            ["y"],
            Formula::And(vec![
                Formula::exists(["x"], Formula::atom("R", ["x", "y"])),
                Formula::forall(
                    ["z"],
                    Formula::Or(vec![
                        Formula::not(Formula::atom("S", ["y", "z"])),
                        Formula::eq("z", Value::int(100)),
                    ]),
                ),
            ]),
        );
        let (result, _) = eval_fo(&q, &db).unwrap();
        // y = 10 qualifies (S(10,100)); y = 11 does not (S(11,101)).
        assert!(result.row_set().contains(&vec![Value::int(10)]));
        assert!(!result.row_set().contains(&vec![Value::int(11)]));
    }

    #[test]
    fn fo_matches_cq_on_positive_queries() {
        let (c, db) = setup();
        let cq = ConjunctiveQuery::builder("Q")
            .head(["z"])
            .atom("R", ["x", "y"])
            .atom("S", ["y", "z"])
            .eq("x", 1i64)
            .build(&c)
            .unwrap();
        let fo = FirstOrderQuery::new(
            "Q",
            ["z"],
            Formula::exists(
                ["x", "y"],
                Formula::And(vec![
                    Formula::atom("R", ["x", "y"]),
                    Formula::atom("S", ["y", "z"]),
                    Formula::eq("x", Value::int(1)),
                ]),
            ),
        );
        let (t1, _) = eval_cq(&cq, &db).unwrap();
        let (t2, _) = eval_fo(&fo, &db).unwrap();
        assert!(t1.same_rows(&t2));
    }
}

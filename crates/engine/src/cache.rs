//! The session-level cross-query fetch cache: a striped, bounded LRU hot tier in
//! front of the index partition.
//!
//! [`crate::ops`]'s `KeyedLookupOp` already caches per-key fetch results — but that
//! cache dies with its query, so a service replaying the same anchored probes
//! re-fetches identical postings on every connection. [`SessionFetchCache`] hoists
//! the idea one level up: it is owned by the [`crate::session::Session`], shared by
//! every query the session runs, and probed *before* the index partition. A warm hit
//! is one hash plus a refcount bump — zero value clones, zero probe allocations, and
//! none of the fetch-side counters (`tuples_fetched`, `index_lookups`,
//! `allocs_per_probe`) are charged; the hit is visible only in the additive
//! [`crate::stats::AccessStats::cache_hits`] / `rows_served_from_cache` counters. A
//! miss hands the prober a unique fill claim (the morsel split's condvar
//! fill-exactly-once protocol, generalized across queries) and then runs the
//! ordinary uncached miss path, charging exactly what an uncached run charges — which
//! is why a cold run reproduces the uncached counters bit-for-bit.
//!
//! # What a cache entry is
//!
//! Cached batches are keyed by **shape** and key: a [`CacheShape`] pins the
//! constraint index, the fetched positions, and the fused pre-projection (if any)
//! baked into the stored batch, so two operators share entries exactly when their
//! fills would have produced byte-identical batches. Residual predicates and
//! non-fused output projections are applied *downstream* of the cache and never
//! affect entry content, so they do not participate in the shape.
//!
//! # Bounds and admission
//!
//! The cache is bounded by resident rows ([`SessionFetchCache::new`]'s budget;
//! `SessionConfig::cache_budget_rows` / `BEA_CACHE_ROWS` upstream). Filling past the
//! budget evicts least-recently-used entries — recency is a relaxed global clock
//! stamped on every hit — until the resident total fits again. The cache holds its
//! rows on its **own** residency ledger: per-query ledgers still drain to zero at
//! query end (fills charge and release the filling query exactly as without the
//! cache), and the session drains the cache ledger to zero on teardown. Admission
//! control never looks at cache state: a query is priced at its uncached worst case,
//! so boundedness guarantees hold even if every entry is evicted mid-flight.

use crate::ops::batch::Batch;
use crate::ops::ResidencyLedger;
use bea_core::value::Row;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Identity of a cache entry's content, beyond its key: which constraint was
/// fetched, which positions were projected into the stored columns, and the fused
/// pre-projection applied before caching (`None` when entries hold the raw
/// projection). Operators with equal shapes produce interchangeable fill results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CacheShape {
    pub(crate) constraint: usize,
    pub(crate) positions: Vec<usize>,
    pub(crate) emit: Option<Vec<usize>>,
}

/// Outcome of [`SessionFetchCache::probe`].
#[derive(Debug)]
pub(crate) enum SessionProbe {
    Hit(Arc<Batch>),
    /// The caller is now the key's unique filler across the whole session and must
    /// resolve the claim with [`SessionFetchCache::complete`] or
    /// [`SessionFetchCache::abort`].
    Fill,
}

#[derive(Debug)]
enum SpaceEntry {
    /// A fill is in flight somewhere in the session; probes of this key wait.
    Filling,
    Ready {
        batch: Arc<Batch>,
        last_used: u64,
    },
}

#[derive(Debug, Default)]
struct SpaceMap {
    entries: HashMap<Row, SpaceEntry>,
    /// Probes blocked on this stripe's condvar; completions skip the wakeup when
    /// nobody waits (the common case).
    waiters: usize,
}

/// One independently locked partition of a shape's key space.
#[derive(Debug)]
struct SpaceStripe {
    entries: Mutex<SpaceMap>,
    filled: Condvar,
}

/// Same sizing rationale as the morsel split's shared cache: 64 stripes keep a
/// handful of concurrently probing workers off each other's locks while an idle
/// space stays in the low kilobytes.
const SPACE_STRIPES: usize = 64;

/// All cached entries of one [`CacheShape`]. Operators resolve their space once
/// (at construction or when the fused projection is settled) and probe it directly,
/// so the per-probe path never touches the shape registry.
#[derive(Debug)]
pub(crate) struct CacheSpace {
    shape: CacheShape,
    stripes: Vec<SpaceStripe>,
}

impl CacheSpace {
    fn new(shape: CacheShape) -> Self {
        Self {
            shape,
            stripes: (0..SPACE_STRIPES)
                .map(|_| SpaceStripe {
                    entries: Mutex::new(SpaceMap::default()),
                    filled: Condvar::new(),
                })
                .collect(),
        }
    }

    fn stripe(&self, key: &Row) -> &SpaceStripe {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.stripes[hasher.finish() as usize % SPACE_STRIPES]
    }
}

/// Session-global cache counters, surfaced through
/// [`crate::session::Session::cache_stats`] (and from there the `bead` STATS
/// reply). All zeros when the session runs without a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheStats {
    /// Probes served out of the cache since the session started.
    pub hits: u64,
    /// Rows those hits delivered (the cached analogue of `tuples_fetched`).
    pub rows_served: u64,
    /// Entries evicted to keep the resident total under the row budget.
    pub evictions: u64,
    /// Rows currently held by cache entries.
    pub resident_rows: u64,
    /// The configured row budget the resident total is kept under.
    pub budget_rows: u64,
}

/// The session-owned hot tier itself. See the module docs for the contract.
#[derive(Debug)]
pub(crate) struct SessionFetchCache {
    budget_rows: u64,
    /// Global recency clock: every hit stamps its entry with the next tick. Relaxed
    /// is enough — eviction only needs a total order that roughly tracks use, not a
    /// synchronization edge.
    clock: AtomicU64,
    /// The cache's own residency accounting: acquired at fill completion, released
    /// at eviction, drained to zero on session teardown. Per-query ledgers never
    /// carry cache-held rows past query end.
    ledger: ResidencyLedger,
    hits: AtomicU64,
    rows_served: AtomicU64,
    evictions: AtomicU64,
    spaces: Mutex<Vec<Arc<CacheSpace>>>,
}

impl SessionFetchCache {
    /// A cache bounded at `budget_rows` resident rows. Callers gate construction on
    /// a nonzero resolved budget — a session without a cache holds no
    /// `SessionFetchCache` at all, which is what keeps the disabled path bit-for-bit
    /// identical to the pre-cache executor.
    pub(crate) fn new(budget_rows: u64) -> Self {
        Self {
            budget_rows,
            clock: AtomicU64::new(0),
            ledger: ResidencyLedger::default(),
            hits: AtomicU64::new(0),
            rows_served: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            spaces: Mutex::new(Vec::new()),
        }
    }

    /// The space for `shape`, registering it on first use. A linear scan under one
    /// lock: shapes are as few as the distinct fetch steps of the session's plans,
    /// and each operator resolves its space once, off the per-probe path.
    pub(crate) fn space(&self, shape: CacheShape) -> Arc<CacheSpace> {
        let mut spaces = self.spaces.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = spaces.iter().find(|space| space.shape == shape) {
            return Arc::clone(existing);
        }
        let space = Arc::new(CacheSpace::new(shape));
        spaces.push(Arc::clone(&space));
        space
    }

    /// Probe `space` for `key`: a warm hit returns the cached batch (stamping its
    /// recency and counting the hit); a miss installs a session-wide fill claim; a
    /// probe racing an in-flight fill — possibly from another query — blocks until
    /// that fill resolves. An aborted fill hands the claim to a waiting prober.
    pub(crate) fn probe(&self, space: &CacheSpace, key: &Row) -> SessionProbe {
        let stripe = space.stripe(key);
        let mut map = stripe
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            match map.entries.get_mut(key) {
                Some(SpaceEntry::Ready { batch, last_used }) => {
                    *last_used = self.clock.fetch_add(1, Ordering::Relaxed);
                    let batch = Arc::clone(batch);
                    drop(map);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.rows_served
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                    return SessionProbe::Hit(batch);
                }
                Some(SpaceEntry::Filling) => {
                    map.waiters += 1;
                    map = stripe
                        .filled
                        .wait(map)
                        .unwrap_or_else(PoisonError::into_inner);
                    map.waiters -= 1;
                }
                None => {
                    map.entries.insert(key.clone(), SpaceEntry::Filling);
                    return SessionProbe::Fill;
                }
            }
        }
    }

    /// Non-claiming read: a warm hit like [`SessionFetchCache::probe`]'s, but a miss
    /// or an in-flight fill returns `None` immediately instead of claiming or
    /// waiting. This is the streaming fetch's probe — `FetchOp` gathers many keys
    /// into one shared buffer and cannot produce the standalone per-key batch a fill
    /// claim would owe, so it only ever consumes entries the lookup path published.
    pub(crate) fn lookup(&self, space: &CacheSpace, key: &Row) -> Option<Arc<Batch>> {
        let stripe = space.stripe(key);
        let mut map = stripe
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(SpaceEntry::Ready { batch, last_used }) = map.entries.get_mut(key) {
            *last_used = self.clock.fetch_add(1, Ordering::Relaxed);
            let batch = Arc::clone(batch);
            drop(map);
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.rows_served
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            return Some(batch);
        }
        None
    }

    /// Resolve a fill claim with its batch, wake the probes waiting on it, and
    /// evict down to the row budget if the new entry pushed the cache past it.
    pub(crate) fn complete(&self, space: &CacheSpace, key: &Row, batch: Arc<Batch>) {
        let rows = batch.len() as u64;
        let stripe = space.stripe(key);
        let mut map = stripe
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = SpaceEntry::Ready {
            batch,
            last_used: self.clock.fetch_add(1, Ordering::Relaxed),
        };
        match map.entries.get_mut(key) {
            Some(slot) => *slot = entry,
            None => unreachable!("a fill claim stays installed until its filler resolves it"),
        }
        let wake = map.waiters > 0;
        drop(map);
        if wake {
            stripe.filled.notify_all();
        }
        self.ledger.acquire(rows);
        self.evict_to_budget();
    }

    /// Withdraw a fill claim after a failed fetch so waiting probes — from this
    /// query or any other — can retry or re-claim.
    pub(crate) fn abort(&self, space: &CacheSpace, key: &Row) {
        let stripe = space.stripe(key);
        let mut map = stripe
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entries.remove(key);
        let wake = map.waiters > 0;
        drop(map);
        if wake {
            stripe.filled.notify_all();
        }
    }

    /// Evict least-recently-used entries until the resident total fits the budget.
    /// Runs on the miss path only (after a completing fill), one stripe lock at a
    /// time; in-flight `Filling` claims are never evicted. An entry touched after
    /// the recency snapshot is skipped — its stamp no longer matches.
    fn evict_to_budget(&self) {
        if self.ledger.resident() <= self.budget_rows {
            return;
        }
        let spaces: Vec<Arc<CacheSpace>> = self
            .spaces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut candidates: Vec<(u64, usize, Row, u64)> = Vec::new();
        for (si, space) in spaces.iter().enumerate() {
            for stripe in &space.stripes {
                let map = stripe
                    .entries
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                for (key, entry) in &map.entries {
                    if let SpaceEntry::Ready { batch, last_used } = entry {
                        candidates.push((*last_used, si, key.clone(), batch.len() as u64));
                    }
                }
            }
        }
        candidates.sort_unstable_by_key(|&(stamp, _, _, _)| stamp);
        for (stamp, si, key, rows) in candidates {
            if self.ledger.resident() <= self.budget_rows {
                break;
            }
            let stripe = spaces[si].stripe(&key);
            let mut map = stripe
                .entries
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match map.entries.get(&key) {
                Some(SpaceEntry::Ready { last_used, .. }) if *last_used == stamp => {
                    map.entries.remove(&key);
                    drop(map);
                    self.ledger.release(rows);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }

    /// Drop every entry and drain the cache's residency ledger to zero — the
    /// session calls this on teardown so the zero-residency assertion covers the
    /// cache tier too.
    pub(crate) fn drain(&self) {
        let spaces: Vec<Arc<CacheSpace>> = self
            .spaces
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        for space in &spaces {
            for stripe in &space.stripes {
                let mut map = stripe
                    .entries
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                for (_, entry) in map.entries.drain() {
                    if let SpaceEntry::Ready { batch, .. } = entry {
                        self.ledger.release(batch.len() as u64);
                    }
                }
            }
        }
        debug_assert_eq!(
            self.ledger.resident(),
            0,
            "draining the cache returns its residency ledger to zero"
        );
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            rows_served: self.rows_served.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_rows: self.ledger.resident(),
            budget_rows: self.budget_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::value::Value;

    fn shape(constraint: usize) -> CacheShape {
        CacheShape {
            constraint,
            positions: vec![0, 1],
            emit: None,
        }
    }

    fn batch_of(rows: usize) -> Arc<Batch> {
        Arc::new(Batch::from_rows(
            1,
            (0..rows).map(|i| vec![Value::int(i as i64)]).collect(),
        ))
    }

    fn key_of(k: i64) -> Row {
        vec![Value::int(k)]
    }

    #[test]
    fn fills_each_key_exactly_once_across_threads() {
        let cache = Arc::new(SessionFetchCache::new(1_000));
        let space = cache.space(shape(0));
        let fills = Arc::new(AtomicU64::new(0));
        let key = key_of(7);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let space = Arc::clone(&space);
                let fills = Arc::clone(&fills);
                let key = key.clone();
                scope.spawn(move || match cache.probe(&space, &key) {
                    SessionProbe::Hit(batch) => assert_eq!(batch.len(), 3),
                    SessionProbe::Fill => {
                        fills.fetch_add(1, Ordering::Relaxed);
                        cache.complete(&space, &key, batch_of(3));
                    }
                });
            }
        });
        assert_eq!(fills.load(Ordering::Relaxed), 1, "exactly one fill per key");
        let stats = cache.stats();
        assert_eq!(stats.resident_rows, 3);
        assert_eq!(stats.hits, 7, "every non-filling probe is a hit");
        assert_eq!(stats.rows_served, 21);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn shapes_do_not_share_entries() {
        let cache = SessionFetchCache::new(1_000);
        let a = cache.space(shape(0));
        let b = cache.space(shape(1));
        let fused = cache.space(CacheShape {
            constraint: 0,
            positions: vec![0, 1],
            emit: Some(vec![1]),
        });
        let key = key_of(1);
        assert!(matches!(cache.probe(&a, &key), SessionProbe::Fill));
        cache.complete(&a, &key, batch_of(2));
        // Same constraint, different pre-projection — and a different constraint
        // entirely — both miss: entry content would differ.
        assert!(cache.lookup(&fused, &key).is_none());
        assert!(cache.lookup(&b, &key).is_none());
        assert_eq!(cache.lookup(&a, &key).unwrap().len(), 2);
        // Re-resolving an equal shape lands on the same space.
        let a_again = cache.space(shape(0));
        assert_eq!(cache.lookup(&a_again, &key).unwrap().len(), 2);
    }

    #[test]
    fn lookup_never_claims_or_waits() {
        let cache = SessionFetchCache::new(1_000);
        let space = cache.space(shape(0));
        let key = key_of(5);
        // Cold: no entry, no claim installed.
        assert!(cache.lookup(&space, &key).is_none());
        // A probe still gets the fill claim afterwards.
        assert!(matches!(cache.probe(&space, &key), SessionProbe::Fill));
        // In-flight fill: lookup returns None instead of blocking.
        assert!(cache.lookup(&space, &key).is_none());
        cache.complete(&space, &key, batch_of(1));
        assert_eq!(cache.lookup(&space, &key).unwrap().len(), 1);
    }

    #[test]
    fn eviction_is_lru_by_resident_rows() {
        let cache = SessionFetchCache::new(6);
        let space = cache.space(shape(0));
        for k in 0..3 {
            assert!(matches!(
                cache.probe(&space, &key_of(k)),
                SessionProbe::Fill
            ));
            cache.complete(&space, &key_of(k), batch_of(2));
        }
        assert_eq!(cache.stats().resident_rows, 6);
        // Touch key 0 so key 1 becomes the least recently used.
        assert!(cache.lookup(&space, &key_of(0)).is_some());
        // A fourth entry pushes past the budget: key 1 goes, the rest stay.
        assert!(matches!(
            cache.probe(&space, &key_of(3)),
            SessionProbe::Fill
        ));
        cache.complete(&space, &key_of(3), batch_of(2));
        let stats = cache.stats();
        assert_eq!(stats.resident_rows, 6, "evicted back down to the budget");
        assert_eq!(stats.evictions, 1);
        assert!(
            cache.lookup(&space, &key_of(1)).is_none(),
            "LRU entry evicted"
        );
        assert!(cache.lookup(&space, &key_of(0)).is_some());
        assert!(cache.lookup(&space, &key_of(2)).is_some());
        assert!(cache.lookup(&space, &key_of(3)).is_some());
    }

    #[test]
    fn aborted_fills_hand_the_claim_to_the_next_prober() {
        let cache = SessionFetchCache::new(100);
        let space = cache.space(shape(0));
        let key = key_of(9);
        assert!(matches!(cache.probe(&space, &key), SessionProbe::Fill));
        cache.abort(&space, &key);
        assert!(matches!(cache.probe(&space, &key), SessionProbe::Fill));
        cache.complete(&space, &key, batch_of(1));
        assert!(matches!(cache.probe(&space, &key), SessionProbe::Hit(_)));
    }

    #[test]
    fn drain_returns_the_ledger_to_zero() {
        let cache = SessionFetchCache::new(100);
        let space = cache.space(shape(0));
        for k in 0..4 {
            assert!(matches!(
                cache.probe(&space, &key_of(k)),
                SessionProbe::Fill
            ));
            cache.complete(&space, &key_of(k), batch_of(3));
        }
        assert_eq!(cache.stats().resident_rows, 12);
        cache.drain();
        assert_eq!(cache.stats().resident_rows, 0);
        // Entries are gone: the next probe is a fresh fill claim.
        assert!(matches!(
            cache.probe(&space, &key_of(0)),
            SessionProbe::Fill
        ));
        cache.abort(&space, &key_of(0));
    }
}

//! Data-access and memory-residency accounting.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::AddAssign;

/// How much data a plan execution touched — and how much of it was ever resident.
///
/// For a boundedly evaluable plan, [`AccessStats::tuples_fetched`] is bounded by a
/// function of the query and the access schema alone — the experiments plot it against
/// the database size to reproduce the paper's "access small data" claim. The
/// [`AccessStats::peak_rows_resident`] counter extends the claim to memory: under the
/// streaming executor, residency tracks the access bounds rather than the size of
/// whatever intermediate results the plan algebra would materialize.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of tuples returned by index fetches.
    pub tuples_fetched: u64,
    /// Number of distinct index lookups (one per key per fetch operation).
    pub index_lookups: u64,
    /// Number of fetch operations executed.
    pub fetch_ops: u64,
    /// Number of tuples scanned by full-relation scans (zero for bounded plans; the
    /// naive baseline reports its scans here).
    pub tuples_scanned: u64,
    /// Number of rows produced by cross-product nodes. Stays zero when product/selection
    /// pairs execute as (hash or index) joins; executing the same plan with the literal
    /// plan semantics reports `|left| · |right|` per product here.
    pub product_rows_materialized: u64,
    /// High-water mark of rows concurrently held by the executor: materialized
    /// intermediate tables, join build sides, per-key fetch caches, dedup sets and the
    /// accumulating output. The streaming executor frees intermediates as soon as their
    /// last consumer is done, so this is the number the materialized-vs-streaming
    /// ablation compares.
    pub peak_rows_resident: u64,
    /// Number of individual [`bea_core::value::Value`] clones the executor physically
    /// performs: gathers into output columns, row copies between step tables, key
    /// projections (probe keys included — they are cloned whether or not they hit),
    /// and membership/cache insertions. Index lookups that only *read* tuples are not
    /// counted, and neither is work that performs no clone — the columnar pipeline's
    /// duplicate detection is hash-then-compare, so only genuinely fresh rows enter a
    /// set. This is the copy-traffic side of execution, the quantity the columnar
    /// pipeline exists to minimize; value clones are O(1) (interned strings), so the
    /// counter measures traffic, not bytes. Like residency, it is an
    /// execution-strategy artifact and excluded from
    /// [`AccessStats::same_data_access`]; across workers it merges additively.
    pub values_cloned: u64,
    /// Number of probe-path buffer allocations the streaming executor performs, the
    /// steady-state allocation model of the anchored serving loop. Two sites count:
    /// each source row a fetch gathers into its key set (one owned key row per probed
    /// row), and each keyed-lookup cache *miss* (the owned cache key plus one column
    /// buffer per fetched position plus the selection vector — `positions + 2`). Cache
    /// hits count zero, so a warmed anchored probe — single key, cached
    /// [`KeyedLookupOp`](crate::ops), fused projection — contributes nothing: its
    /// marginal `allocs_per_probe` is exactly 0, which the property tests assert.
    /// Per-batch emission buffers are deliberately *excluded*: they scale with batch
    /// boundaries (an execution-schedule artifact), are recycled through the
    /// executor's buffer pool, and counting them would break the thread- and
    /// shard-invariance this counter is asserted to have. The counter models the
    /// probe path's demand for fresh buffers, not the allocator's view (a pool hit
    /// still counts — the *miss event* is what the serving loop must avoid). It is a
    /// streaming-pipeline metric: the materialized executor reports 0. Like
    /// `values_cloned` it is an execution-strategy artifact, excluded from
    /// [`AccessStats::same_data_access`], and merges additively across workers.
    pub allocs_per_probe: u64,
    /// Number of probes served by the session-level cross-query fetch cache (see
    /// `bea_engine::session`): lookups that returned a previously fetched posting
    /// batch by refcount bump instead of touching the index partition. A hit charges
    /// *none* of the fetch-side counters — no `tuples_fetched`, no `index_lookups`,
    /// no `allocs_per_probe` — which is what makes a warm repeat of an anchored query
    /// assertably fetch-free. Zero whenever no session cache is configured, so a
    /// cache-disabled run reproduces the historical counters bit-for-bit. Like the
    /// other strategy artifacts it is excluded from [`AccessStats::same_data_access`]
    /// (the cache changes *where* data came from, never *what* the query computes)
    /// and merges additively across workers.
    pub cache_hits: u64,
    /// Rows delivered out of the session fetch cache by the hits counted in
    /// [`AccessStats::cache_hits`] — the cached analogue of
    /// [`AccessStats::tuples_fetched`]. `tuples_fetched + rows_served_from_cache` is
    /// the data volume a run *consumed*; the split between the two is pure cache
    /// state. Excluded from [`AccessStats::same_data_access`]; merges additively.
    pub rows_served_from_cache: u64,
    /// Tuples fetched through index lookups, per relation. Lets experiments attribute
    /// the access cost of a plan to the constraints that served it.
    pub rows_fetched_by_relation: BTreeMap<String, u64>,
    /// Tuples fetched per index-partition shard (shard 0 holds everything on an
    /// unsharded store). The per-shard counts always sum to
    /// [`AccessStats::tuples_fetched`], which is what makes boundedness assertable
    /// *per shard*: partitioning redistributes the bounded fetch volume, it never adds
    /// to it. Like residency, the distribution is a placement artifact — the same plan
    /// run at different shard counts spreads the identical total differently — so it
    /// is excluded from [`AccessStats::same_data_access`].
    pub rows_fetched_by_shard: BTreeMap<u32, u64>,
}

impl AccessStats {
    /// Total number of tuples read from the database, by any means.
    pub fn total_tuples_read(&self) -> u64 {
        self.tuples_fetched + self.tuples_scanned
    }

    /// Record `tuples` fetched from `relation` by (unsharded) shard 0; see
    /// [`AccessStats::record_fetched_sharded`].
    pub fn record_fetched(&mut self, relation: &str, tuples: u64) {
        self.record_fetched_sharded(relation, 0, tuples);
    }

    /// Record `tuples` fetched from `relation` through the index partition `shard`
    /// (updates the global, per-relation and per-shard counters together, so their
    /// sums can never drift apart).
    pub fn record_fetched_sharded(&mut self, relation: &str, shard: u32, tuples: u64) {
        self.tuples_fetched += tuples;
        if let Some(count) = self.rows_fetched_by_relation.get_mut(relation) {
            *count += tuples;
        } else {
            self.rows_fetched_by_relation
                .insert(relation.to_owned(), tuples);
        }
        *self.rows_fetched_by_shard.entry(shard).or_insert(0) += tuples;
    }

    /// True when both executions read the same amount of data the same way — the
    /// boundedness-preservation check of the streaming/materialized ablation. Residency
    /// and product materialization are execution-strategy artifacts and excluded; so is
    /// the per-shard fetch distribution, which depends on the store's shard count while
    /// the totals it sums to do not.
    pub fn same_data_access(&self, other: &AccessStats) -> bool {
        self.tuples_fetched == other.tuples_fetched
            && self.index_lookups == other.index_lookups
            && self.fetch_ops == other.fetch_ops
            && self.tuples_scanned == other.tuples_scanned
            && self.rows_fetched_by_relation == other.rows_fetched_by_relation
    }

    /// Sum every additive counter of `rhs` into `self` (everything except
    /// `peak_rows_resident`, whose combination rule depends on how the two executions
    /// were composed in time — see [`AccessStats::merge_sequential`] and
    /// [`AccessStats::merge_concurrent`]).
    fn merge_counters(&mut self, rhs: AccessStats) {
        self.tuples_fetched += rhs.tuples_fetched;
        self.index_lookups += rhs.index_lookups;
        self.fetch_ops += rhs.fetch_ops;
        self.tuples_scanned += rhs.tuples_scanned;
        self.product_rows_materialized += rhs.product_rows_materialized;
        self.values_cloned += rhs.values_cloned;
        self.allocs_per_probe += rhs.allocs_per_probe;
        self.cache_hits += rhs.cache_hits;
        self.rows_served_from_cache += rhs.rows_served_from_cache;
        for (relation, tuples) in rhs.rows_fetched_by_relation {
            *self.rows_fetched_by_relation.entry(relation).or_insert(0) += tuples;
        }
        for (shard, tuples) in rhs.rows_fetched_by_shard {
            *self.rows_fetched_by_shard.entry(shard).or_insert(0) += tuples;
        }
    }

    /// Merge the stats of an execution that ran *after* `self`'s (one at a time on the
    /// same executor). The residency windows of sequential executions never overlap, so
    /// the combined high-water mark is the larger of the two peaks.
    ///
    /// `+=` ([`AddAssign`]) is an alias for this merge.
    pub fn merge_sequential(&mut self, rhs: AccessStats) {
        self.peak_rows_resident = self.peak_rows_resident.max(rhs.peak_rows_resident);
        self.merge_counters(rhs);
    }

    /// Merge the stats of an execution that (possibly) ran *concurrently* with `self`'s,
    /// e.g. on another worker thread. The residency windows may overlap, so the true
    /// combined high-water mark can reach the *sum* of the two peaks — taking the `max`
    /// here (the sequential rule) would silently understate concurrent residency. The
    /// sum is a safe upper bound; an exact concurrent peak needs a ledger shared by the
    /// executions *while they run* (the parallel executor's shared residency ledger),
    /// which this after-the-fact merge cannot reconstruct.
    pub fn merge_concurrent(&mut self, rhs: AccessStats) {
        self.peak_rows_resident += rhs.peak_rows_resident;
        self.merge_counters(rhs);
    }
}

impl AddAssign for AccessStats {
    /// Alias for [`AccessStats::merge_sequential`]: `a += b` treats `b` as the stats of
    /// an execution that ran after `a`'s.
    fn add_assign(&mut self, rhs: Self) {
        self.merge_sequential(rhs);
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetched {} tuples via {} lookups ({} fetch ops), scanned {} tuples, peak {} rows resident, {} values cloned, {} probe allocs, {} cache hits ({} rows served)",
            self.tuples_fetched,
            self.index_lookups,
            self.fetch_ops,
            self.tuples_scanned,
            self.peak_rows_resident,
            self.values_cloned,
            self.allocs_per_probe,
            self.cache_hits,
            self.rows_served_from_cache
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_display() {
        let mut a = AccessStats::default();
        a += AccessStats {
            tuples_fetched: 10,
            index_lookups: 2,
            fetch_ops: 1,
            tuples_scanned: 0,
            product_rows_materialized: 0,
            peak_rows_resident: 7,
            values_cloned: 20,
            allocs_per_probe: 4,
            cache_hits: 1,
            rows_served_from_cache: 8,
            rows_fetched_by_relation: [("R".to_owned(), 10)].into_iter().collect(),
            rows_fetched_by_shard: [(0, 10)].into_iter().collect(),
        };
        a += AccessStats {
            tuples_fetched: 5,
            index_lookups: 1,
            fetch_ops: 1,
            tuples_scanned: 100,
            product_rows_materialized: 4,
            peak_rows_resident: 3,
            values_cloned: 5,
            allocs_per_probe: 1,
            cache_hits: 2,
            rows_served_from_cache: 4,
            rows_fetched_by_relation: [("R".to_owned(), 2), ("S".to_owned(), 3)]
                .into_iter()
                .collect(),
            rows_fetched_by_shard: [(0, 2), (1, 3)].into_iter().collect(),
        };
        assert_eq!(a.tuples_fetched, 15);
        assert_eq!(a.index_lookups, 3);
        assert_eq!(a.fetch_ops, 2);
        assert_eq!(a.product_rows_materialized, 4);
        assert_eq!(a.values_cloned, 25); // additive under every merge rule
        assert_eq!(a.allocs_per_probe, 5); // additive too
        assert_eq!(a.cache_hits, 3); // cache counters are additive strategy artifacts
        assert_eq!(a.rows_served_from_cache, 12);
        assert_eq!(a.peak_rows_resident, 7); // max, not sum
        assert_eq!(a.total_tuples_read(), 115);
        assert_eq!(a.rows_fetched_by_relation["R"], 12);
        assert_eq!(a.rows_fetched_by_relation["S"], 3);
        assert_eq!(a.rows_fetched_by_shard[&0], 12);
        assert_eq!(a.rows_fetched_by_shard[&1], 3);
        assert!(a.to_string().contains("fetched 15 tuples"));
        assert!(a.to_string().contains("peak 7 rows resident"));
        assert!(a.to_string().contains("5 probe allocs"));
        assert!(a.to_string().contains("3 cache hits (12 rows served)"));
    }

    #[test]
    fn concurrent_merge_does_not_understate_residency() {
        // Two executions, each holding up to 6 rows. Run back to back they never hold
        // more than 6 rows at once; overlapped on two workers they can hold 12.
        let run = |peak: u64| AccessStats {
            tuples_fetched: 6,
            index_lookups: 1,
            fetch_ops: 1,
            tuples_scanned: 0,
            product_rows_materialized: 0,
            peak_rows_resident: peak,
            values_cloned: 12,
            allocs_per_probe: 6,
            cache_hits: 0,
            rows_served_from_cache: 0,
            rows_fetched_by_relation: [("R".to_owned(), 6)].into_iter().collect(),
            rows_fetched_by_shard: [(1, 6)].into_iter().collect(),
        };

        let mut sequential = run(6);
        sequential.merge_sequential(run(6));
        assert_eq!(sequential.peak_rows_resident, 6);

        let mut concurrent = run(6);
        concurrent.merge_concurrent(run(6));
        // The old `max` rule reported 6 here — understating a worst case where both
        // windows overlap and 12 rows are simultaneously resident.
        assert_eq!(concurrent.peak_rows_resident, 12);

        // Every additive counter merges identically either way.
        assert!(sequential.same_data_access(&concurrent));
        assert_eq!(sequential.tuples_fetched, 12);
        assert_eq!(concurrent.rows_fetched_by_relation["R"], 12);
    }

    #[test]
    fn record_fetched_tracks_relations() {
        let mut s = AccessStats::default();
        s.record_fetched("Accident", 4);
        s.record_fetched("Accident", 2);
        s.record_fetched("Vehicle", 1);
        assert_eq!(s.tuples_fetched, 7);
        assert_eq!(s.rows_fetched_by_relation["Accident"], 6);
        assert_eq!(s.rows_fetched_by_relation["Vehicle"], 1);
        // The unsharded entry point attributes everything to shard 0.
        assert_eq!(s.rows_fetched_by_shard[&0], 7);
    }

    #[test]
    fn per_shard_counts_sum_to_the_total() {
        let mut s = AccessStats::default();
        s.record_fetched_sharded("Accident", 2, 4);
        s.record_fetched_sharded("Accident", 0, 3);
        s.record_fetched_sharded("Vehicle", 2, 1);
        assert_eq!(s.tuples_fetched, 8);
        assert_eq!(s.rows_fetched_by_shard[&0], 3);
        assert_eq!(s.rows_fetched_by_shard[&2], 5);
        assert_eq!(
            s.rows_fetched_by_shard.values().sum::<u64>(),
            s.tuples_fetched
        );
        // The distribution is a placement artifact: two runs spreading the same total
        // over different shards still count as the same data access.
        let mut t = AccessStats::default();
        t.record_fetched_sharded("Accident", 1, 7);
        t.record_fetched_sharded("Vehicle", 1, 1);
        assert!(s.same_data_access(&t));
    }

    #[test]
    fn same_data_access_ignores_strategy_artifacts() {
        let mut a = AccessStats::default();
        a.record_fetched("R", 5);
        a.index_lookups = 2;
        a.fetch_ops = 1;
        let mut b = a.clone();
        b.peak_rows_resident = 99;
        b.product_rows_materialized = 42;
        b.values_cloned = 1_000;
        b.allocs_per_probe = 77;
        b.cache_hits = 3;
        b.rows_served_from_cache = 15;
        assert!(a.same_data_access(&b));
        b.record_fetched("R", 1);
        assert!(!a.same_data_access(&b));
    }
}

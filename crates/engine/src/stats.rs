//! Data-access accounting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// How much data a plan execution touched.
///
/// For a boundedly evaluable plan, [`AccessStats::tuples_fetched`] is bounded by a
/// function of the query and the access schema alone — the experiments plot it against
/// the database size to reproduce the paper's "access small data" claim.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Number of tuples returned by index fetches.
    pub tuples_fetched: u64,
    /// Number of distinct index lookups (one per key per fetch operation).
    pub index_lookups: u64,
    /// Number of fetch operations executed.
    pub fetch_ops: u64,
    /// Number of tuples scanned by full-relation scans (zero for bounded plans; the
    /// naive baseline reports its scans here).
    pub tuples_scanned: u64,
    /// Number of rows materialized by cross-product nodes. Stays zero when the
    /// deferred-product peephole turns `σ[key eq](source × fetch)` into a hash join;
    /// executing the same plan with the peephole disabled reports `|source| · |fetch|`
    /// here.
    pub product_rows_materialized: u64,
}

impl AccessStats {
    /// Total number of tuples read from the database, by any means.
    pub fn total_tuples_read(&self) -> u64 {
        self.tuples_fetched + self.tuples_scanned
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: Self) {
        self.tuples_fetched += rhs.tuples_fetched;
        self.index_lookups += rhs.index_lookups;
        self.fetch_ops += rhs.fetch_ops;
        self.tuples_scanned += rhs.tuples_scanned;
        self.product_rows_materialized += rhs.product_rows_materialized;
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fetched {} tuples via {} lookups ({} fetch ops), scanned {} tuples",
            self.tuples_fetched, self.index_lookups, self.fetch_ops, self.tuples_scanned
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_display() {
        let mut a = AccessStats::default();
        a += AccessStats {
            tuples_fetched: 10,
            index_lookups: 2,
            fetch_ops: 1,
            tuples_scanned: 0,
            product_rows_materialized: 0,
        };
        a += AccessStats {
            tuples_fetched: 5,
            index_lookups: 1,
            fetch_ops: 1,
            tuples_scanned: 100,
            product_rows_materialized: 4,
        };
        assert_eq!(a.tuples_fetched, 15);
        assert_eq!(a.index_lookups, 3);
        assert_eq!(a.fetch_ops, 2);
        assert_eq!(a.product_rows_materialized, 4);
        assert_eq!(a.total_tuples_read(), 115);
        assert!(a.to_string().contains("fetched 15 tuples"));
    }
}

//! Multi-query execution sessions: one worker pool, many concurrently admitted
//! queries, fetch-bound admission control.
//!
//! [`crate::exec::execute_plan_on`] gives one query the whole scheduler. A
//! [`Session`] inverts that ownership: it owns a persistent pool of worker threads
//! and a single shared store, and [`Session::submit`] hands it queries whose
//! pipelines and morsels *interleave* in one global job queue. The contract:
//!
//! * **Isolation** — every query executes against its own materialization slots,
//!   residency ledger, split table and [`AccessStats`]; the only state queries share
//!   is the store (immutable) and the workers' time. A query's rows, row order and
//!   every deterministic access counter are *identical* to a solo
//!   [`crate::exec::execute_plan_on`] run of the same plan — concurrency moves wall
//!   clock, never data. Errors are per-query: the first failing job of a query wins,
//!   its queued jobs are discarded, and every other query proceeds untouched. A
//!   panicking operator fails only its own query; the payload is re-raised from
//!   [`QueryHandle::wait`].
//! * **Admission control** — every submission is priced by a
//!   [`CostTicket`] *before* it runs (the paper's bounded-evaluability guarantee:
//!   worst-case fetch volume is a static quantity). Against a configured aggregate
//!   fetch budget ([`SessionConfig::with_fetch_budget`] / the [`FETCH_BUDGET_ENV`]
//!   variable), a query whose own `fetch_bound` exceeds the budget is **rejected**
//!   deterministically — the same verdict at any load, any thread count. A query
//!   that fits the budget but not the *remaining* headroom is **queued** and admitted
//!   FIFO as running queries retire; at every instant the sum of admitted queries'
//!   fetch bounds is at most the budget (observable as
//!   [`AdmissionStats::peak_admitted_bound`]). An optional allocation-surface cap
//!   ([`SessionConfig::with_max_alloc_surface`]) additionally vetoes plans that
//!   would allocate on the per-probe hot path beyond the cap.
//! * **Scheduling** — the pool generalizes the single-query scheduler's affinity
//!   rules across queries: a worker prefers another morsel of the *same query's same
//!   pipeline* (its warmed split), then any job tagged with its last shard (shard
//!   affinity crosses queries — the partition is store-wide), then the queue front.
//!   Splittable pipelines cut into morsels exactly as in a solo run.
//!
//! [`Session::shutdown`] (or drop) drains every admitted and queued query before the
//! workers exit, so no accepted query is ever abandoned.

use crate::cache::{CacheStats, SessionFetchCache};
use crate::ops::sched::{execute_job, finalize_split, job_pipeline, try_split, Job, SplitState};
use crate::ops::{pool_cap_for, validate_for, ResidencyLedger, SharedMat};
use crate::stats::AccessStats;
use crate::table::Table;
use bea_core::error::{Error, Result};
use bea_core::plan::{
    lower_plan_with, CostTicket, LowerOptions, PhysicalPlan, PipelineDag, QueryPlan,
};
use bea_storage::{IndexedDatabase, ShardedDatabase, Store};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::resume_unwind;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Environment variable configuring the session's aggregate fetch budget — the
/// ceiling on the sum of admitted queries' fetch bounds — when
/// [`SessionConfig::fetch_budget`] is 0 (automatic). `0` and the empty string mean
/// "unlimited"; an explicit [`SessionConfig::with_fetch_budget`] beats the
/// environment. Parsed through the shared [`bea_core::env`] loud-failure contract: a
/// set-but-invalid value panics with the rejection reason instead of silently
/// admitting everything.
pub const FETCH_BUDGET_ENV: &str = "BEA_FETCH_BUDGET";

/// Environment variable configuring the session's cross-query fetch-cache budget —
/// the ceiling on cached posting rows resident across all queries — when
/// [`SessionConfig::cache_budget_rows`] is 0 (automatic). `0` and the empty string
/// mean "cache disabled", which reproduces the uncached executor bit-for-bit; an
/// explicit [`SessionConfig::with_cache_budget_rows`] beats the environment. Parsed
/// through the shared [`bea_core::env`] loud-failure contract: a set-but-invalid
/// value panics with the rejection reason instead of silently running uncached.
pub const CACHE_ROWS_ENV: &str = "BEA_CACHE_ROWS";

/// Parse a [`FETCH_BUDGET_ENV`] value. `Ok(Some(n))` is an aggregate budget of `n`
/// tuples; `Ok(None)` means "unlimited" (`0`, or the empty string); anything
/// unparsable is an error naming the reason. Pure, like
/// [`crate::exec::parse_threads`], so it is testable without mutating the process
/// environment.
pub fn parse_fetch_budget(value: &str) -> std::result::Result<Option<u64>, String> {
    Ok(bea_core::env::parse_count(value)?.auto_when_zero())
}

/// Parse a [`CACHE_ROWS_ENV`] value. `Ok(Some(n))` is a cache budget of `n` resident
/// posting rows; `Ok(None)` means "cache disabled" (`0`, or the empty string);
/// anything unparsable is an error naming the reason. Pure, like
/// [`parse_fetch_budget`], so it is testable without mutating the process
/// environment.
pub fn parse_cache_rows(value: &str) -> std::result::Result<Option<u64>, String> {
    Ok(bea_core::env::parse_count(value)?.auto_when_zero())
}

/// A store a [`Session`] can own: the `Arc`-shared flavor of
/// [`bea_storage::Store`], since the session's workers outlive any caller borrow.
#[derive(Clone)]
pub enum SharedStore {
    /// A single indexed database.
    Indexed(Arc<IndexedDatabase>),
    /// A sharded database; lowering fans keyed fetches out per shard exactly as
    /// [`crate::exec::execute_plan_on`] does.
    Sharded(Arc<ShardedDatabase>),
}

impl SharedStore {
    /// The borrowed [`Store`] view the executor runs against.
    pub fn store(&self) -> Store<'_> {
        match self {
            SharedStore::Indexed(db) => Store::Indexed(db),
            SharedStore::Sharded(db) => Store::Sharded(db),
        }
    }
}

impl From<IndexedDatabase> for SharedStore {
    fn from(db: IndexedDatabase) -> Self {
        SharedStore::Indexed(Arc::new(db))
    }
}

impl From<ShardedDatabase> for SharedStore {
    fn from(db: ShardedDatabase) -> Self {
        SharedStore::Sharded(Arc::new(db))
    }
}

/// Options controlling a [`Session`]: pool size, morsel size, and the admission
/// controller's limits. `#[non_exhaustive]`, same pattern as
/// [`crate::exec::ExecOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct SessionConfig {
    /// Worker threads in the pool. `0` (the default) resolves like
    /// [`crate::exec::ExecOptions::threads`]: `BEA_THREADS`, else available
    /// parallelism.
    pub threads: usize,
    /// Target rows per morsel, resolved like
    /// [`crate::exec::ExecOptions::morsel_size`] (`BEA_MORSELS`, else the default).
    pub morsel_size: usize,
    /// Aggregate fetch budget: the ceiling on the sum of admitted queries' fetch
    /// bounds. `0` (the default) resolves automatically: [`FETCH_BUDGET_ENV`] if
    /// set, otherwise unlimited.
    pub fetch_budget: u64,
    /// Per-query allocation-surface cap: reject any query whose
    /// [`CostTicket::alloc_surface`] exceeds this. `0` (the default) disables the
    /// veto.
    pub max_alloc_surface: u64,
    /// Cross-query fetch-cache budget, in resident posting rows. `0` (the default)
    /// resolves automatically: [`CACHE_ROWS_ENV`] if set, otherwise the cache is
    /// disabled and the session executes exactly as the uncached engine does.
    pub cache_budget_rows: u64,
}

impl SessionConfig {
    /// The default config: automatic pool size, no admission limits (unless the
    /// environment sets a budget).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker-thread count (0 = automatic).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the target rows per morsel (0 = automatic).
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size;
        self
    }

    /// Set the aggregate fetch budget (0 = resolve from [`FETCH_BUDGET_ENV`], else
    /// unlimited).
    pub fn with_fetch_budget(mut self, budget: u64) -> Self {
        self.fetch_budget = budget;
        self
    }

    /// Set the per-query allocation-surface cap (0 = no cap).
    pub fn with_max_alloc_surface(mut self, cap: u64) -> Self {
        self.max_alloc_surface = cap;
        self
    }

    /// Set the cross-query fetch-cache budget in resident posting rows (0 = resolve
    /// from [`CACHE_ROWS_ENV`], else disabled).
    pub fn with_cache_budget_rows(mut self, rows: u64) -> Self {
        self.cache_budget_rows = rows;
        self
    }

    /// The effective aggregate fetch budget: the explicit
    /// [`SessionConfig::fetch_budget`] if nonzero, else [`FETCH_BUDGET_ENV`], else
    /// unlimited (`None`).
    pub fn resolved_fetch_budget(&self) -> Option<u64> {
        if self.fetch_budget > 0 {
            return Some(self.fetch_budget);
        }
        bea_core::env::read_env(FETCH_BUDGET_ENV, parse_fetch_budget).flatten()
    }

    /// The effective cross-query fetch-cache budget: the explicit
    /// [`SessionConfig::cache_budget_rows`] if nonzero, else [`CACHE_ROWS_ENV`],
    /// else disabled (`None`).
    pub fn resolved_cache_budget_rows(&self) -> Option<u64> {
        if self.cache_budget_rows > 0 {
            return Some(self.cache_budget_rows);
        }
        bea_core::env::read_env(CACHE_ROWS_ENV, parse_cache_rows).flatten()
    }
}

/// Why the admission controller refused a submission outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The query's own worst-case fetch volume exceeds the aggregate budget — it
    /// could never run, at any load.
    FetchBound {
        /// The query's fetch bound.
        bound: u64,
        /// The session's aggregate budget.
        budget: u64,
    },
    /// The query's per-probe allocation surface exceeds the configured cap.
    AllocSurface {
        /// The query's allocation surface.
        surface: u64,
        /// The configured cap.
        limit: u64,
    },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::FetchBound { bound, budget } => write!(
                f,
                "fetch bound {bound} exceeds the aggregate fetch budget {budget}"
            ),
            Rejection::AllocSurface { surface, limit } => write!(
                f,
                "allocation surface {surface} exceeds the configured cap {limit}"
            ),
        }
    }
}

/// Why [`Session::submit`] returned no handle.
#[derive(Debug)]
pub enum SubmitError {
    /// The admission controller refused the query; the ticket says what it would
    /// have cost. Deterministic: the same plan gets the same verdict at any load.
    Rejected {
        /// The priced ticket of the refused query.
        ticket: Box<CostTicket>,
        /// The specific limit it broke.
        rejection: Rejection,
    },
    /// The plan failed lowering or validation, or the session is shut down.
    Invalid(Error),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { ticket, rejection } => {
                write!(f, "query {} rejected: {rejection}", ticket.query_name)
            }
            SubmitError::Invalid(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A snapshot of the session's admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries presented to [`Session::submit`].
    pub submitted: u64,
    /// Queries admitted to the pool (immediately or after queueing).
    pub admitted: u64,
    /// Queries that had to wait for budget headroom before admission.
    pub queued: u64,
    /// Queries refused outright (over-budget fetch bound or allocation surface).
    pub rejected: u64,
    /// Admitted queries that finished successfully.
    pub completed: u64,
    /// Admitted queries that ended in an error or a panic.
    pub failed: u64,
    /// Sum of currently admitted queries' fetch bounds.
    pub inflight_bound: u64,
    /// High-water mark of `inflight_bound` — never exceeds the budget.
    pub peak_admitted_bound: u64,
    /// The effective aggregate fetch budget (`None` = unlimited).
    pub budget: Option<u64>,
}

/// How one query ended, delivered to its [`QueryHandle`].
enum QueryOutcome {
    Finished(Box<(Table, AccessStats)>),
    Failed(Error),
    Panicked(Box<dyn Any + Send>),
}

/// The caller's handle to one admitted (or queued) query.
#[derive(Debug)]
pub struct QueryHandle {
    id: u64,
    ticket: CostTicket,
    queued: bool,
    rx: Receiver<QueryOutcome>,
}

impl QueryHandle {
    /// The session-unique id of this submission (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The priced ticket the admission controller accepted.
    pub fn ticket(&self) -> &CostTicket {
        &self.ticket
    }

    /// Whether the query had to queue for budget headroom (it still runs; this is
    /// informational).
    pub fn was_queued(&self) -> bool {
        self.queued
    }

    /// Block until the query finishes, returning its table and access statistics —
    /// exactly what [`crate::exec::execute_plan_on`] would have returned for the
    /// same plan. A panic inside the query's own operators is re-raised here, on
    /// the owner; other queries are unaffected.
    pub fn wait(self) -> Result<(Table, AccessStats)> {
        match self.rx.recv() {
            Ok(QueryOutcome::Finished(output)) => Ok(*output),
            Ok(QueryOutcome::Failed(error)) => Err(error),
            Ok(QueryOutcome::Panicked(payload)) => resume_unwind(payload),
            Err(_) => panic!("the session dropped a submitted query without an outcome"),
        }
    }
}

/// The immutable execution context of one admitted query, shared between the pool's
/// workers via `Arc`.
struct QueryShared {
    plan: PhysicalPlan,
    dag: PipelineDag,
    /// Per-pipeline shard tags, for cross-query shard affinity.
    shards: Vec<Option<u32>>,
    /// This query's private materialization slots.
    mats: Vec<OnceLock<SharedMat>>,
    /// This query's private residency ledger.
    ledger: Arc<ResidencyLedger>,
    pool_cap: usize,
    fetch_bound: u64,
}

/// What ended an admitted query early. First failure wins, per query.
enum Failure {
    Error(Error),
    Panic(Box<dyn Any + Send>),
}

/// Mutable pool-side state of one admitted query.
struct ActiveQuery {
    shared: Arc<QueryShared>,
    /// Remaining incomplete dependencies per pipeline.
    deps_left: Vec<usize>,
    /// Completion state per registered split.
    splits: Vec<SplitState>,
    /// Completed pipelines.
    completed: usize,
    /// This query's jobs currently executing on a worker.
    running: usize,
    failure: Option<Failure>,
    /// Concurrent merge of this query's per-job counters.
    stats: AccessStats,
    outcome: Sender<QueryOutcome>,
}

/// A submission waiting for budget headroom.
struct PendingQuery {
    id: u64,
    shared: Arc<QueryShared>,
    outcome: Sender<QueryOutcome>,
}

/// The pool's shared state, guarded by one mutex.
struct PoolState {
    /// Jobs ready for a worker, across all admitted queries.
    ready: VecDeque<(u64, Job)>,
    /// Admitted queries by id.
    active: BTreeMap<u64, ActiveQuery>,
    /// Admissible queries waiting for headroom, in submission order (FIFO — a big
    /// query at the front is never starved by small ones behind it).
    pending: VecDeque<PendingQuery>,
    /// Sum of admitted queries' fetch bounds.
    admitted_bound: u64,
    /// High-water mark of `admitted_bound`.
    peak_admitted_bound: u64,
    next_id: u64,
    counters: Counters,
    shutdown: bool,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    admitted: u64,
    queued: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
}

struct SessionInner {
    store: SharedStore,
    threads: usize,
    morsel_rows: usize,
    budget: Option<u64>,
    max_alloc_surface: Option<u64>,
    /// The cross-query fetch cache, when the session has a cache budget. `None`
    /// reproduces the uncached engine bit-for-bit.
    cache: Option<Arc<SessionFetchCache>>,
    state: Mutex<PoolState>,
    work: Condvar,
}

impl SessionInner {
    /// Take the pool mutex. Worker panics are caught inside [`execute_job`], so the
    /// bookkeeping this mutex guards is never left half-done; a poisoned guard is
    /// taken anyway, same as the single-query scheduler.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A multi-query execution session. See the module docs for the contract.
pub struct Session {
    inner: Arc<SessionInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Session {
    /// Start a session over `store` with `config`'s pool and admission settings.
    /// Spawns the worker threads immediately; they idle until a query is admitted.
    pub fn new(store: impl Into<SharedStore>, config: SessionConfig) -> Self {
        let exec = crate::exec::ExecOptions::new()
            .with_threads(config.threads)
            .with_morsel_size(config.morsel_size);
        let inner = Arc::new(SessionInner {
            store: store.into(),
            threads: exec.resolved_threads(),
            morsel_rows: exec.resolved_morsel_size(),
            budget: config.resolved_fetch_budget(),
            max_alloc_surface: (config.max_alloc_surface > 0).then_some(config.max_alloc_surface),
            cache: config
                .resolved_cache_budget_rows()
                .map(|rows| Arc::new(SessionFetchCache::new(rows))),
            state: Mutex::new(PoolState {
                ready: VecDeque::new(),
                active: BTreeMap::new(),
                pending: VecDeque::new(),
                admitted_bound: 0,
                peak_admitted_bound: 0,
                next_id: 0,
                counters: Counters::default(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..inner.threads.max(1))
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("bea-session-{worker}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a session worker thread")
            })
            .collect();
        Session { inner, workers }
    }

    /// The session's effective aggregate fetch budget (`None` = unlimited).
    pub fn fetch_budget(&self) -> Option<u64> {
        self.inner.budget
    }

    /// The session's worker-thread count.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// A snapshot of the cross-query fetch cache's counters. All-zero (including
    /// `budget_rows`) when the cache is disabled.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner
            .cache
            .as_ref()
            .map(|cache| cache.stats())
            .unwrap_or_default()
    }

    /// Price `plan`, run it through admission control, and — if admitted or queued —
    /// hand its jobs to the pool. Returns a [`QueryHandle`] to wait on, or a
    /// [`SubmitError`] when the plan is invalid or deterministically over budget.
    pub fn submit(&self, plan: &QueryPlan) -> std::result::Result<QueryHandle, SubmitError> {
        let inner = &self.inner;
        let store = inner.store.store();
        // Lower exactly as `execute_plan_on` does for this thread count, so a
        // session run is job-for-job the same physical plan as a solo run.
        let lower = LowerOptions::new()
            .with_exchange_parallelism(inner.threads > 1)
            .with_shard_fanout(store.shard_count());
        let physical = lower_plan_with(plan, &lower).map_err(SubmitError::Invalid)?;
        validate_for(&physical, store).map_err(SubmitError::Invalid)?;
        let ticket = CostTicket::derive(plan, store.schema(), store.size(), &physical);

        // Deterministic rejections first: verdicts that depend only on the ticket
        // and the configuration, never on current load.
        let rejection = match (inner.budget, inner.max_alloc_surface) {
            (Some(budget), _) if ticket.fetch_bound > budget => Some(Rejection::FetchBound {
                bound: ticket.fetch_bound,
                budget,
            }),
            (_, Some(limit)) if ticket.alloc_surface > limit => Some(Rejection::AllocSurface {
                surface: ticket.alloc_surface,
                limit,
            }),
            _ => None,
        };
        if let Some(rejection) = rejection {
            let mut guard = self.inner.lock_state();
            guard.counters.submitted += 1;
            guard.counters.rejected += 1;
            drop(guard);
            return Err(SubmitError::Rejected {
                ticket: Box::new(ticket),
                rejection,
            });
        }

        let dag = physical.pipeline_dag();
        let shards = dag.pipelines().iter().map(|p| p.shard).collect();
        let mats = (0..physical.len()).map(|_| OnceLock::new()).collect();
        let shared = Arc::new(QueryShared {
            pool_cap: pool_cap_for(&physical),
            plan: physical,
            dag,
            shards,
            mats,
            ledger: Arc::new(ResidencyLedger::default()),
            fetch_bound: ticket.fetch_bound,
        });
        let (tx, rx) = channel();

        let mut guard = inner.lock_state();
        if guard.shutdown {
            return Err(SubmitError::Invalid(Error::Invalid {
                reason: "the session is shut down".into(),
            }));
        }
        guard.counters.submitted += 1;
        let id = guard.next_id;
        guard.next_id += 1;
        // Strict FIFO fairness: nothing overtakes an already-queued query, even if
        // it would fit the current headroom.
        let fits = guard.pending.is_empty()
            && inner
                .budget
                .is_none_or(|budget| guard.admitted_bound + shared.fetch_bound <= budget);
        let queued = !fits;
        if queued {
            guard.counters.queued += 1;
            guard.pending.push_back(PendingQuery {
                id,
                shared,
                outcome: tx,
            });
            drop(guard);
        } else {
            let added = admit(&mut guard, id, shared, tx);
            drop(guard);
            for _ in 0..added {
                inner.work.notify_one();
            }
        }
        Ok(QueryHandle {
            id,
            ticket,
            queued,
            rx,
        })
    }

    /// A snapshot of the admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        let guard = self.inner.lock_state();
        AdmissionStats {
            submitted: guard.counters.submitted,
            admitted: guard.counters.admitted,
            queued: guard.counters.queued,
            rejected: guard.counters.rejected,
            completed: guard.counters.completed,
            failed: guard.counters.failed,
            inflight_bound: guard.admitted_bound,
            peak_admitted_bound: guard.peak_admitted_bound,
            budget: self.inner.budget,
        }
    }

    /// Drain every admitted and queued query, stop the workers, and tear the pool
    /// down. Equivalent to dropping the session, but explicit at call sites.
    pub fn shutdown(self) {}
}

impl Drop for Session {
    fn drop(&mut self) {
        {
            let mut guard = self.inner.lock_state();
            guard.shutdown = true;
        }
        self.inner.work.notify_all();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a job is a bug; surface it rather
            // than shutting down half-torn.
            if let Err(payload) = worker.join() {
                resume_unwind(payload);
            }
        }
        // With the workers gone nothing probes the cache; release its resident
        // rows so its ledger's teardown zero-assertion holds.
        if let Some(cache) = &self.inner.cache {
            cache.drain();
        }
    }
}

/// Admit one query: charge its fetch bound against the budget, register its
/// bookkeeping, and enqueue its dependency-free pipelines. Returns how many jobs
/// were added. Caller holds the pool lock and emits the wakeups.
fn admit(
    state: &mut PoolState,
    id: u64,
    shared: Arc<QueryShared>,
    outcome: Sender<QueryOutcome>,
) -> usize {
    state.counters.admitted += 1;
    state.admitted_bound += shared.fetch_bound;
    state.peak_admitted_bound = state.peak_admitted_bound.max(state.admitted_bound);
    let n = shared.dag.len();
    let deps_left: Vec<usize> = (0..n).map(|i| shared.dag.dependencies(i).len()).collect();
    let mut added = 0;
    for (pipeline, &deps) in deps_left.iter().enumerate() {
        if deps == 0 {
            state.ready.push_back((id, Job::Pipeline(pipeline)));
            added += 1;
        }
    }
    state.active.insert(
        id,
        ActiveQuery {
            shared,
            deps_left,
            splits: Vec::new(),
            completed: 0,
            running: 0,
            failure: None,
            stats: AccessStats::default(),
            outcome,
        },
    );
    added
}

/// Admit queued queries, in order, while the budget has headroom. Stops at the first
/// queued query that does not fit (FIFO — nothing overtakes it). Returns how many
/// jobs were added.
fn drain_pending(state: &mut PoolState, budget: Option<u64>) -> usize {
    let mut added = 0;
    loop {
        let fits = state.pending.front().is_some_and(|next| {
            budget.is_none_or(|budget| state.admitted_bound + next.shared.fetch_bound <= budget)
        });
        if !fits {
            return added;
        }
        let next = state.pending.pop_front().expect("front() was Some");
        added += admit(state, next.id, next.shared, next.outcome);
    }
}

/// Pop the next job for a worker whose previous job belonged to `last` =
/// `(query, pipeline)` on shard `last_shard`: first a morsel of the same query's
/// same pipeline (the split whose cache and batches this worker has warm), then the
/// first job tagged with the same shard — *any* query's, the partition is
/// store-wide — then the queue front. Pure queue reordering, exactly like the
/// single-query scheduler's `pick_ready`.
fn pick_ready_multi(
    ready: &mut VecDeque<(u64, Job)>,
    active: &BTreeMap<u64, ActiveQuery>,
    last: Option<(u64, usize)>,
    last_shard: Option<u32>,
) -> Option<(u64, Job)> {
    let shard_of = |id: &u64, job: &Job| {
        active
            .get(id)
            .and_then(|query| query.shared.shards[job_pipeline(job)])
    };
    let position = last
        .and_then(|(query, pipeline)| {
            ready
                .iter()
                .position(|(id, job)| *id == query && job_pipeline(job) == pipeline)
        })
        .or_else(|| {
            last_shard.and_then(|shard| {
                ready
                    .iter()
                    .position(|(id, job)| shard_of(id, job) == Some(shard))
            })
        })
        .unwrap_or(0);
    ready.remove(position)
}

/// Decrement the dependency counts of `pipeline`'s dependents within one query,
/// enqueueing the ones that became ready. Returns how many jobs were added.
fn unlock_dependents(
    query: &mut ActiveQuery,
    id: u64,
    pipeline: usize,
    ready: &mut VecDeque<(u64, Job)>,
) -> usize {
    let shared = Arc::clone(&query.shared);
    let mut added = 0;
    for &dependent in shared.dag.dependents(pipeline) {
        query.deps_left[dependent] -= 1;
        if query.deps_left[dependent] == 0 {
            ready.push_back((id, Job::Pipeline(dependent)));
            added += 1;
        }
    }
    added
}

/// Extract a finished query's output, mirroring the tail of the single-query
/// executor: take the output materialization, settle the residency ledger, count the
/// transpose's clones, and build the table. Runs *outside* the pool lock.
fn finish_query(shared: &QueryShared, mut stats: AccessStats) -> (Table, AccessStats) {
    let output = shared.plan.output();
    let (batches, output_rows) = {
        let mut node = shared.mats[output]
            .get()
            .expect("lowering marks the output step as a materialization point")
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let batches = node
            .batches
            .take()
            .expect("the output's virtual consumer is the session");
        (batches, node.rows)
    };
    shared.ledger.release(output_rows);
    stats.peak_rows_resident = shared.ledger.peak();
    debug_assert_eq!(
        shared.ledger.resident(),
        0,
        "a query's residency ledger must drain back to zero when it completes"
    );
    let mut rows: Vec<bea_core::value::Row> = Vec::with_capacity(output_rows as usize);
    for batch in batches {
        let (mut batch_rows, clones) = batch.into_rows();
        stats.values_cloned += clones;
        rows.append(&mut batch_rows);
    }
    let table = Table::with_rows(shared.plan.steps()[output].columns.clone(), rows);
    (table, stats)
}

/// One query's terminal transition, computed under the lock and delivered after it
/// is released.
enum Retired {
    Finished {
        shared: Arc<QueryShared>,
        stats: AccessStats,
        outcome: Sender<QueryOutcome>,
    },
    Failed {
        failure: Failure,
        outcome: Sender<QueryOutcome>,
    },
}

/// The pool's worker loop: claim a job (with affinity), split freshly claimed
/// splittable pipelines into morsels, execute with a per-job private state, and fold
/// the outcome into the owning query's bookkeeping. Exits when the session is shut
/// down and fully drained.
fn worker_loop(inner: &SessionInner) {
    // The (query, pipeline) and shard of this worker's previous job — its affinity.
    let mut last: Option<(u64, usize)> = None;
    let mut last_shard: Option<u32> = None;
    loop {
        let (id, job, shared) = {
            let mut guard = inner.lock_state();
            loop {
                let state = &mut *guard;
                if let Some((id, job)) =
                    pick_ready_multi(&mut state.ready, &state.active, last, last_shard)
                {
                    let query = state
                        .active
                        .get_mut(&id)
                        .expect("ready jobs belong to active queries");
                    query.running += 1;
                    break (id, job, Arc::clone(&query.shared));
                }
                if guard.shutdown && guard.active.is_empty() && guard.pending.is_empty() {
                    return;
                }
                guard = inner
                    .work
                    .wait(guard)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        last = Some((id, job_pipeline(&job)));
        last_shard = shared.shards[job_pipeline(&job)];
        // A freshly claimed pipeline may be splittable: cut it, enqueue the other
        // morsels (waking one worker per extra job), and run the first morsel in
        // this claim's place — same protocol as the single-query scheduler.
        let job = match job {
            Job::Pipeline(pipeline) => {
                match try_split(
                    &shared.plan,
                    &shared.dag,
                    pipeline,
                    &shared.mats,
                    inner.morsel_rows,
                ) {
                    Some(work) => {
                        let work = Arc::new(work);
                        let morsels = work.ranges.len();
                        let split = {
                            let mut guard = inner.lock_state();
                            let state = &mut *guard;
                            let query = state
                                .active
                                .get_mut(&id)
                                .expect("a running query stays active");
                            let split = query.splits.len();
                            query.splits.push(SplitState::new(morsels));
                            for index in 1..morsels {
                                state.ready.push_back((
                                    id,
                                    Job::Morsel {
                                        work: Arc::clone(&work),
                                        split,
                                        index,
                                    },
                                ));
                            }
                            split
                        };
                        for _ in 1..morsels {
                            inner.work.notify_one();
                        }
                        Job::Morsel {
                            work,
                            split,
                            index: 0,
                        }
                    }
                    None => Job::Pipeline(pipeline),
                }
            }
            morsel => morsel,
        };
        let outcome = execute_job(
            &shared.plan,
            &shared.dag,
            inner.store.store(),
            &shared.ledger,
            &shared.mats,
            shared.pool_cap,
            inner.cache.as_ref(),
            &job,
        );

        let mut guard = inner.lock_state();
        let state = &mut *guard;
        let mut added = 0usize;
        let mut retired: Option<Retired> = None;
        {
            let query = state
                .active
                .get_mut(&id)
                .expect("a running query stays active");
            query.running -= 1;
            match outcome {
                // Successful job of a healthy query: fold its counters in and
                // advance the query's DAG.
                Ok((Ok(output), stats)) if query.failure.is_none() => {
                    query.stats.merge_concurrent(stats);
                    match (&job, output) {
                        (Job::Pipeline(pipeline), _) => {
                            query.completed += 1;
                            added += unlock_dependents(query, id, *pipeline, &mut state.ready);
                        }
                        (Job::Morsel { work, split, index }, Some((batches, rows))) => {
                            let split_state = &mut query.splits[*split];
                            split_state.results[*index] = Some(batches);
                            split_state.rows += rows;
                            split_state.remaining -= 1;
                            if split_state.remaining == 0 {
                                let mut split_state = std::mem::replace(
                                    &mut query.splits[*split],
                                    SplitState::new(0),
                                );
                                finalize_split(
                                    &shared.plan,
                                    &mut split_state,
                                    work,
                                    shared.dag.pipelines()[work.pipeline].sink,
                                    &shared.mats,
                                    &shared.ledger,
                                );
                                query.completed += 1;
                                added +=
                                    unlock_dependents(query, id, work.pipeline, &mut state.ready);
                            }
                        }
                        _ => unreachable!("job kinds and outputs always pair up"),
                    }
                }
                // A job landing on an already-failed query: its work is discarded;
                // only the running count mattered.
                Ok((Ok(_), _)) => {}
                Ok((Err(error), _)) => {
                    // First failure wins for *this* query; its queued jobs are
                    // discarded, every other query is untouched.
                    if query.failure.is_none() {
                        query.failure = Some(Failure::Error(error));
                        state.ready.retain(|(owner, _)| *owner != id);
                    }
                }
                Err(payload) => {
                    if query.failure.is_none() {
                        query.failure = Some(Failure::Panic(payload));
                        state.ready.retain(|(owner, _)| *owner != id);
                    }
                }
            }
            // Terminal transitions: all pipelines done, or failed and fully
            // drained of in-flight jobs.
            let done = query.completed == query.shared.dag.len();
            let failed = query.failure.is_some() && query.running == 0;
            if done || failed {
                // A split registered after the failure purge may have re-enqueued
                // morsels; drop any leftovers before retiring the query.
                state.ready.retain(|(owner, _)| *owner != id);
                let query = state
                    .active
                    .remove(&id)
                    .expect("the query was just looked up");
                state.admitted_bound -= query.shared.fetch_bound;
                retired = Some(if done {
                    state.counters.completed += 1;
                    Retired::Finished {
                        shared: query.shared,
                        stats: query.stats,
                        outcome: query.outcome,
                    }
                } else {
                    state.counters.failed += 1;
                    Retired::Failed {
                        failure: query.failure.expect("the failed branch set it"),
                        outcome: query.outcome,
                    }
                });
                added += drain_pending(state, inner.budget);
            }
        }
        let retiring = retired.is_some();
        drop(guard);
        if retiring {
            // Budget headroom moved and waiters may need to re-check shutdown:
            // wake everyone.
            inner.work.notify_all();
        } else {
            // Counted wakeups: this worker loops around and claims one of the
            // newly-ready jobs itself; wake one waiter per extra job.
            for _ in 0..added.saturating_sub(1) {
                inner.work.notify_one();
            }
        }
        if let Some(retired) = retired {
            // The output transpose (potentially large) runs outside the lock.
            match retired {
                Retired::Finished {
                    shared,
                    stats,
                    outcome,
                } => {
                    let (table, stats) = finish_query(&shared, stats);
                    let _ = outcome.send(QueryOutcome::Finished(Box::new((table, stats))));
                }
                Retired::Failed { failure, outcome } => {
                    let _ = outcome.send(match failure {
                        Failure::Error(error) => QueryOutcome::Failed(error),
                        Failure::Panic(payload) => QueryOutcome::Panicked(payload),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_plan_on, ExecOptions};
    use bea_core::access::{AccessConstraint, AccessSchema};
    use bea_core::plan::{PlanBuilder, Predicate};
    use bea_core::schema::Catalog;
    use bea_core::value::Value;
    use bea_storage::Database;

    /// A tiny R(a → b) store with keys 1..=n, two b-values per key.
    fn fixture(n: i64) -> IndexedDatabase {
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap()
            ]);
        let mut db = Database::new(c);
        db.extend(
            "R",
            (1..=n).flat_map(|k| {
                [
                    vec![Value::int(k), Value::int(10 * k)],
                    vec![Value::int(k), Value::int(10 * k + 1)],
                ]
            }),
        )
        .unwrap();
        IndexedDatabase::build(db, schema).unwrap()
    }

    /// A union of `keys.len()` keyed-lookup branches — fetch bound 10 per branch.
    fn lookup_union(name: &str, keys: &[i64]) -> QueryPlan {
        let mut b = PlanBuilder::new();
        let branch = |b: &mut PlanBuilder, key: i64| {
            let k = b.constant(Value::int(key), "k");
            let fetched = b.fetch(
                k,
                vec![0],
                "R",
                vec![0],
                vec![1],
                0,
                vec!["a".into(), "b".into()],
            );
            let prod = b.product(k, fetched);
            b.select(prod, vec![Predicate::ColEqCol(0, 1)])
        };
        let mut acc = branch(&mut b, keys[0]);
        for &key in &keys[1..] {
            let next = branch(&mut b, key);
            acc = b.union(acc, next);
        }
        b.finish(name, acc).unwrap()
    }

    #[test]
    fn concurrent_queries_match_solo_runs() {
        let idb = fixture(6);
        let plans: Vec<QueryPlan> = (0..5)
            .map(|i| lookup_union(&format!("Q{i}"), &[1 + i, 2 + i, 3 + i]))
            .collect();
        let session = Session::new(
            SharedStore::Indexed(Arc::new(fixture(6))),
            SessionConfig::new().with_threads(4),
        );
        let handles: Vec<QueryHandle> = plans
            .iter()
            .map(|plan| session.submit(plan).unwrap())
            .collect();
        let solo_options = ExecOptions::new().with_threads(4);
        for (plan, handle) in plans.iter().zip(handles) {
            let (expected_table, expected_stats) =
                execute_plan_on(plan, Store::Indexed(&idb), &solo_options).unwrap();
            let (table, stats) = handle.wait().unwrap();
            assert_eq!(table.rows(), expected_table.rows(), "rows and row order");
            assert!(stats.same_data_access(&expected_stats));
            assert_eq!(stats.values_cloned, expected_stats.values_cloned);
            assert_eq!(stats.allocs_per_probe, expected_stats.allocs_per_probe);
        }
        let admission = session.admission_stats();
        assert_eq!(admission.submitted, 5);
        assert_eq!(admission.admitted, 5);
        assert_eq!(admission.completed, 5);
        assert_eq!(admission.rejected, 0);
        assert_eq!(admission.inflight_bound, 0);
        session.shutdown();
    }

    #[test]
    fn over_budget_queries_are_rejected_deterministically() {
        let session = Session::new(
            fixture(4),
            SessionConfig::new().with_threads(2).with_fetch_budget(25),
        );
        // Two branches: bound 20 ≤ 25 — admitted.
        let small = lookup_union("small", &[1, 2]);
        // Three branches: bound 30 > 25 — rejected, regardless of load.
        let big = lookup_union("big", &[1, 2, 3]);
        let handle = session.submit(&small).unwrap();
        let error = session.submit(&big).unwrap_err();
        match &error {
            SubmitError::Rejected { ticket, rejection } => {
                assert_eq!(ticket.fetch_bound, 30);
                assert_eq!(
                    rejection,
                    &Rejection::FetchBound {
                        bound: 30,
                        budget: 25
                    }
                );
            }
            other => panic!("expected a fetch-bound rejection, got {other}"),
        }
        assert!(error.to_string().contains("fetch bound 30"));
        handle.wait().unwrap();
        let admission = session.admission_stats();
        assert_eq!(admission.rejected, 1);
        assert_eq!(admission.admitted, 1);
        assert!(admission.peak_admitted_bound <= 25);
    }

    #[test]
    fn queued_queries_run_fifo_within_the_budget() {
        let session = Session::new(
            fixture(8),
            SessionConfig::new().with_threads(2).with_fetch_budget(30),
        );
        // Each query's bound is 20: only one fits at a time under budget 30.
        let plans: Vec<QueryPlan> = (0..4)
            .map(|i| lookup_union(&format!("Q{i}"), &[1 + i, 2 + i]))
            .collect();
        let handles: Vec<QueryHandle> = plans
            .iter()
            .map(|plan| session.submit(plan).unwrap())
            .collect();
        assert!(
            handles.iter().skip(1).any(|handle| handle.was_queued()),
            "with budget 30 and bounds of 20, later submissions must queue"
        );
        for handle in handles {
            handle.wait().unwrap();
        }
        let admission = session.admission_stats();
        assert_eq!(admission.admitted, 4);
        assert_eq!(admission.completed, 4);
        assert!(
            admission.peak_admitted_bound <= 30,
            "the admitted aggregate bound {} must never exceed the budget",
            admission.peak_admitted_bound
        );
        session.shutdown();
    }

    #[test]
    fn a_failing_query_does_not_poison_its_neighbors() {
        let idb = fixture(4);
        let session = Session::new(fixture(4), SessionConfig::new().with_threads(2));
        // An invalid plan fails at submit (validation), not at wait.
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "x");
        let f = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1],
            99,
            vec!["a".into(), "b".into()],
        );
        let bad = b.finish("bad", f).unwrap();
        assert!(matches!(session.submit(&bad), Err(SubmitError::Invalid(_))));
        // A healthy neighbor still runs to completion.
        let good = lookup_union("good", &[1, 2]);
        let (table, _) = session.submit(&good).unwrap().wait().unwrap();
        let (expected, _) = execute_plan_on(
            &good,
            Store::Indexed(&idb),
            &ExecOptions::new().with_threads(2),
        )
        .unwrap();
        assert_eq!(table.rows(), expected.rows());
    }

    #[test]
    fn a_panicking_query_fails_alone_and_reraises_on_wait() {
        use crate::ops::PANIC_RELATION;
        let mut c = Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare(PANIC_RELATION, ["a", "b"]).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap(),
            AccessConstraint::new(&c, PANIC_RELATION, &["a"], &["b"], 10).unwrap(),
        ]);
        let mut db = Database::new(c);
        db.extend("R", [vec![Value::int(1), Value::int(10)]])
            .unwrap();
        db.extend(PANIC_RELATION, [vec![Value::int(1), Value::int(10)]])
            .unwrap();
        let idb = IndexedDatabase::build(db, schema).unwrap();

        let session = Session::new(idb, SessionConfig::new().with_threads(2));
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "k");
        let f = b.fetch(
            k,
            vec![0],
            PANIC_RELATION,
            vec![0],
            vec![1],
            1,
            vec!["a".into(), "b".into()],
        );
        let doomed = b.finish("doomed", f).unwrap();
        let handle = session.submit(&doomed).unwrap();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle.wait()))
            .expect_err("the injected panic must re-raise on wait");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("injected operator panic"),
            "expected the injected payload, got {message:?}"
        );
        // The pool survives: a healthy query still completes afterwards.
        let good = lookup_union("good", &[1]);
        session.submit(&good).unwrap().wait().unwrap();
        let admission = session.admission_stats();
        assert_eq!(admission.failed, 1);
        assert_eq!(admission.completed, 1);
    }

    #[test]
    fn fetch_budget_env_values_are_validated() {
        assert_eq!(parse_fetch_budget("10000").unwrap(), Some(10_000));
        assert_eq!(parse_fetch_budget(" 5 ").unwrap(), Some(5));
        assert_eq!(parse_fetch_budget("0").unwrap(), None, "0 means unlimited");
        assert_eq!(parse_fetch_budget("").unwrap(), None, "empty means unset");
        assert!(parse_fetch_budget("lots").unwrap_err().contains("integer"));
        assert!(parse_fetch_budget("-3").is_err());
        // An explicit budget beats the environment.
        assert_eq!(
            SessionConfig::new()
                .with_fetch_budget(7)
                .resolved_fetch_budget(),
            Some(7)
        );
    }

    #[test]
    fn cache_rows_env_values_are_validated() {
        assert_eq!(parse_cache_rows("4096").unwrap(), Some(4096));
        assert_eq!(parse_cache_rows(" 12 ").unwrap(), Some(12));
        assert_eq!(parse_cache_rows("0").unwrap(), None, "0 means disabled");
        assert_eq!(parse_cache_rows("").unwrap(), None, "empty means unset");
        assert!(parse_cache_rows("plenty").unwrap_err().contains("integer"));
        assert!(parse_cache_rows("-1").is_err());
        // An explicit budget beats the environment.
        assert_eq!(
            SessionConfig::new()
                .with_cache_budget_rows(64)
                .resolved_cache_budget_rows(),
            Some(64)
        );
    }

    #[test]
    fn repeated_submissions_are_served_from_the_session_cache() {
        let idb = fixture(6);
        let session = Session::new(
            fixture(6),
            SessionConfig::new()
                .with_threads(2)
                .with_cache_budget_rows(4096),
        );
        let plan = lookup_union("repeat", &[1, 2, 3]);
        let (expected_table, expected_stats) = execute_plan_on(
            &plan,
            Store::Indexed(&idb),
            &ExecOptions::new().with_threads(2),
        )
        .unwrap();

        // Cold run: fills the cache; every deterministic data-access counter is
        // identical to the uncached solo run.
        let (cold_table, cold_stats) = session.submit(&plan).unwrap().wait().unwrap();
        assert_eq!(cold_table.rows(), expected_table.rows());
        assert!(cold_stats.same_data_access(&expected_stats));
        assert_eq!(cold_stats.values_cloned, expected_stats.values_cloned);
        assert_eq!(cold_stats.allocs_per_probe, expected_stats.allocs_per_probe);

        // Warm runs: same rows and order, zero store fetches, zero probe-path
        // buffer demand — every posting comes off the session cache.
        for _ in 0..3 {
            let (warm_table, warm_stats) = session.submit(&plan).unwrap().wait().unwrap();
            assert_eq!(warm_table.rows(), expected_table.rows(), "rows and order");
            assert_eq!(warm_stats.tuples_fetched, 0, "no store fetches when warm");
            assert_eq!(warm_stats.index_lookups, 0);
            assert_eq!(
                warm_stats.allocs_per_probe, 0,
                "warm probes allocate nothing"
            );
            assert!(warm_stats.cache_hits > 0);
            assert_eq!(
                warm_stats.rows_served_from_cache, expected_stats.tuples_fetched,
                "every fetched posting row is served from the cache when warm"
            );
        }

        let cache = session.cache_stats();
        assert_eq!(cache.budget_rows, 4096);
        assert!(cache.hits >= 9, "3 warm runs x 3 keys, got {}", cache.hits);
        assert_eq!(cache.resident_rows, expected_stats.tuples_fetched);
        assert_eq!(cache.evictions, 0);
        session.shutdown();
    }

    #[test]
    fn a_disabled_cache_reports_zero_stats() {
        let session = Session::new(fixture(2), SessionConfig::new().with_threads(1));
        if std::env::var_os(CACHE_ROWS_ENV).is_none() {
            assert_eq!(session.cache_stats(), CacheStats::default());
        }
        let plan = lookup_union("solo", &[1, 2]);
        session.submit(&plan).unwrap().wait().unwrap();
    }
}

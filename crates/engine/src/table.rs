//! Result tables with set semantics.

use bea_core::value::{Row, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A named-column table of rows. Query answers are sets, so [`Table::dedup`] (applied by
/// both evaluators) removes duplicates; comparisons go through [`Table::row_set`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Row>,
}

impl Table {
    /// Create an empty table with the given column labels.
    pub fn new(columns: Vec<String>) -> Self {
        Self {
            columns,
            rows: Vec::new(),
        }
    }

    /// Create a table from columns and rows.
    pub fn with_rows(columns: Vec<String>, rows: Vec<Row>) -> Self {
        Self { columns, rows }
    }

    /// Column labels.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The rows (possibly with duplicates until [`Table::dedup`] is called).
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row (arity is the caller's responsibility; the executors maintain it).
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Remove duplicate rows (set semantics), preserving first-occurrence order.
    pub fn dedup(&mut self) {
        let mut seen: BTreeSet<Row> = BTreeSet::new();
        self.rows.retain(|r| seen.insert(r.clone()));
    }

    /// The rows as a set, for order-insensitive comparisons.
    pub fn row_set(&self) -> BTreeSet<Row> {
        self.rows.iter().cloned().collect()
    }

    /// True when both tables contain the same set of rows.
    pub fn same_rows(&self, other: &Table) -> bool {
        self.row_set() == other.row_set()
    }

    /// Sort rows lexicographically (for deterministic output).
    pub fn sort(&mut self) {
        self.rows.sort();
    }

    /// Single-column helper: the values of the first column.
    pub fn first_column(&self) -> Vec<Value> {
        self.rows
            .iter()
            .filter_map(|r| r.first().cloned())
            .collect()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join("\t"))?;
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", line.join("\t"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_dedup() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        assert!(t.is_empty());
        t.push(vec![Value::int(1), Value::int(2)]);
        t.push(vec![Value::int(1), Value::int(2)]);
        t.push(vec![Value::int(3), Value::int(4)]);
        assert_eq!(t.len(), 3);
        t.dedup();
        assert_eq!(t.len(), 2);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.columns(), &["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn set_comparison_ignores_order() {
        let t1 = Table::with_rows(
            vec!["a".into()],
            vec![vec![Value::int(1)], vec![Value::int(2)]],
        );
        let mut t2 = Table::with_rows(
            vec!["x".into()],
            vec![vec![Value::int(2)], vec![Value::int(1)]],
        );
        assert!(t1.same_rows(&t2));
        t2.push(vec![Value::int(3)]);
        assert!(!t1.same_rows(&t2));
        t2.sort();
        assert_eq!(t2.rows()[0], vec![Value::int(1)]);
    }

    #[test]
    fn display_and_first_column() {
        let t = Table::with_rows(
            vec!["a".into(), "b".into()],
            vec![vec![Value::int(1), Value::str("x")]],
        );
        let s = t.to_string();
        assert!(s.contains("a\tb"));
        assert!(s.contains("1\t\"x\""));
        assert_eq!(t.first_column(), vec![Value::int(1)]);
        assert_eq!(t.row_set().len(), 1);
    }
}

//! # bea-engine — executing bounded plans and baselines
//!
//! Two evaluators over `bea-storage` databases:
//!
//! * [`exec`] — the **bounded plan executor**: runs a [`bea_core::plan::QueryPlan`]
//!   against an [`bea_storage::IndexedDatabase`], performing every `fetch` through the
//!   index of its backing access constraint and accounting for every tuple it reads
//!   ([`stats::AccessStats`]). For a boundedly evaluable plan the number of tuples read
//!   is independent of the database size — this is the paper's headline property and the
//!   quantity the experiments report.
//! * [`naive`] — the **baseline evaluator**: answers CQ / UCQ / ∃FO⁺ queries by scanning
//!   the relations and hash-joining them, the stand-in for "just run it on the DBMS"
//!   (MySQL in the paper's Example 1.1). Its cost grows with `|D|`.
//!
//! The bounded executor has two strategies behind one entry point: the **streaming batch
//! pipeline** ([`ops`], the default — plans are lowered to physical plans and run with
//! bounded memory residency) and the historical **materialized step loop** (the ablation
//! baseline). [`stats::AccessStats::peak_rows_resident`] makes the difference
//! observable; both strategies read exactly the same data.
//!
//! # Batch layout and interning rules
//!
//! The streaming pipeline moves rows in **columnar batches**: a batch is a list of
//! `Arc`-shared columns plus an optional selection vector naming the logically present
//! rows. The layout dictates what each operator costs:
//!
//! * *filter* writes a selection vector, *project* permutes column handles, and
//!   crossing a materialization point (the exchange between pipelines) clones column
//!   handles — none of these copies a value;
//! * *gathers* — joins, products and fetch output, the operators that genuinely
//!   combine rows — write values into fresh columns; everything else is metadata.
//!
//! Value writes are O(1) because [`bea_core::value::Value`] **interns by sharing**:
//! string payloads live behind `Arc<str>`, written once when the value is created
//! (data load or parse time) and aliased by every clone afterwards. Join keys, fetch
//! caches and dedup sets therefore hold references to the same bytes the relations
//! do. [`stats::AccessStats::values_cloned`] counts every value moved between executor
//! buffers — deterministic for a plan at any thread count, which is what lets the
//! perf-smoke CI step assert the pipeline's copy traffic instead of eyeballing it.
//!
//! # Buffer pooling and the zero-allocation probe path
//!
//! Steady-state anchored probes — one probe key hitting a warmed
//! [`ops`] `KeyedLookupOp` cache with a fused projection — allocate nothing. The
//! machinery behind the guarantee, and its ownership contract:
//!
//! * every [`ops`] execution state owns a **buffer pool** of recycled column and
//!   selection-vector buffers; operators draw probe-path buffers from it and return
//!   them when a batch or cache entry is retired. Buffers are always **cleared before
//!   they are pooled** — the pool holds capacity, never rows, so the residency
//!   ledger's teardown zero-assertion is unaffected;
//! * the pool lives and dies with its executor state: it never crosses threads, and
//!   draining it at teardown is a plain drop — recycled capacity is an optimization,
//!   not state. Its freelist cap is sized from the plan's own fetch surface (the sum
//!   of fetched positions across lookup steps, clamped to a small floor and ceiling),
//!   so tiny plans pin a handful of buffers and wide plans cannot hoard capacity;
//! * [`stats::AccessStats::allocs_per_probe`] counts probe-path *buffer-demand*
//!   events (a pool hit still counts — the metric models demand, not the allocator),
//!   so it is deterministic, additive, thread- and shard-invariant, and **zero for
//!   warmed probes** — the property the test suite asserts and `BENCH_pipeline.json`
//!   records; like the shard distribution it is excluded from
//!   [`AccessStats::same_data_access`].
//!
//! # Threading model
//!
//! The streaming pipeline can use worker threads ([`ExecOptions::with_threads`]; the
//! default resolves to the `BEA_THREADS` environment variable or the machine's
//! available parallelism). The plan's pipeline DAG — pipelines bounded by
//! materialization points, materialized results as exchange edges — is scheduled over
//! scoped workers: a pipeline runs as soon as its sources are complete, operator trees
//! stay on one thread, and only the materialized steps and the **shared residency
//! ledger** cross threads. The ledger makes `peak_rows_resident` the *true* number of
//! simultaneously resident rows across all workers. Per-worker counters are combined
//! with [`AccessStats::merge_concurrent`] (peaks add — overlapping windows), in
//! contrast to [`AccessStats::merge_sequential`] / `+=` (peaks max — disjoint
//! windows). `threads = 1` reproduces the single-threaded streaming behavior exactly;
//! every data-access counter is identical at any thread count.
//!
//! Parallelism also reaches *inside* a single heavy pipeline: a linear chain of
//! per-batch operators over one materialized source is **morsel-splittable**
//! (`bea_core::plan::Pipeline::morsel_source`), and the scheduler cuts its source
//! batches into morsels — groups of consecutive *whole* batches of at least
//! [`ExecOptions::morsel_size`] rows (`BEA_MORSELS`, default
//! [`DEFAULT_MORSEL_ROWS`]) — that run as concurrent operator-chain instances.
//! Each morsel owns its `ExecState` (stats and buffer pool stay per-worker); the
//! only cross-morsel state is a shared per-lookup-step result cache that fills each
//! distinct key exactly once, so the split performs the *same* data access as the
//! unsplit pipeline. Per-morsel outputs are concatenated in morsel order, so rows,
//! row order and every deterministic counter are identical at every morsel size —
//! the property `tests/properties.rs` asserts across the morsel × thread × shard
//! matrix.
//!
//! # Sharded execution and routing rules
//!
//! Executing against a `bea_storage::ShardedDatabase` (via [`exec::execute_plan_on`] /
//! [`exec::execute_physical_on`] and `bea_storage::Store::Sharded`) pushes the store's
//! partitioning through the whole stack:
//!
//! * **Lowering** fans every keyed fetch/lookup out into one branch per shard
//!   (`bea_core::plan::physical`, `LowerOptions::shard_fanout`), merged by union; the
//!   branches are materialization points, so the pipeline DAG gains one shard-local
//!   pipeline per shard and parallel width ≥ the shard count.
//! * **Routing** is the store's deterministic key hash (`bea_storage::shard_of`),
//!   applied by the branch operators *in place* over the probe-key columns: a row
//!   owned by another shard is skipped without cloning anything, so across branches
//!   every key is gathered exactly once and `values_cloned` is shard-count-invariant.
//!   Each fetch probes only the index partition that owns its key, and each emitted
//!   batch carries its origin shard.
//! * **Scheduling** honors shard affinity: a worker that just ran shard `k`'s
//!   pipeline prefers the next ready pipeline tagged `k` (see [`ops`]' scheduler), so
//!   consecutive probes of one partition stay on one worker.
//! * **Accounting**: [`AccessStats::rows_fetched_by_shard`] splits `tuples_fetched`
//!   by serving shard (the two always sum up), so boundedness is assertable per
//!   shard; the distribution is a placement artifact and excluded from
//!   [`AccessStats::same_data_access`]. Answers, data-access totals and copy traffic
//!   are identical at every shard count — partitioning relocates bounded work, it
//!   never adds any.
//!
//! # Multi-query execution and admission control
//!
//! [`session::Session`] turns the scheduler around: instead of one query owning the
//! worker pool for one call, a session owns a persistent pool over one shared store
//! and [`session::Session::submit`] interleaves the pipelines and morsels of many
//! concurrently admitted queries in a single job queue. The contract, asserted by
//! `tests/properties.rs` across the thread × shard matrix:
//!
//! * **Per-query isolation.** Each admitted query runs against its own
//!   materialization slots, residency ledger and [`AccessStats`]; its rows, row
//!   order and every deterministic counter are identical to a solo
//!   [`exec::execute_plan_on`] run of the same plan. The first failing job of a
//!   query fails *that query only* — its queued jobs are discarded, its error (or
//!   re-raised panic) is delivered on [`session::QueryHandle::wait`], and every
//!   other query proceeds untouched.
//! * **Fetch-bound admission.** Every submission is priced *before* it runs by a
//!   [`bea_core::plan::CostTicket`] — the paper's bounded-evaluability guarantee
//!   makes worst-case fetch volume a static quantity — and checked against the
//!   session's aggregate fetch budget ([`session::FETCH_BUDGET_ENV`], or
//!   [`session::SessionConfig::with_fetch_budget`]). A query whose own bound
//!   exceeds the budget is rejected deterministically (same verdict at any load); a
//!   query that fits the budget but not the current headroom queues FIFO; at every
//!   instant the sum of admitted bounds is at most the budget
//!   ([`session::AdmissionStats::peak_admitted_bound`] is the observable
//!   high-water mark). The ticket also carries the plan's per-pipeline
//!   **allocation surface**, so a session can veto hot-path-allocating plans
//!   outright ([`session::SessionConfig::with_max_alloc_surface`]).
//! * **Affinity across queries.** Workers keep the single-query scheduler's
//!   preference order — own split's morsels first, then same-shard jobs (from any
//!   query; the partition is store-wide), then FIFO.
//!
//! # The cross-query fetch cache — ownership and coherence
//!
//! A session may also own a **cross-query fetch-result cache**
//! ([`session::SessionConfig::with_cache_budget_rows`] /
//! [`session::CACHE_ROWS_ENV`]; 0 or unset = disabled): a striped, bounded LRU
//! hot tier keyed by `(constraint, key)` holding the `Arc`-shared posting columns
//! an anchored lookup produced. Its contract:
//!
//! * **Ownership.** The cache belongs to the session, not to any query: entries
//!   hold column handles (refcounts, never value copies), resident rows are
//!   charged to the cache's *own* residency ledger — not to any query's — and the
//!   whole tier is drained when the session drops. The store is immutable for the
//!   session's lifetime, so there is no invalidation protocol: coherence is by
//!   construction.
//! * **Settled probe semantics.** A hit is one hash lookup plus a refcount bump —
//!   no store fetch, no index probe, no probe-path buffer demand. It bumps only
//!   [`AccessStats::cache_hits`] / [`AccessStats::rows_served_from_cache`]
//!   (additive, excluded from [`AccessStats::same_data_access`]); `tuples_fetched`,
//!   `index_lookups` and `allocs_per_probe` record genuine store traffic only, so
//!   a warm repeat reports `tuples_fetched == 0` and `allocs_per_probe == 0`. A
//!   miss runs today's uncached path verbatim — byte-for-byte the counters a
//!   cache-disabled session produces — and publishes its result exactly once
//!   (concurrent probes of the same key block on the filling query rather than
//!   fetching twice).
//! * **Bounded, loudly.** Eviction is strict LRU over resident rows against the
//!   configured row budget; an entry larger than the whole budget is simply not
//!   admitted. Admission control never reads the cache: a repeat query is priced
//!   at its *uncached* worst case, because cached rows can be evicted between
//!   pricing and execution — the bound must hold either way.
//!
//! The `bead` crate packages a session behind a Unix-socket line protocol
//! (`bead` daemon / `beactl` client); see its docs for the wire format.
//!
//! [`table::Table`] is the shared result representation (set semantics).

pub(crate) mod cache;
pub mod exec;
pub mod naive;
pub mod ops;
pub mod session;
pub mod stats;
pub mod table;

pub use cache::CacheStats;

pub use exec::{
    execute_physical, execute_physical_on, execute_physical_with_options, execute_plan,
    execute_plan_on, execute_plan_with_options, ExecOptions, DEFAULT_MORSEL_ROWS, MORSELS_ENV,
    THREADS_ENV,
};
pub use naive::{eval_cq, eval_fo, eval_query, eval_ucq};
pub use session::{
    parse_cache_rows, parse_fetch_budget, AdmissionStats, QueryHandle, Rejection, Session,
    SessionConfig, SharedStore, SubmitError, CACHE_ROWS_ENV, FETCH_BUDGET_ENV,
};
pub use stats::AccessStats;
pub use table::Table;

//! Leaf operators: singletons, the empty relation, and scans of materialized steps.

use super::{Operator, SharedMat, SharedState, BATCH_SIZE};
use bea_core::error::Result;
use bea_core::value::Row;

/// Emits a single row once (constants and the unit table).
pub(crate) struct SingletonOp {
    row: Option<Row>,
}

impl SingletonOp {
    pub(crate) fn new(row: Row) -> Self {
        Self { row: Some(row) }
    }
}

impl Operator for SingletonOp {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        Ok(self.row.take().map(|row| vec![row]))
    }
}

/// Emits nothing.
pub(crate) struct EmptyOp;

impl Operator for EmptyOp {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        Ok(None)
    }
}

/// Streams a materialized step to one of its consumers. When the last consumer is done,
/// the materialized rows are dropped and their residency released — this is what makes
/// the pipeline's high-water mark smaller than the materialized executor's.
pub(crate) struct ScanOp {
    node: SharedMat,
    state: SharedState,
    pos: usize,
    done: bool,
}

impl ScanOp {
    pub(crate) fn new(node: SharedMat, state: SharedState) -> Self {
        Self {
            node,
            state,
            pos: 0,
            done: false,
        }
    }
}

impl Operator for ScanOp {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        let mut node = self.node.borrow_mut();
        let len = node
            .rows
            .as_ref()
            .expect("materialized rows outlive their consumers")
            .len();
        if self.pos < len {
            let end = (self.pos + BATCH_SIZE).min(len);
            let batch = node.rows.as_ref().expect("checked above")[self.pos..end].to_vec();
            self.pos = end;
            return Ok(Some(batch));
        }
        self.done = true;
        node.remaining -= 1;
        if node.remaining == 0 {
            node.rows = None;
            self.state.borrow_mut().release(len as u64);
        }
        Ok(None)
    }
}

//! Leaf operators: singletons, the empty relation, and scans of materialized steps.

use super::batch::Batch;
use super::{Operator, SharedMat, SharedState};
use bea_core::error::Result;
use bea_core::value::Row;
use std::sync::PoisonError;

/// Emits a single row once (constants and the unit table).
pub(crate) struct SingletonOp {
    row: Option<Row>,
}

impl SingletonOp {
    pub(crate) fn new(row: Row) -> Self {
        Self { row: Some(row) }
    }
}

impl Operator for SingletonOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        Ok(self.row.take().map(Batch::singleton))
    }
}

/// Emits nothing.
pub(crate) struct EmptyOp;

impl Operator for EmptyOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        Ok(None)
    }
}

/// Streams a materialized step to one of its consumers — the exchange protocol between
/// pipelines. Each pull hands out the next stored batch by *cheap clone* (an `Arc`
/// bump per column — no value is copied crossing a materialization point). When the
/// last consumer is done, the batches are dropped and their residency released; a
/// consumer counts as done when it drains the scan *or* drops it mid-stream
/// (short-circuits must not leak the materialization).
pub(crate) struct ScanOp {
    node: SharedMat,
    state: SharedState,
    pos: usize,
    finished: bool,
}

impl ScanOp {
    pub(crate) fn new(node: SharedMat, state: SharedState) -> Self {
        Self {
            node,
            state,
            pos: 0,
            finished: false,
        }
    }

    /// Mark this consumer done exactly once: decrement the node's consumer count and,
    /// if this was the last consumer, free the batches and release their residency.
    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        // Tolerate a lock poisoned by a worker that panicked while publishing or
        // scanning: the node's bookkeeping is never left half-done, and the panic
        // itself is what the scheduler reports — a secondary panic here would only
        // mask it (and leak the consumer count during this drop's cleanup).
        let mut node = self.node.lock().unwrap_or_else(PoisonError::into_inner);
        node.remaining -= 1;
        if node.remaining == 0 && node.batches.take().is_some() {
            self.state.borrow_mut().release(node.rows);
        }
    }
}

impl Operator for ScanOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.finished {
            return Ok(None);
        }
        let batch = {
            // Poison-tolerant for the same reason as `finish`.
            let node = self.node.lock().unwrap_or_else(PoisonError::into_inner);
            let batches = node
                .batches
                .as_ref()
                .expect("materialized batches outlive their consumers");
            let batch = batches.get(self.pos).cloned();
            self.pos += 1;
            batch
        };
        match batch {
            Some(batch) => Ok(Some(batch)),
            None => {
                self.finish();
                Ok(None)
            }
        }
    }
}

impl Drop for ScanOp {
    fn drop(&mut self) {
        self.finish();
    }
}

//! The streaming batch pipeline executing physical plans.
//!
//! [`execute_physical`] runs a [`PhysicalPlan`] (lowered by
//! `bea_core::plan::physical::lower_plan`) against an [`IndexedDatabase`] as a tree of
//! pull-based operators, each implementing [`Operator::next_batch`]. Rows move through
//! the pipeline in bounded batches; only genuine pipeline breakers hold rows for longer
//! than a batch:
//!
//! * steps marked [`bea_core::plan::PhysStep::materialize`] (shared by several
//!   consumers, or the plan output) are materialized once and *freed as soon as their
//!   last consumer has drained them*;
//! * join build sides, per-key fetch caches, dedup sets and the key set of a fetch are
//!   operator-internal state, released when the operator is exhausted.
//!
//! Every durable row held by one of those structures is accounted in
//! [`ExecState`], whose high-water mark becomes
//! [`crate::stats::AccessStats::peak_rows_resident`] — the observable that the
//! materialized-vs-streaming ablation compares. Data access (index lookups, tuples
//! fetched, per-relation counters) is accounted identically to the materialized
//! executor: lowering changes *how* intermediate results flow, never *what* is fetched,
//! so a bounded plan stays bounded.
//!
//! Operator catalogue: [`source`] (constants, unit, empty, scans of materialized
//! steps), [`fetch`] (streaming index fetch and the fused keyed-lookup join),
//! [`relational`] (filter, project, dedup, union, difference, product) and [`join`]
//! (the generic hash join used when a fetch result stays shared).

pub(crate) mod fetch;
pub(crate) mod join;
pub(crate) mod relational;
pub(crate) mod source;

use crate::stats::AccessStats;
use crate::table::Table;
use bea_core::error::Result;
use bea_core::plan::{PhysOp, PhysicalPlan, Predicate};
use bea_core::value::{Row, Value};
use bea_storage::IndexedDatabase;
use std::cell::RefCell;
use std::rc::Rc;

/// Rows per pulled batch. Large enough to amortize dispatch, small enough that batch
/// buffers stay negligible next to any real intermediate result.
pub(crate) const BATCH_SIZE: usize = 1024;

/// Mutable state shared by every operator of one execution: access statistics plus the
/// residency ledger behind `peak_rows_resident`.
#[derive(Debug, Default)]
pub(crate) struct ExecState {
    /// Access statistics accumulated across the pipeline.
    pub stats: AccessStats,
    resident: u64,
}

impl ExecState {
    /// Record `rows` newly held by a durable structure (materialized step, build side,
    /// cache, dedup set) and update the high-water mark.
    pub fn acquire(&mut self, rows: u64) {
        self.resident += rows;
        if self.resident > self.stats.peak_rows_resident {
            self.stats.peak_rows_resident = self.resident;
        }
    }

    /// Record `rows` released by a durable structure.
    pub fn release(&mut self, rows: u64) {
        self.resident = self.resident.saturating_sub(rows);
    }
}

/// Shared handle to the execution state.
pub(crate) type SharedState = Rc<RefCell<ExecState>>;

/// A pull-based streaming operator.
///
/// Contract: `next_batch` returns `Ok(Some(batch))` (possibly empty) while rows may
/// remain and `Ok(None)` once exhausted, forever after. Operators release their durable
/// state when they report exhaustion; consumers always drain their inputs fully.
pub(crate) trait Operator {
    /// Pull the next batch of rows.
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>>;
}

/// Boxed operator borrowing the database for `'db`.
pub(crate) type BoxOp<'db> = Box<dyn Operator + 'db>;

/// A materialized step: rows plus the number of consumers still to drain them. The rows
/// are dropped — and their residency released — when the last consumer finishes.
#[derive(Debug)]
pub(crate) struct MatNode {
    rows: Option<Vec<Row>>,
    remaining: usize,
}

/// Shared handle to a materialized step.
pub(crate) type SharedMat = Rc<RefCell<MatNode>>;

/// Evaluate whether `row` satisfies every predicate.
pub(crate) fn passes(row: &[Value], predicates: &[Predicate]) -> bool {
    predicates.iter().all(|p| match p {
        Predicate::ColEqCol(a, b) => row[*a] == row[*b],
        Predicate::ColEqConst(a, c) => &row[*a] == c,
    })
}

/// Execute a physical plan against an indexed database with the streaming pipeline,
/// returning the output table and the access/residency statistics.
pub fn execute_physical(
    plan: &PhysicalPlan,
    database: &IndexedDatabase,
) -> Result<(Table, AccessStats)> {
    let state: SharedState = Rc::new(RefCell::new(ExecState::default()));
    let mut mats: Vec<Option<SharedMat>> = vec![None; plan.len()];

    // Materialization points are evaluated in step order; everything between them is
    // pulled lazily by the operator tree rooted at the consuming breaker.
    for (i, step) in plan.steps().iter().enumerate() {
        if !step.materialize {
            continue;
        }
        let mut op = build_op(plan, i, database, &state, &mats)?;
        let mut rows: Vec<Row> = Vec::new();
        while let Some(batch) = op.next_batch()? {
            state.borrow_mut().acquire(batch.len() as u64);
            rows.extend(batch);
        }
        drop(op);
        mats[i] = Some(Rc::new(RefCell::new(MatNode {
            rows: Some(rows),
            remaining: step.consumers,
        })));
    }

    let output = plan.output();
    let node = mats[output]
        .take()
        .expect("lowering marks the output step as a materialization point");
    let rows = node
        .borrow_mut()
        .rows
        .take()
        .expect("the output's virtual consumer is the caller");
    let table = Table::with_rows(plan.steps()[output].columns.clone(), rows);
    let stats = state.borrow().stats.clone();
    Ok((table, stats))
}

/// Build the operator for step `node`, recursing into non-materialized inputs and
/// scanning materialized ones.
fn build_op<'db>(
    plan: &PhysicalPlan,
    node: usize,
    database: &'db IndexedDatabase,
    state: &SharedState,
    mats: &[Option<SharedMat>],
) -> Result<BoxOp<'db>> {
    let input = |j: usize| -> Result<BoxOp<'db>> {
        match &mats[j] {
            Some(mat) => Ok(Box::new(source::ScanOp::new(mat.clone(), state.clone()))),
            None => build_op(plan, j, database, state, mats),
        }
    };
    let op: BoxOp<'db> = match &plan.steps()[node].op {
        PhysOp::Const { value } => Box::new(source::SingletonOp::new(vec![value.clone()])),
        PhysOp::Unit => Box::new(source::SingletonOp::new(Vec::new())),
        PhysOp::Empty { .. } => Box::new(source::EmptyOp),
        PhysOp::Fetch {
            source,
            key_cols,
            relation,
            positions,
            constraint_index,
            ..
        } => Box::new(fetch::FetchOp::new(
            input(*source)?,
            key_cols.clone(),
            relation.clone(),
            positions.clone(),
            *constraint_index,
            database,
            state.clone(),
        )),
        PhysOp::KeyedLookup {
            source,
            key_cols,
            relation,
            positions,
            constraint_index,
            residual,
            ..
        } => Box::new(fetch::KeyedLookupOp::new(
            input(*source)?,
            key_cols.clone(),
            relation.clone(),
            positions.clone(),
            *constraint_index,
            residual.clone(),
            database,
            state.clone(),
        )),
        PhysOp::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => Box::new(join::HashJoinOp::new(
            input(*left)?,
            input(*right)?,
            left_keys.clone(),
            right_keys.clone(),
            residual.clone(),
            state.clone(),
        )),
        PhysOp::Filter { source, predicates } => Box::new(relational::FilterOp::new(
            input(*source)?,
            predicates.clone(),
        )),
        PhysOp::Project { source, cols } => {
            Box::new(relational::ProjectOp::new(input(*source)?, cols.clone()))
        }
        PhysOp::Dedup { source } => {
            Box::new(relational::DedupOp::new(input(*source)?, state.clone()))
        }
        PhysOp::Product { left, right } => Box::new(relational::ProductOp::new(
            input(*left)?,
            input(*right)?,
            state.clone(),
        )),
        PhysOp::Union { left, right } => {
            Box::new(relational::UnionOp::new(input(*left)?, input(*right)?))
        }
        PhysOp::Difference { left, right } => Box::new(relational::DifferenceOp::new(
            input(*left)?,
            input(*right)?,
            state.clone(),
        )),
    };
    Ok(op)
}

//! The streaming batch pipeline executing physical plans — sequentially or on worker
//! threads.
//!
//! [`crate::exec::execute_physical`] runs a [`PhysicalPlan`] (lowered by
//! `bea_core::plan::physical::lower_plan`) against a [`Store`] — an unsharded
//! `IndexedDatabase` or a `ShardedDatabase` whose index partitions the per-shard fetch
//! branches probe — as a tree of pull-based operators, each implementing
//! [`Operator::next_batch`]. Rows move through
//! the pipeline in bounded **columnar** [`batch::Batch`]es — filter and project are
//! selection-vector and column-permutation metadata, only gathers (joins, products,
//! fetch output) write values, and every value write is an O(1) clone (interned string
//! payloads; see the [`batch`] docs). Only genuine pipeline breakers hold rows for
//! longer than a batch:
//!
//! * steps marked [`bea_core::plan::PhysStep::materialize`] (shared by several
//!   consumers, the plan output, or exchange points inserted for parallelism) are
//!   materialized once and *freed as soon as their last consumer has drained them*;
//! * join build sides, per-key fetch caches, dedup sets and the key set of a fetch are
//!   operator-internal state, released when the operator is exhausted — or when it is
//!   dropped undrained (every operator holding durable state implements `Drop`), so a
//!   short-circuiting or failing consumer can never leak residency.
//!
//! # Threading model
//!
//! The plan's [`bea_core::plan::PipelineDag`] cuts it into pipelines at the
//! materialization points; the materialized results are the exchange edges. Execution
//! walks the DAG:
//!
//! * **sequentially** (`threads == 1`, or a single-pipeline DAG) — pipelines run in
//!   step order on the calling thread, exactly the historical streaming behavior;
//! * **in parallel** (`threads > 1`) — a scoped worker pool runs every pipeline whose
//!   dependencies are complete; [`Operator::next_batch`] over a completed
//!   materialization ([`source::ScanOp`]) is the exchange protocol. Each worker
//!   executes a pipeline with its *own* [`ExecState`] (operators stay single-threaded
//!   and `Rc`-based), and the per-pipeline counters are combined with
//!   [`AccessStats::merge_concurrent`]. A **morsel-splittable** pipeline
//!   (`bea_core::plan::Pipeline::morsel_source`) is additionally cut *within*: its
//!   source batches are grouped into morsels of whole batches ([`morsel`]) and each
//!   morsel runs the chain as its own job with its own `ExecState`, sharing only the
//!   per-lookup [`morsel::SharedLookupCache`]s; the scheduler concatenates the
//!   per-morsel outputs in morsel order, so rows, row order and every deterministic
//!   counter are identical at any morsel size.
//!
//! Residency is accounted in a [`ResidencyLedger`] *shared by all workers*: every
//! durable row acquisition and release goes through one pair of atomics, so
//! [`crate::stats::AccessStats::peak_rows_resident`] reflects true simultaneous
//! residency across threads — never the per-worker maxima that a sequential merge
//! would report. Data access (index lookups, tuples fetched, per-relation counters)
//! is accounted identically at every thread count: scheduling changes *when* operators
//! run, never *what* they fetch, so a bounded plan stays bounded and
//! [`AccessStats::same_data_access`] holds across `threads` settings.
//!
//! Operator catalogue: [`source`] (constants, unit, empty, scans of materialized
//! steps), [`fetch`] (streaming index fetch and the fused keyed-lookup join),
//! [`relational`] (filter, project, dedup, union, difference, product) and [`join`]
//! (the generic hash join used when a fetch result stays shared).

pub(crate) mod batch;
pub(crate) mod fetch;
pub(crate) mod join;
pub(crate) mod morsel;
pub(crate) mod relational;
pub(crate) mod sched;
pub(crate) mod source;

use crate::stats::AccessStats;
use crate::table::Table;
use batch::Batch;
use bea_core::error::{Error, Result};
use bea_core::plan::{PhysOp, PhysicalPlan};
use bea_core::value::{Row, Value};
use bea_storage::Store;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Rows per pulled batch. Large enough to amortize dispatch, small enough that batch
/// buffers stay negligible next to any real intermediate result.
pub(crate) const BATCH_SIZE: usize = 1024;

/// Relation name that makes a streaming fetch panic on its first pull — the
/// worker-panic injection hook for the scheduler's panic-safety tests (test builds
/// only; release builds carry no such check).
#[cfg(test)]
pub(crate) const PANIC_RELATION: &str = "__panic__";

/// The residency ledger shared by every worker of one execution: a resident-row counter
/// plus its high-water mark, both atomic so that concurrent pipelines account their
/// durable rows against *one* total. The peak therefore measures true simultaneous
/// residency — merging per-worker peaks after the fact (with either `max` or `+`) could
/// only under- or over-state it.
#[derive(Debug, Default)]
pub(crate) struct ResidencyLedger {
    resident: AtomicU64,
    peak: AtomicU64,
}

impl ResidencyLedger {
    /// Record `rows` newly held by a durable structure and update the high-water mark.
    ///
    /// Relaxed ordering suffices: read-modify-write operations on a single atomic are
    /// totally ordered by coherence, so the arithmetic is exact; no other memory is
    /// synchronized through the ledger.
    pub(crate) fn acquire(&self, rows: u64) {
        let now = self.resident.fetch_add(rows, Ordering::Relaxed) + rows;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Record `rows` released by a durable structure.
    pub(crate) fn release(&self, rows: u64) {
        self.resident.fetch_sub(rows, Ordering::Relaxed);
    }

    /// The high-water mark of concurrently resident rows.
    pub(crate) fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Rows currently resident (zero after a fully drained execution).
    pub(crate) fn resident(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }
}

/// Freelists of cleared executor buffers, recycled across probes so the steady-state
/// anchored serving loop stops asking the allocator for anything.
///
/// The contract: a buffer in the pool is always *empty* (cleared before `put_*`), so
/// the pool holds capacity, never rows — the [`ResidencyLedger`]'s drained-to-zero
/// assertion is unaffected by pooling. Operators draw per-batch gather columns,
/// selection vectors and probe-key scratch from here and hand uniquely-owned buffers
/// back on teardown (keyed-lookup cache drains, exhausted scratch); buffers still
/// shared downstream simply stay with their owners. The pool lives on [`ExecState`]
/// and is dropped with it, so everything pooled is freed at executor teardown.
#[derive(Debug)]
pub(crate) struct BufferPool {
    values: Vec<Vec<Value>>,
    indices: Vec<Vec<u32>>,
    cap: usize,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::with_cap(Self::DEFAULT_CAP)
    }
}

impl BufferPool {
    /// Freelist cap per buffer kind when no plan is in sight (bare `ExecState`s in
    /// tests); executions size the cap from the plan via [`pool_cap_for`].
    pub(crate) const DEFAULT_CAP: usize = 64;
    /// Floor for the plan-derived cap: even a single-fetch plan keeps a few buffers
    /// warm across cache drains.
    pub(crate) const MIN_CAP: usize = 8;
    /// Ceiling for the plan-derived cap, so one very wide plan cannot pin unbounded
    /// capacity.
    pub(crate) const MAX_CAP: usize = 256;

    /// An empty pool that retains at most `cap` buffers per kind.
    pub(crate) fn with_cap(cap: usize) -> Self {
        Self {
            values: Vec::new(),
            indices: Vec::new(),
            cap,
        }
    }

    /// The freelist cap per buffer kind.
    #[cfg(test)]
    pub(crate) fn cap(&self) -> usize {
        self.cap
    }

    /// Buffers currently pooled (both kinds), for sizing tests.
    #[cfg(test)]
    pub(crate) fn pooled(&self) -> usize {
        self.values.len() + self.indices.len()
    }

    /// A cleared value buffer — recycled capacity when available, fresh otherwise.
    pub(crate) fn get_values(&mut self) -> Vec<Value> {
        self.values.pop().unwrap_or_default()
    }

    /// A cleared index buffer — recycled capacity when available, fresh otherwise.
    pub(crate) fn get_indices(&mut self) -> Vec<u32> {
        self.indices.pop().unwrap_or_default()
    }

    /// Return a value buffer to the freelist (cleared; dropped if the list is full
    /// or the buffer never grew any capacity worth keeping).
    pub(crate) fn put_values(&mut self, mut buffer: Vec<Value>) {
        buffer.clear();
        if buffer.capacity() > 0 && self.values.len() < self.cap {
            self.values.push(buffer);
        }
    }

    /// Return an index buffer to the freelist (cleared; dropped if full/zero-cap).
    pub(crate) fn put_indices(&mut self, mut buffer: Vec<u32>) {
        buffer.clear();
        if buffer.capacity() > 0 && self.indices.len() < self.cap {
            self.indices.push(buffer);
        }
    }
}

/// The buffer-pool freelist cap for executions of `plan`: the probe path's worst-case
/// simultaneous buffer demand — one value buffer per fetched position plus the key row
/// and the selection vector for every fetch-shaped step — clamped to
/// [`BufferPool::MIN_CAP`]`..=`[`BufferPool::MAX_CAP`]. Tiny plans pool a handful of
/// buffers instead of pinning 64 per kind; wide plans get enough headroom that cache
/// drains don't thrash the freelist.
pub(crate) fn pool_cap_for(plan: &PhysicalPlan) -> usize {
    let demand: usize = plan
        .steps()
        .iter()
        .map(|step| match &step.op {
            PhysOp::Fetch { positions, .. } | PhysOp::KeyedLookup { positions, .. } => {
                positions.len() + 2
            }
            _ => 0,
        })
        .sum();
    demand.clamp(BufferPool::MIN_CAP, BufferPool::MAX_CAP)
}

/// Mutable state owned by one worker: its share of the access statistics, a handle
/// to the execution-wide [`ResidencyLedger`], and the worker's [`BufferPool`].
/// Sequential execution uses a single `ExecState`; parallel execution gives each
/// pipeline its own and combines the counter parts with
/// [`AccessStats::merge_concurrent`], while residency peaks always come from the
/// shared ledger. The pool is per-state on purpose: buffers never cross threads.
#[derive(Debug)]
pub(crate) struct ExecState {
    /// Access statistics accumulated by this worker's operators.
    pub stats: AccessStats,
    /// Recycled gather/selection/key buffers; see [`BufferPool`].
    pub(crate) pool: BufferPool,
    /// The session's cross-query fetch cache, when this worker executes a session
    /// job and the session has one configured ([`crate::cache::SessionFetchCache`]).
    /// `None` everywhere else — the solo executors and cache-disabled sessions run
    /// the historical probe paths untouched.
    pub(crate) cache: Option<Arc<crate::cache::SessionFetchCache>>,
    ledger: Arc<ResidencyLedger>,
}

impl ExecState {
    /// A state with the default pool cap, for tests that have no plan in hand.
    #[cfg(test)]
    pub(crate) fn new(ledger: Arc<ResidencyLedger>) -> Self {
        Self::with_pool_cap(ledger, BufferPool::DEFAULT_CAP)
    }

    /// A state whose buffer pool retains at most `pool_cap` buffers per kind —
    /// executions derive the cap from the plan with [`pool_cap_for`].
    pub(crate) fn with_pool_cap(ledger: Arc<ResidencyLedger>, pool_cap: usize) -> Self {
        Self {
            stats: AccessStats::default(),
            pool: BufferPool::with_cap(pool_cap),
            cache: None,
            ledger,
        }
    }

    /// Record `rows` newly held by a durable structure (materialized step, build side,
    /// cache, dedup set) against the shared ledger.
    pub fn acquire(&mut self, rows: u64) {
        self.ledger.acquire(rows);
    }

    /// Record `rows` released by a durable structure.
    pub fn release(&mut self, rows: u64) {
        self.ledger.release(rows);
    }
}

/// Per-worker handle to the execution state. `Rc` on purpose: an operator tree is
/// built, run and dropped on a single worker thread; only the [`ResidencyLedger`] and
/// the materialized steps cross threads.
pub(crate) type SharedState = Rc<RefCell<ExecState>>;

/// A pull-based streaming operator over columnar [`Batch`]es.
///
/// Contract: `next_batch` returns `Ok(Some(batch))` (possibly empty) while rows may
/// remain and `Ok(None)` once exhausted, forever after. Operators release their durable
/// state when they report exhaustion. Consumers are *not* required to drain their
/// inputs: an operator may be dropped mid-stream (short-circuits, errors), so every
/// operator holding durable state also releases it on `Drop` — residency accounting
/// must return to zero however an execution ends.
pub(crate) trait Operator {
    /// Pull the next batch of rows.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
}

/// Boxed operator borrowing the database for `'db`.
pub(crate) type BoxOp<'db> = Box<dyn Operator + 'db>;

/// A materialized step: its batches plus the number of consumers still to drain them.
/// The batches are dropped — and their residency released — when the last consumer
/// finishes (or is dropped; see [`source::ScanOp`]). Consumers receive the *same*
/// batches by cheap clone (an `Arc` bump per column), so crossing a materialization
/// point between pipelines copies no values.
#[derive(Debug)]
pub(crate) struct MatNode {
    pub(crate) batches: Option<Vec<Batch>>,
    /// Total logical rows across `batches`, acquired against the residency ledger by
    /// the producing pipeline and released here when the last consumer is done.
    pub(crate) rows: u64,
    pub(crate) remaining: usize,
}

/// Shared handle to a materialized step. `Arc<Mutex<…>>` because materialized results
/// are the exchange edges between pipelines, which may drain them from different worker
/// threads.
pub(crate) type SharedMat = Arc<Mutex<MatNode>>;

/// One-shot slot for each step's materialization, written by the pipeline that produces
/// it and read by the pipelines that scan it.
pub(crate) type MatSlots = [OnceLock<SharedMat>];

/// Validate one fetch-shaped step (`step` names it in error messages, e.g. "physical
/// step 3") against the database it is about to probe: the backing constraint must
/// exist in the access schema, agree with the key arity, and `attrs` may only name
/// attribute positions the relation has. Shared by the streaming executor (physical
/// fetch/keyed-lookup steps) and the materialized executor (logical fetch steps) so the
/// two strategies can never drift on what counts as a malformed plan.
pub(crate) fn validate_fetch_shape<'a>(
    store: Store<'_>,
    step: &str,
    relation: &str,
    key_cols: &[usize],
    attrs: impl Iterator<Item = &'a usize>,
    constraint_index: usize,
) -> Result<()> {
    let constraint =
        store
            .schema()
            .constraint(constraint_index)
            .ok_or_else(|| Error::MissingConstraint {
                reason: format!(
                    "{step} fetches via constraint {constraint_index}, which the access schema \
                     does not contain"
                ),
            })?;
    if key_cols.len() != constraint.x().len() {
        return Err(Error::InvalidPlan {
            reason: format!(
                "{step} probes constraint {constraint_index} with {} key columns; the \
                 constraint's key has {}",
                key_cols.len(),
                constraint.x().len()
            ),
        });
    }
    let arity = store.database().catalog().relation(relation)?.arity();
    for &position in attrs {
        if position >= arity {
            return Err(Error::InvalidPlan {
                reason: format!(
                    "{step} projects attribute positions out of range for {relation} \
                     (arity {arity})"
                ),
            });
        }
    }
    Ok(())
}

/// Validate a physical plan against the store it is about to run on, so malformed
/// plans fail *before* execution starts instead of panicking mid-pipeline:
/// [`PhysicalPlan::validate`] checks step wiring, arities and predicate column bounds;
/// [`validate_fetch_shape`] checks every fetch against the schema and catalog.
pub(crate) fn validate_for(plan: &PhysicalPlan, store: Store<'_>) -> Result<()> {
    plan.validate()?;
    for (i, step) in plan.steps().iter().enumerate() {
        let (relation, key_cols, x_attrs, positions, constraint_index) = match &step.op {
            PhysOp::Fetch {
                relation,
                key_cols,
                x_attrs,
                positions,
                constraint_index,
                ..
            }
            | PhysOp::KeyedLookup {
                relation,
                key_cols,
                x_attrs,
                positions,
                constraint_index,
                ..
            } => (relation, key_cols, x_attrs, positions, constraint_index),
            _ => continue,
        };
        validate_fetch_shape(
            store,
            &format!("physical step {i}"),
            relation,
            key_cols,
            x_attrs.iter().chain(positions.iter()),
            *constraint_index,
        )?;
    }
    Ok(())
}

/// Execute a physical plan with `threads` worker threads (1 = sequential) and
/// `morsel_rows` as the intra-pipeline morsel size, returning the output table and
/// the access/residency statistics.
pub(crate) fn execute(
    plan: &PhysicalPlan,
    store: Store<'_>,
    threads: usize,
    morsel_rows: usize,
) -> Result<(Table, AccessStats)> {
    let (table, stats, _ledger) = execute_inner(plan, store, threads, morsel_rows)?;
    Ok((table, stats))
}

/// [`execute`], additionally returning the residency ledger so tests can assert that
/// accounting drained back to zero.
pub(crate) fn execute_inner(
    plan: &PhysicalPlan,
    store: Store<'_>,
    threads: usize,
    morsel_rows: usize,
) -> Result<(Table, AccessStats, Arc<ResidencyLedger>)> {
    validate_for(plan, store)?;
    let dag = plan.pipeline_dag();
    let ledger = Arc::new(ResidencyLedger::default());
    let mats: Vec<OnceLock<SharedMat>> = (0..plan.len()).map(|_| OnceLock::new()).collect();
    let pool_cap = pool_cap_for(plan);

    let mut stats = if threads <= 1 || dag.len() <= 1 {
        run_sequential(plan, &dag, store, &ledger, &mats, pool_cap)?
    } else {
        sched::run_parallel(
            plan,
            &dag,
            store,
            &ledger,
            &mats,
            threads,
            morsel_rows,
            pool_cap,
        )?
    };

    let output = plan.output();
    let (batches, output_rows) = {
        let mut node = mats[output]
            .get()
            .expect("lowering marks the output step as a materialization point")
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let batches = node
            .batches
            .take()
            .expect("the output's virtual consumer is the caller");
        (batches, node.rows)
    };
    // The caller owns the output now; the executor's residency accounting is over.
    ledger.release(output_rows);
    stats.peak_rows_resident = ledger.peak();
    debug_assert_eq!(
        ledger.resident(),
        0,
        "the residency ledger must drain back to zero after execution"
    );
    // Hand the result over as rows. Output batches are usually uniquely owned dense
    // columns, so the transpose moves the values; any clones it does perform count.
    let mut rows: Vec<Row> = Vec::with_capacity(output_rows as usize);
    for batch in batches {
        let (mut batch_rows, clones) = batch.into_rows();
        stats.values_cloned += clones;
        rows.append(&mut batch_rows);
    }
    let table = Table::with_rows(plan.steps()[output].columns.clone(), rows);
    Ok((table, stats, ledger))
}

/// Run every pipeline in step order on the calling thread. This is exactly the
/// historical single-threaded streaming execution: `threads == 1` must reproduce it.
fn run_sequential(
    plan: &PhysicalPlan,
    dag: &bea_core::plan::PipelineDag,
    store: Store<'_>,
    ledger: &Arc<ResidencyLedger>,
    mats: &MatSlots,
    pool_cap: usize,
) -> Result<AccessStats> {
    let state: SharedState = Rc::new(RefCell::new(ExecState::with_pool_cap(
        ledger.clone(),
        pool_cap,
    )));
    for pipeline in dag.pipelines() {
        run_pipeline(plan, pipeline.sink, store, &state, mats)?;
    }
    Ok(Rc::try_unwrap(state)
        .expect("pipeline operators are dropped before their stats are read")
        .into_inner()
        .stats)
}

/// Execute one pipeline: pull the operator tree rooted at `sink` to exhaustion and
/// publish the materialized result for the pipelines that scan it.
pub(crate) fn run_pipeline(
    plan: &PhysicalPlan,
    sink: usize,
    store: Store<'_>,
    state: &SharedState,
    mats: &MatSlots,
) -> Result<()> {
    let mut op = build_op(plan, sink, store, state, mats, None)?;
    let mut batches: Vec<Batch> = Vec::new();
    let mut rows: u64 = 0;
    while let Some(batch) = op.next_batch()? {
        state.borrow_mut().acquire(batch.len() as u64);
        rows += batch.len() as u64;
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    drop(op);
    let node = Arc::new(Mutex::new(MatNode {
        batches: Some(batches),
        rows,
        remaining: plan.steps()[sink].consumers,
    }));
    if mats[sink].set(node).is_err() {
        unreachable!("each pipeline is executed exactly once");
    }
    Ok(())
}

/// Execute one morsel of a split pipeline: the operator chain rooted at `sink`,
/// instantiated over this morsel's range of the source batches, pulled to
/// exhaustion. The emitted batches are acquired against the ledger exactly as
/// [`run_pipeline`] acquires them; the scheduler concatenates the per-morsel results
/// in morsel order and publishes the materialization when the split's last morsel
/// lands, so the published batch list is identical to the unsplit pipeline's.
pub(crate) fn run_morsel(
    plan: &PhysicalPlan,
    sink: usize,
    store: Store<'_>,
    state: &SharedState,
    mats: &MatSlots,
    ctx: &morsel::MorselCtx,
) -> Result<(Vec<Batch>, u64)> {
    let mut op = build_op(plan, sink, store, state, mats, Some(ctx))?;
    let mut batches: Vec<Batch> = Vec::new();
    let mut rows: u64 = 0;
    while let Some(batch) = op.next_batch()? {
        state.borrow_mut().acquire(batch.len() as u64);
        rows += batch.len() as u64;
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    Ok((batches, rows))
}

/// Build the operator for step `node`, recursing into non-materialized inputs and
/// scanning materialized ones. With a [`morsel::MorselCtx`] the chain is instantiated
/// for one morsel: the morsel source replays its batch range instead of a full scan,
/// and keyed lookups attach the split's shared caches.
fn build_op<'db>(
    plan: &PhysicalPlan,
    node: usize,
    store: Store<'db>,
    state: &SharedState,
    mats: &MatSlots,
    morsel: Option<&morsel::MorselCtx>,
) -> Result<BoxOp<'db>> {
    let input = |j: usize| -> Result<BoxOp<'db>> {
        if let Some(ctx) = morsel {
            if j == ctx.source {
                return Ok(Box::new(morsel::MorselScanOp::new(
                    ctx.batches.clone(),
                    ctx.range,
                )));
            }
        }
        if plan.steps()[j].materialize {
            let mat = mats[j]
                .get()
                .expect("the scheduler completes a pipeline's sources before starting it");
            Ok(Box::new(source::ScanOp::new(mat.clone(), state.clone())))
        } else {
            build_op(plan, j, store, state, mats, morsel)
        }
    };
    // A keyed lookup built inside a morsel shares the split's cache for its step and
    // reports once-per-run counters only on the split's first morsel.
    let morselize = |op: fetch::KeyedLookupOp<'db>, step: usize| -> fetch::KeyedLookupOp<'db> {
        match morsel {
            Some(ctx) => op.for_morsel(ctx.caches.get(&step).cloned(), ctx.report),
            None => op,
        }
    };
    let op: BoxOp<'db> = match &plan.steps()[node].op {
        PhysOp::Const { value } => Box::new(source::SingletonOp::new(vec![value.clone()])),
        PhysOp::Unit => Box::new(source::SingletonOp::new(Vec::new())),
        PhysOp::Empty { .. } => Box::new(source::EmptyOp),
        PhysOp::Fetch {
            source,
            key_cols,
            relation,
            positions,
            constraint_index,
            shard,
            ..
        } => Box::new(fetch::FetchOp::new(
            input(*source)?,
            key_cols.clone(),
            relation.clone(),
            positions.clone(),
            *constraint_index,
            *shard,
            store,
            state.clone(),
        )),
        PhysOp::KeyedLookup {
            source,
            key_cols,
            relation,
            positions,
            constraint_index,
            residual,
            shard,
            emit,
            ..
        } => Box::new(morselize(
            fetch::KeyedLookupOp::new(
                input(*source)?,
                key_cols.clone(),
                relation.clone(),
                positions.clone(),
                *constraint_index,
                residual.clone(),
                emit.clone(),
                *shard,
                store,
                state.clone(),
            ),
            node,
        )),
        PhysOp::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            residual,
        } => Box::new(join::HashJoinOp::new(
            input(*left)?,
            input(*right)?,
            left_keys.clone(),
            right_keys.clone(),
            residual.clone(),
            plan.steps()[*right].columns.len(),
            state.clone(),
        )),
        PhysOp::Filter { source, predicates } => Box::new(relational::FilterOp::new(
            input(*source)?,
            predicates.clone(),
        )),
        PhysOp::Project { source, cols } => {
            // Fusion: a projection whose direct (sole, non-materialized) input is a
            // keyed lookup becomes the lookup's emission column set, so values the
            // projection would drop are never gathered at all. Materialized sources
            // are exchange points and must stay full-width for their other consumers.
            //
            // Deliberately an operator-tree concern, not a lowering rule: which
            // columns get *physically gathered* is a property of this executor's
            // columnar batches (the materialized strategy and plan
            // validation/costing/pipeline_dag all reason about the unfused steps,
            // and must keep doing so). If the fused pattern is broken by a future
            // lowering change, execution falls back to the explicit ProjectOp —
            // slower, never wrong.
            if !plan.steps()[*source].materialize {
                if let PhysOp::KeyedLookup {
                    source: klu_source,
                    key_cols,
                    relation,
                    positions,
                    constraint_index,
                    residual,
                    shard,
                    emit: None,
                    ..
                } = &plan.steps()[*source].op
                {
                    // (A lookup that already carries a lowering-level `emit` — a
                    // sharded branch — never reaches here: its projection was absorbed
                    // during fan-out and the branch is materialized anyway.)
                    return Ok(Box::new(morselize(
                        fetch::KeyedLookupOp::new(
                            input(*klu_source)?,
                            key_cols.clone(),
                            relation.clone(),
                            positions.clone(),
                            *constraint_index,
                            residual.clone(),
                            Some(cols.clone()),
                            *shard,
                            store,
                            state.clone(),
                        ),
                        *source,
                    )));
                }
            }
            Box::new(relational::ProjectOp::new(input(*source)?, cols.clone()))
        }
        PhysOp::Dedup { source } => {
            Box::new(relational::DedupOp::new(input(*source)?, state.clone()))
        }
        PhysOp::Product { left, right } => Box::new(relational::ProductOp::new(
            input(*left)?,
            input(*right)?,
            state.clone(),
        )),
        PhysOp::Union { left, right } => {
            Box::new(relational::UnionOp::new(input(*left)?, input(*right)?))
        }
        PhysOp::Difference { left, right } => Box::new(relational::DifferenceOp::new(
            input(*left)?,
            input(*right)?,
            state.clone(),
        )),
    };
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_plan_with_options, ExecOptions};
    use bea_core::access::{AccessConstraint, AccessSchema};
    use bea_core::plan::{lower_plan_with, LowerOptions, PlanBuilder, Predicate};
    use bea_core::value::Value;
    use bea_storage::{Database, IndexedDatabase};

    fn setup() -> IndexedDatabase {
        let mut c = bea_core::schema::Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap()
            ]);
        let mut db = Database::new(c);
        db.extend(
            "R",
            [
                vec![Value::int(1), Value::int(10)],
                vec![Value::int(1), Value::int(11)],
                vec![Value::int(2), Value::int(20)],
                vec![Value::int(3), Value::int(30)],
            ],
        )
        .unwrap();
        IndexedDatabase::build(db, schema).unwrap()
    }

    /// A union of two independent keyed-lookup branches anchored at `keys` — lowered
    /// with exchange points this decomposes into one pipeline per branch plus the
    /// output pipeline.
    fn union_of_lookups(keys: &[i64]) -> bea_core::plan::QueryPlan {
        let mut b = PlanBuilder::new();
        let branch = |b: &mut PlanBuilder, key: i64| {
            let k = b.constant(Value::int(key), "k");
            let fetched = b.fetch(
                k,
                vec![0],
                "R",
                vec![0],
                vec![1],
                0,
                vec!["a".into(), "b".into()],
            );
            let prod = b.product(k, fetched);
            b.select(prod, vec![Predicate::ColEqCol(0, 1)])
        };
        let mut acc = branch(&mut b, keys[0]);
        for &key in &keys[1..] {
            let next = branch(&mut b, key);
            acc = b.union(acc, next);
        }
        b.finish("Q", acc).unwrap()
    }

    #[test]
    fn parallel_execution_matches_sequential_and_drains_the_ledger() {
        let idb = setup();
        let plan = union_of_lookups(&[1, 2, 3]);
        let phys =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        let dag = phys.pipeline_dag();
        assert!(dag.len() >= 4, "expected one pipeline per branch + output");
        assert!(dag.parallel_width() >= 3);

        let (seq_table, seq_stats, seq_ledger) = execute_inner(
            &phys,
            Store::Indexed(&idb),
            1,
            crate::exec::DEFAULT_MORSEL_ROWS,
        )
        .unwrap();
        let (par_table, par_stats, par_ledger) = execute_inner(
            &phys,
            Store::Indexed(&idb),
            4,
            crate::exec::DEFAULT_MORSEL_ROWS,
        )
        .unwrap();

        // Identical output — rows *and* their order are schedule-independent.
        assert_eq!(seq_table.columns(), par_table.columns());
        assert_eq!(seq_table.rows(), par_table.rows());
        assert!(!par_table.is_empty());
        // Identical data access at any thread count.
        assert!(seq_stats.same_data_access(&par_stats));
        // Concurrent residency is an upper bound on the sequential peak — deterministic
        // for this plan shape (not for arbitrary plans): the sequential peak occurs
        // while the output pipeline drains the branch materializations, and that
        // pipeline runs last, alone, with the identical resident trajectory under
        // every schedule.
        assert!(
            par_stats.peak_rows_resident >= seq_stats.peak_rows_resident,
            "parallel peak {} below sequential peak {}",
            par_stats.peak_rows_resident,
            seq_stats.peak_rows_resident
        );
        // However an execution is scheduled, every durable row is released by the end.
        assert_eq!(seq_ledger.resident(), 0);
        assert_eq!(par_ledger.resident(), 0);
    }

    #[test]
    fn parallel_execution_handles_dependent_pipelines() {
        // A shared fetch forces a chain: const pipeline → fetch pipeline → output.
        let idb = setup();
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "k");
        let fetched = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(k, fetched);
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        let other = b.project(fetched, vec![1]);
        let out = b.product(sel, other);
        let plan = b.finish("Q", out).unwrap();
        let phys = bea_core::plan::lower_plan(&plan).unwrap();
        assert!(phys.pipeline_dag().len() >= 3);

        let (seq_table, seq_stats, _) = execute_inner(
            &phys,
            Store::Indexed(&idb),
            1,
            crate::exec::DEFAULT_MORSEL_ROWS,
        )
        .unwrap();
        let (par_table, par_stats, par_ledger) = execute_inner(
            &phys,
            Store::Indexed(&idb),
            4,
            crate::exec::DEFAULT_MORSEL_ROWS,
        )
        .unwrap();
        assert_eq!(seq_table.rows(), par_table.rows());
        assert!(seq_stats.same_data_access(&par_stats));
        assert_eq!(par_ledger.resident(), 0);
    }

    #[test]
    fn empty_build_side_still_releases_all_residency() {
        // Anchor the shared fetch at a key with no matching rows: the hash join's
        // build side is empty at runtime. Residency must still drain to zero.
        let idb = setup();
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(99), "k");
        let fetched = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(k, fetched);
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        let other = b.project(fetched, vec![1]);
        let out = b.product(sel, other);
        let plan = b.finish("Q", out).unwrap();
        let phys = bea_core::plan::lower_plan(&plan).unwrap();
        assert!(phys
            .steps()
            .iter()
            .any(|s| matches!(s.op, PhysOp::HashJoin { .. })));

        for threads in [1, 4] {
            let (table, _, ledger) = execute_inner(
                &phys,
                Store::Indexed(&idb),
                threads,
                crate::exec::DEFAULT_MORSEL_ROWS,
            )
            .unwrap();
            assert!(table.is_empty());
            assert_eq!(
                ledger.resident(),
                0,
                "short-circuit shape leaked residency at {threads} threads"
            );
        }
    }

    #[test]
    fn empty_build_side_keeps_batch_arity_for_downstream_projections() {
        // Regression: a runtime-empty hash-join build side must still emit batches of
        // the plan's combined arity — a downstream projection of a right-side column
        // used to index out of bounds on the narrower placeholder batch.
        let idb = setup();
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(99), "k"); // no matching rows in R
        let fetched = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let prod = b.product(k, fetched);
        let sel = b.select(prod, vec![Predicate::ColEqCol(0, 1)]);
        let projected = b.project(sel, vec![2]); // a fetched (right-side) column
        let other = b.project(fetched, vec![1]);
        let out = b.product(projected, other);
        let plan = b.finish("Q", out).unwrap();
        let phys = bea_core::plan::lower_plan(&plan).unwrap();
        assert!(phys
            .steps()
            .iter()
            .any(|s| matches!(s.op, PhysOp::HashJoin { .. })));
        for threads in [1, 4] {
            let (table, _, ledger) = execute_inner(
                &phys,
                Store::Indexed(&idb),
                threads,
                crate::exec::DEFAULT_MORSEL_ROWS,
            )
            .unwrap();
            assert!(table.is_empty());
            assert_eq!(ledger.resident(), 0);
        }
    }

    #[test]
    fn dropping_a_scan_mid_stream_releases_the_materialization() {
        // Regression for the "consumers always drain their inputs fully" assumption: a
        // consumer dropped mid-stream must still count as done, so the materialized
        // rows and their residency are released.
        let ledger = Arc::new(ResidencyLedger::default());
        let state: SharedState = Rc::new(RefCell::new(ExecState::new(ledger.clone())));
        let rows: Vec<Row> = (0..3).map(|i| vec![Value::int(i)]).collect();
        state.borrow_mut().acquire(rows.len() as u64);
        let node: SharedMat = Arc::new(Mutex::new(MatNode {
            batches: Some(vec![Batch::from_rows(1, rows)]),
            rows: 3,
            remaining: 2,
        }));

        let mut first = source::ScanOp::new(node.clone(), state.clone());
        assert_eq!(first.next_batch().unwrap().unwrap().len(), 3);
        drop(first); // dropped before observing exhaustion
        assert_eq!(node.lock().unwrap().remaining, 1);
        assert_eq!(ledger.resident(), 3, "rows live while a consumer remains");

        let second = source::ScanOp::new(node.clone(), state.clone());
        drop(second); // never pulled at all
        assert_eq!(node.lock().unwrap().remaining, 0);
        assert!(node.lock().unwrap().batches.is_none());
        assert_eq!(ledger.resident(), 0, "last drop must free the rows");
    }

    #[test]
    fn malformed_fetch_positions_fail_at_plan_time_not_mid_execution() {
        // y-attribute 5 does not exist in R(a, b): both strategies must return a plan
        // error before touching any data instead of panicking on `tuple[5]`.
        let idb = setup();
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "k");
        let f = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![5],
            0,
            vec!["a".into(), "oob".into()],
        );
        let plan = b.finish("Q", f).unwrap();
        assert!(execute_plan_with_options(&plan, &idb, &ExecOptions::new()).is_err());
        assert!(execute_plan_with_options(&plan, &idb, &ExecOptions::materialized()).is_err());
    }

    #[test]
    fn unknown_constraint_and_key_arity_fail_at_plan_time() {
        let idb = setup();
        // Constraint index 7 does not exist.
        let mut b = PlanBuilder::new();
        let k = b.constant(Value::int(1), "k");
        let f = b.fetch(
            k,
            vec![0],
            "R",
            vec![0],
            vec![1],
            7,
            vec!["a".into(), "b".into()],
        );
        let plan = b.finish("Q", f).unwrap();
        assert!(execute_plan_with_options(&plan, &idb, &ExecOptions::new()).is_err());
        assert!(execute_plan_with_options(&plan, &idb, &ExecOptions::materialized()).is_err());

        // Two key columns probe a one-column constraint key.
        let mut b = PlanBuilder::new();
        let x = b.constant(Value::int(1), "x");
        let y = b.constant(Value::int(2), "y");
        let p = b.product(x, y);
        let f = b.fetch(
            p,
            vec![0, 1],
            "R",
            vec![0, 1],
            vec![],
            0,
            vec!["a".into(), "b".into()],
        );
        let plan = b.finish("Q", f).unwrap();
        assert!(execute_plan_with_options(&plan, &idb, &ExecOptions::new()).is_err());
        assert!(execute_plan_with_options(&plan, &idb, &ExecOptions::materialized()).is_err());
    }

    #[test]
    fn sharded_execution_is_invariant_and_accounts_per_shard() {
        use bea_storage::ShardedDatabase;

        let idb = setup();
        let plan = union_of_lookups(&[1, 2, 3]);
        let baseline = {
            let phys = bea_core::plan::lower_plan(&plan).unwrap();
            execute_inner(
                &phys,
                Store::Indexed(&idb),
                1,
                crate::exec::DEFAULT_MORSEL_ROWS,
            )
            .unwrap()
        };
        let (base_table, base_stats, _) = &baseline;

        for shards in [1u32, 2, 4] {
            let sdb = ShardedDatabase::shard(&idb, shards).unwrap();
            let phys =
                lower_plan_with(&plan, &LowerOptions::new().with_shard_fanout(shards)).unwrap();
            if shards >= 2 {
                // One shard-local pipeline per shard and branch: real parallel width.
                assert!(
                    phys.pipeline_dag().parallel_width() >= shards as usize,
                    "width {} below shard count {shards}",
                    phys.pipeline_dag().parallel_width()
                );
            }
            for threads in [1usize, 4] {
                let (table, stats, ledger) = execute_inner(
                    &phys,
                    Store::Sharded(&sdb),
                    threads,
                    crate::exec::DEFAULT_MORSEL_ROWS,
                )
                .unwrap();
                assert_eq!(
                    table.row_set(),
                    base_table.row_set(),
                    "answers changed at {shards} shards / {threads} threads"
                );
                assert!(
                    stats.same_data_access(base_stats),
                    "data access changed at {shards} shards: {stats} vs {base_stats}"
                );
                assert_eq!(
                    stats.values_cloned, base_stats.values_cloned,
                    "copy traffic changed at {shards} shards / {threads} threads"
                );
                // Boundedness per shard: the partitions serve exactly the total.
                assert_eq!(
                    stats.rows_fetched_by_shard.values().sum::<u64>(),
                    stats.tuples_fetched
                );
                assert!(stats
                    .rows_fetched_by_shard
                    .keys()
                    .all(|&shard| shard < shards));
                assert_eq!(ledger.resident(), 0);
            }
        }
    }

    #[test]
    fn sharded_branches_tag_their_batches() {
        use bea_storage::ShardedDatabase;

        // Drive one shard branch directly: every batch it emits must carry its shard.
        let idb = setup();
        let sdb = ShardedDatabase::shard(&idb, 2).unwrap();
        for shard in 0..2u32 {
            let keys =
                Batch::from_rows(1, (1..=3).map(|k| vec![Value::int(k)]).collect::<Vec<_>>());
            struct OneBatch(Option<Batch>);
            impl Operator for OneBatch {
                fn next_batch(&mut self) -> Result<Option<Batch>> {
                    Ok(self.0.take())
                }
            }
            let ledger = Arc::new(ResidencyLedger::default());
            let state: SharedState = Rc::new(RefCell::new(ExecState::new(ledger.clone())));
            let mut op = fetch::FetchOp::new(
                Box::new(OneBatch(Some(keys))),
                vec![0],
                "R".into(),
                vec![0, 1],
                0,
                Some(bea_core::plan::ShardRoute { shard, of: 2 }),
                Store::Sharded(&sdb),
                state,
            );
            let mut rows = 0;
            while let Some(batch) = op.next_batch().unwrap() {
                assert_eq!(batch.origin_shard(), Some(shard));
                rows += batch.len();
            }
            assert!(rows <= 4, "a branch sees only its shard's keys");
            drop(op);
            assert_eq!(ledger.resident(), 0);
        }
    }

    #[test]
    fn pool_cap_follows_the_plan_fetch_bound() {
        // Tiny plan: one branch, one fetched position — demand 3, clamped up to the
        // floor so a single-fetch plan still keeps a few buffers warm.
        let tiny = bea_core::plan::lower_plan(&union_of_lookups(&[1])).unwrap();
        assert_eq!(pool_cap_for(&tiny), BufferPool::MIN_CAP);

        // Huge plan: 100 branches — demand 300, clamped down to the ceiling so one
        // wide plan cannot pin unbounded capacity.
        let keys: Vec<i64> = (1..=100).collect();
        let huge = bea_core::plan::lower_plan(&union_of_lookups(&keys)).unwrap();
        assert_eq!(pool_cap_for(&huge), BufferPool::MAX_CAP);

        // In between, the cap is the demand itself: 3 branches × (2 positions + 2) —
        // each branch lowers to one keyed lookup carrying both fetched columns.
        let mid = bea_core::plan::lower_plan(&union_of_lookups(&[1, 2, 3])).unwrap();
        assert_eq!(pool_cap_for(&mid), 12);
    }

    #[test]
    fn buffer_pool_respects_its_cap() {
        let mut pool = BufferPool::with_cap(2);
        assert_eq!(pool.cap(), 2);
        for _ in 0..5 {
            pool.put_values(Vec::with_capacity(4));
            pool.put_indices(Vec::with_capacity(4));
        }
        // At most `cap` buffers per kind are retained; the rest are dropped.
        assert_eq!(pool.pooled(), 4);
    }

    /// A two-hop lookup chain whose first hop fans out wide enough that its
    /// materialization spans several batches — the shape whose second hop the
    /// scheduler splits into morsels. `R` maps two anchor keys to `per_key` rows
    /// each; `S` maps every `b` value back to one row.
    fn morsel_chain_setup(per_key: i64) -> (IndexedDatabase, bea_core::plan::QueryPlan) {
        let mut c = bea_core::schema::Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare("S", ["b", "c"]).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], per_key as u64).unwrap(),
            AccessConstraint::new(&c, "S", &["b"], &["c"], 1).unwrap(),
        ]);
        let mut db = Database::new(c);
        let mut r_rows = Vec::new();
        let mut s_rows = Vec::new();
        for key in [1i64, 2] {
            for i in 0..per_key {
                let b = key * 10_000 + i;
                r_rows.push(vec![Value::int(key), Value::int(b)]);
                s_rows.push(vec![Value::int(b), Value::int(b + 1)]);
            }
        }
        db.extend("R", r_rows).unwrap();
        db.extend("S", s_rows).unwrap();
        let idb = IndexedDatabase::build(db, schema).unwrap();

        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let k2 = b.constant(Value::int(2), "k");
        let keys = b.union(k1, k2);
        let f1 = b.fetch(
            keys,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let p1 = b.product(keys, f1);
        let s1 = b.select(p1, vec![Predicate::ColEqCol(0, 1)]); // [k, a, b]
        let f2 = b.fetch(
            s1,
            vec![2],
            "S",
            vec![0],
            vec![1],
            1,
            vec!["b".into(), "c".into()],
        );
        let p2 = b.product(s1, f2);
        let s2 = b.select(p2, vec![Predicate::ColEqCol(2, 3)]);
        let out = b.project(s2, vec![4]);
        (idb, b.finish("Q", out).unwrap())
    }

    #[test]
    fn morsel_split_matches_unsplit_execution_exactly() {
        // 700 rows per anchor key → the first hop materializes 1400 rows in two
        // batches, so `morsel_rows = 1` splits the second hop into two morsels.
        let (idb, plan) = morsel_chain_setup(700);
        let phys = bea_core::plan::lower_plan_with(
            &plan,
            &LowerOptions::new().with_exchange_parallelism(true),
        )
        .unwrap();
        assert!(
            phys.pipeline_dag()
                .pipelines()
                .iter()
                .any(|p| p.morsel_source.is_some()),
            "the chain must lower to a morsel-splittable pipeline"
        );

        let (base_table, base_stats, base_ledger) =
            execute_inner(&phys, Store::Indexed(&idb), 1, 1).unwrap();
        assert_eq!(base_table.rows().len(), 1400);
        assert_eq!(base_ledger.resident(), 0);

        for morsel_rows in [1usize, crate::exec::DEFAULT_MORSEL_ROWS, usize::MAX] {
            let (table, stats, ledger) =
                execute_inner(&phys, Store::Indexed(&idb), 4, morsel_rows).unwrap();
            // Identical rows *and row order* — per-morsel outputs are concatenated
            // in morsel order, reproducing the unsplit batch sequence exactly.
            assert_eq!(
                table.rows(),
                base_table.rows(),
                "output changed at morsel size {morsel_rows}"
            );
            assert!(
                stats.same_data_access(&base_stats),
                "data access changed at morsel size {morsel_rows}: {stats} vs {base_stats}"
            );
            assert_eq!(
                stats.values_cloned, base_stats.values_cloned,
                "copy traffic changed at morsel size {morsel_rows}"
            );
            assert_eq!(
                stats.allocs_per_probe, base_stats.allocs_per_probe,
                "allocation demand changed at morsel size {morsel_rows}"
            );
            assert_eq!(
                ledger.resident(),
                0,
                "residency leaked at morsel size {morsel_rows}"
            );
        }
    }

    #[test]
    fn residency_ledger_tracks_concurrent_peaks() {
        let ledger = ResidencyLedger::default();
        ledger.acquire(5);
        ledger.acquire(7); // overlapping with the first window
        ledger.release(5);
        ledger.acquire(2);
        ledger.release(7);
        ledger.release(2);
        assert_eq!(ledger.peak(), 12, "peak is simultaneous residency, not max");
        assert_eq!(ledger.resident(), 0);
    }
}

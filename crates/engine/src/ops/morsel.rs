//! Morsel-driven parallelism *inside* a pipeline: the pieces that let one
//! morsel-splittable pipeline run as several concurrent operator-chain instances.
//!
//! A splittable pipeline (see `bea_core::plan::Pipeline::morsel_source`) is a linear
//! chain of per-batch pure maps — keyed lookups, filters, projections — over exactly
//! one materialized source. The scheduler cuts the source's batch list into **morsels**:
//! groups of consecutive *whole* batches totalling at least the configured morsel size
//! ([`morsel_ranges`]). Batches are never cut, so every per-batch charge the chain makes
//! (including the keyed lookup's single-row anchor fast path) is identical under any
//! grouping, and concatenating the per-morsel outputs in morsel order reproduces the
//! unsplit pipeline's output batch for batch — rows, order, and every deterministic
//! counter included.
//!
//! Each morsel runs the chain with its own `ExecState` (stats and buffer pool stay
//! per-worker), replaying its batch range through a [`MorselScanOp`]. The only state
//! shared between morsels is the per-lookup-step [`SharedLookupCache`]: a key filled by
//! one morsel is a warm hit for every other, so the split fetches each distinct key
//! exactly once — the same data access as the unsplit pipeline, just spread over
//! workers. Cached rows stay resident until the split's last morsel lands; the
//! scheduler releases them at finalize.

use super::batch::Batch;
use super::Operator;
use bea_core::error::Result;
use bea_core::plan::{PhysOp, PhysicalPlan};
use bea_core::value::Row;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// A keyed lookup's per-key result cache shared by every morsel of one split.
///
/// The fill protocol guarantees **exactly one fill per distinct key** without
/// serializing distinct keys: a probe that misses installs a `Filling` placeholder
/// under the map lock and fetches *outside* it; a concurrent probe of the same key
/// blocks on the condvar until the fill resolves, while probes of other keys proceed.
/// Fills charge exactly the local-cache miss costs at the filling operator, so the
/// split's totals match the unsplit pipeline's.
///
/// The cache is **striped** by key hash: every probe takes a lock, so a single map
/// mutex would put one contended cache line on the hot path of every worker — the
/// contention, not the critical section, is what would serialize the morsels. With
/// independent stripes (own map, own condvar, own waiter count) concurrent probes of
/// different keys almost never collide, and a fill's completion wakes a stripe only
/// when someone is actually waiting on it.
///
/// The map key is a second handle to already-gathered (and already-charged) key
/// values — cloning a `Row` bumps interned-payload refcounts, like the batch handles
/// cloned at exchange edges — so installing it copies no values and charges nothing.
pub(crate) struct SharedLookupCache {
    stripes: Vec<CacheStripe>,
    rows: AtomicU64,
}

/// One independently locked partition of the shared cache.
struct CacheStripe {
    entries: Mutex<StripeMap>,
    filled: Condvar,
}

#[derive(Default)]
struct StripeMap {
    entries: HashMap<Row, CacheEntry>,
    /// Probes currently blocked on this stripe's condvar; completions skip the wakeup
    /// when nobody is waiting (the common case — fills of distinct keys).
    waiters: usize,
}

enum CacheEntry {
    /// A fill is in flight; probes of this key wait on the condvar.
    Filling,
    Ready(Arc<Batch>),
}

/// Outcome of [`SharedLookupCache::probe`].
pub(crate) enum CacheProbe {
    Hit(Arc<Batch>),
    /// The caller is now the key's unique filler and must resolve the entry with
    /// [`SharedLookupCache::complete`] or [`SharedLookupCache::abort`].
    Fill,
}

/// Stripe count: enough that 4–16 workers probing distinct keys rarely collide on a
/// lock (at 64 stripes, four concurrent probers collide under ten percent of the
/// time), small enough that an idle cache stays in the low kilobytes.
const CACHE_STRIPES: usize = 64;

impl SharedLookupCache {
    pub(crate) fn new() -> Self {
        Self {
            stripes: (0..CACHE_STRIPES)
                .map(|_| CacheStripe {
                    entries: Mutex::new(StripeMap::default()),
                    filled: Condvar::new(),
                })
                .collect(),
            rows: AtomicU64::new(0),
        }
    }

    fn stripe(&self, key: &Row) -> &CacheStripe {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.stripes[hasher.finish() as usize % CACHE_STRIPES]
    }

    /// Probe for `key`: a warm hit returns the cached batch; a miss installs a fill
    /// claim and returns [`CacheProbe::Fill`]; a probe racing an in-flight fill of the
    /// same key blocks until that fill resolves.
    pub(crate) fn probe(&self, key: &Row) -> CacheProbe {
        let stripe = self.stripe(key);
        let mut map = stripe
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            match map.entries.get(key) {
                Some(CacheEntry::Ready(batch)) => return CacheProbe::Hit(Arc::clone(batch)),
                Some(CacheEntry::Filling) => {
                    map.waiters += 1;
                    map = stripe
                        .filled
                        .wait(map)
                        .unwrap_or_else(PoisonError::into_inner);
                    map.waiters -= 1;
                }
                None => {
                    map.entries.insert(key.clone(), CacheEntry::Filling);
                    return CacheProbe::Fill;
                }
            }
        }
    }

    /// Resolve a fill claim with its batch and wake the probes waiting on it.
    pub(crate) fn complete(&self, key: &Row, batch: Arc<Batch>) {
        self.rows.fetch_add(batch.len() as u64, Ordering::Relaxed);
        let stripe = self.stripe(key);
        let mut map = stripe
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match map.entries.get_mut(key) {
            Some(entry) => *entry = CacheEntry::Ready(batch),
            None => unreachable!("a fill claim stays installed until its filler resolves it"),
        }
        let wake = map.waiters > 0;
        drop(map);
        if wake {
            stripe.filled.notify_all();
        }
    }

    /// Withdraw a fill claim after a failed fetch, so waiting probes can retry (the
    /// run is failing anyway — the retry only keeps the protocol deadlock-free).
    pub(crate) fn abort(&self, key: &Row) {
        let stripe = self.stripe(key);
        let mut map = stripe
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        map.entries.remove(key);
        let wake = map.waiters > 0;
        drop(map);
        if wake {
            stripe.filled.notify_all();
        }
    }

    /// Total rows cached, released against the residency ledger when the split's last
    /// morsel finalizes (the fills acquired them).
    pub(crate) fn rows(&self) -> u64 {
        self.rows.load(Ordering::Relaxed)
    }
}

/// Everything `build_op` needs to instantiate a pipeline's operator chain for one
/// morsel instead of the whole pipeline.
pub(crate) struct MorselCtx {
    /// The materialized source step whose batches the morsel replays.
    pub(crate) source: usize,
    /// Snapshot of the source's batches, shared by all morsels of the split.
    pub(crate) batches: Arc<Vec<Batch>>,
    /// This morsel's `[start, end)` range into `batches`.
    pub(crate) range: (usize, usize),
    /// The split's shared per-lookup-step caches, keyed by lookup step id.
    pub(crate) caches: Arc<BTreeMap<usize, Arc<SharedLookupCache>>>,
    /// Whether this morsel reports the once-per-run counters (`fetch_ops`). Only the
    /// split's first morsel does — the split is one logical fetch operation,
    /// mirroring the shard-0 reporting convention of sharded branches.
    pub(crate) report: bool,
}

/// The morsel's source: replays one range of the split's shared batch snapshot.
/// Emits the *same* batches the unsplit pipeline's `ScanOp` would (an `Arc` bump per
/// column — no values copied, nothing charged), but leaves the source
/// materialization's consumer accounting to the scheduler, which retires the split's
/// claim exactly once when the last morsel lands.
pub(crate) struct MorselScanOp {
    batches: Arc<Vec<Batch>>,
    next: usize,
    end: usize,
}

impl MorselScanOp {
    pub(crate) fn new(batches: Arc<Vec<Batch>>, (start, end): (usize, usize)) -> Self {
        Self {
            batches,
            next: start,
            end,
        }
    }
}

impl Operator for MorselScanOp {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.next >= self.end {
            return Ok(None);
        }
        let batch = self.batches[self.next].clone();
        self.next += 1;
        Ok(Some(batch))
    }
}

/// Cut `batches` into morsels: disjoint ranges of consecutive **whole** batches, each
/// totalling at least `morsel_rows` logical rows (the tail range may be smaller).
/// Never cutting a batch is what keeps every per-batch counter charge — and the keyed
/// lookup's single-row anchor fast path — identical under any morsel size.
pub(crate) fn morsel_ranges(batches: &[Batch], morsel_rows: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut start = 0;
    let mut rows = 0usize;
    for (i, batch) in batches.iter().enumerate() {
        rows = rows.saturating_add(batch.len());
        if rows >= morsel_rows {
            ranges.push((start, i + 1));
            start = i + 1;
            rows = 0;
        }
    }
    if start < batches.len() {
        ranges.push((start, batches.len()));
    }
    ranges
}

/// The keyed-lookup steps of the streaming region rooted at `sink` (stopping at
/// materialized inputs — those are the region's sources). Each gets a
/// [`SharedLookupCache`] when the region is split into morsels.
pub(crate) fn lookup_steps_in_region(plan: &PhysicalPlan, sink: usize) -> Vec<usize> {
    let mut lookups = Vec::new();
    let mut stack = vec![sink];
    while let Some(j) = stack.pop() {
        let step = &plan.steps()[j];
        if j != sink && step.materialize {
            continue;
        }
        match &step.op {
            PhysOp::KeyedLookup { source, .. } => {
                lookups.push(j);
                stack.push(*source);
            }
            PhysOp::Fetch { source, .. }
            | PhysOp::Filter { source, .. }
            | PhysOp::Project { source, .. }
            | PhysOp::Dedup { source } => stack.push(*source),
            PhysOp::HashJoin { left, right, .. }
            | PhysOp::Product { left, right }
            | PhysOp::Union { left, right }
            | PhysOp::Difference { left, right } => {
                stack.push(*left);
                stack.push(*right);
            }
            PhysOp::Const { .. } | PhysOp::Unit | PhysOp::Empty { .. } => {}
        }
    }
    lookups.sort_unstable();
    lookups
}

#[cfg(test)]
mod tests {
    use super::*;
    use bea_core::value::Value;

    fn batch_of(rows: usize) -> Batch {
        Batch::from_rows(1, (0..rows).map(|i| vec![Value::int(i as i64)]).collect())
    }

    #[test]
    fn morsel_ranges_group_whole_batches_to_the_target() {
        let batches: Vec<Batch> = [3, 3, 3, 3].into_iter().map(batch_of).collect();
        // Target below one batch: one morsel per batch — batches are never cut.
        assert_eq!(
            morsel_ranges(&batches, 1),
            vec![(0, 1), (1, 2), (2, 3), (3, 4)]
        );
        // Target spanning two batches, with a short tail morsel.
        assert_eq!(morsel_ranges(&batches, 5), vec![(0, 2), (2, 4)]);
        assert_eq!(morsel_ranges(&batches, 7), vec![(0, 3), (3, 4)]);
        // Target at or above the total: one morsel — the split is declined upstream.
        assert_eq!(morsel_ranges(&batches, 12), vec![(0, 4)]);
        assert_eq!(morsel_ranges(&batches, usize::MAX), vec![(0, 4)]);
        assert_eq!(morsel_ranges(&[], 1), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn shared_cache_fills_each_key_exactly_once_across_threads() {
        let cache = Arc::new(SharedLookupCache::new());
        let fills = Arc::new(AtomicU64::new(0));
        let key: Row = vec![Value::int(7)];
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let fills = Arc::clone(&fills);
                let key = key.clone();
                scope.spawn(move || match cache.probe(&key) {
                    CacheProbe::Hit(batch) => assert_eq!(batch.len(), 2),
                    CacheProbe::Fill => {
                        fills.fetch_add(1, Ordering::Relaxed);
                        cache.complete(&key, Arc::new(batch_of(2)));
                    }
                });
            }
        });
        assert_eq!(fills.load(Ordering::Relaxed), 1, "exactly one fill per key");
        assert_eq!(cache.rows(), 2);
        assert!(matches!(cache.probe(&key), CacheProbe::Hit(_)));
    }

    #[test]
    fn aborted_fills_hand_the_claim_to_the_next_prober() {
        let cache = SharedLookupCache::new();
        let key: Row = vec![Value::int(1)];
        assert!(matches!(cache.probe(&key), CacheProbe::Fill));
        cache.abort(&key);
        // The claim is free again: a later probe may retry the fill.
        assert!(matches!(cache.probe(&key), CacheProbe::Fill));
        cache.complete(&key, Arc::new(batch_of(1)));
        assert_eq!(cache.rows(), 1);
    }
}

//! Streaming relational operators: filter, project, dedup, union, difference, product.
//!
//! Filter and project are pure batch-metadata manipulation (selection vectors and
//! column-handle permutation — zero value copies). Dedup and difference emit their
//! input batches restricted by a selection; only the membership sets hold (O(1)-clone)
//! rows. The product is the one genuine gather here: it writes combined rows into
//! fresh output columns.

use super::batch::Batch;
use super::{BoxOp, Operator, SharedState};
use bea_core::error::Result;
use bea_core::plan::Predicate;
use bea_core::value::{Row, Value};
use std::collections::HashMap;

/// Streaming selection: writes a selection vector over the input batch's shared
/// columns. No values move.
pub(crate) struct FilterOp<'db> {
    input: BoxOp<'db>,
    predicates: Vec<Predicate>,
}

impl<'db> FilterOp<'db> {
    pub(crate) fn new(input: BoxOp<'db>, predicates: Vec<Predicate>) -> Self {
        Self { input, predicates }
    }
}

impl Operator for FilterOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        Ok(Some(batch.retain(|i| batch.passes(i, &self.predicates))))
    }
}

/// Streaming projection (no dedup — lowering inserts a [`DedupOp`] where needed):
/// permutes the shared column handles. No values move.
pub(crate) struct ProjectOp<'db> {
    input: BoxOp<'db>,
    cols: Vec<usize>,
}

impl<'db> ProjectOp<'db> {
    pub(crate) fn new(input: BoxOp<'db>, cols: Vec<usize>) -> Self {
        Self { input, cols }
    }
}

impl Operator for ProjectOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        Ok(Some(batch.project(&self.cols)))
    }
}

/// Hash-then-compare membership set over whole rows: buckets of owned rows keyed by
/// their hash, so *asking* whether a batch row is present clones nothing
/// ([`Batch::hash_row`] + [`Batch::row_equals`]) and only genuinely fresh rows are
/// ever gathered into the set. Shared by [`DedupOp`] (seen set) and [`DifferenceOp`]
/// (removal set).
#[derive(Default)]
struct RowSet {
    buckets: HashMap<u64, Vec<Row>>,
    len: u64,
}

impl RowSet {
    /// Is `batch`'s logical row `i` in the set? No clones.
    fn contains(&self, batch: &Batch, i: usize) -> bool {
        self.buckets
            .get(&batch.hash_row(i))
            .is_some_and(|bucket| bucket.iter().any(|row| batch.row_equals(i, row)))
    }

    /// Insert `batch`'s logical row `i` if absent; returns whether it was fresh (the
    /// only case that clones the row — `arity` O(1) value clones).
    fn insert(&mut self, batch: &Batch, i: usize) -> bool {
        let bucket = self.buckets.entry(batch.hash_row(i)).or_default();
        if bucket.iter().any(|row| batch.row_equals(i, row)) {
            return false;
        }
        bucket.push(batch.row(i));
        self.len += 1;
        true
    }

    /// Number of rows stored.
    fn len(&self) -> u64 {
        self.len
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.len = 0;
    }

    /// Pre-size for `additional` more rows instead of growing incrementally.
    fn reserve(&mut self, additional: usize) {
        self.buckets.reserve(additional);
    }
}

/// Streaming duplicate elimination. The set of rows seen so far is durable state,
/// released when the input is exhausted (or on drop); fresh rows pass through as a
/// selection over the input batch — the emitted values are never copied, and only the
/// fresh set entries are cloned (duplicates are detected hash-then-compare, with no
/// clone at all).
pub(crate) struct DedupOp<'db> {
    input: BoxOp<'db>,
    state: SharedState,
    seen: RowSet,
    done: bool,
}

impl<'db> DedupOp<'db> {
    pub(crate) fn new(input: BoxOp<'db>, state: SharedState) -> Self {
        Self {
            input,
            state,
            seen: RowSet::default(),
            done: false,
        }
    }
}

impl Operator for DedupOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        let Some(batch) = self.input.next_batch()? else {
            self.done = true;
            let mut state = self.state.borrow_mut();
            state.release(self.seen.len());
            self.seen.clear();
            return Ok(None);
        };
        self.seen.reserve(batch.len());
        let mut fresh = 0u64;
        let arity = batch.arity() as u64;
        let out = batch.retain(|i| {
            if self.seen.insert(&batch, i) {
                fresh += 1;
                true
            } else {
                false
            }
        });
        let mut state = self.state.borrow_mut();
        state.stats.values_cloned += fresh * arity;
        state.acquire(fresh);
        Ok(Some(out))
    }
}

impl Drop for DedupOp<'_> {
    fn drop(&mut self) {
        if self.seen.len() > 0 {
            self.state.borrow_mut().release(self.seen.len());
            self.seen.clear();
        }
    }
}

/// Streaming concatenation: drains the left input, then the right.
pub(crate) struct UnionOp<'db> {
    left: Option<BoxOp<'db>>,
    right: Option<BoxOp<'db>>,
}

impl<'db> UnionOp<'db> {
    pub(crate) fn new(left: BoxOp<'db>, right: BoxOp<'db>) -> Self {
        Self {
            left: Some(left),
            right: Some(right),
        }
    }
}

impl Operator for UnionOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if let Some(left) = self.left.as_mut() {
            if let Some(batch) = left.next_batch()? {
                return Ok(Some(batch));
            }
            self.left = None;
        }
        if let Some(right) = self.right.as_mut() {
            if let Some(batch) = right.next_batch()? {
                return Ok(Some(batch));
            }
            self.right = None;
        }
        Ok(None)
    }
}

/// Anti-semijoin on whole rows: the right side is buffered as a [`RowSet`] (durable
/// state, released on exhaustion or on drop), the left side streams through it as a
/// selection over its own shared columns — membership probes clone nothing.
pub(crate) struct DifferenceOp<'db> {
    left: BoxOp<'db>,
    right: Option<BoxOp<'db>>,
    state: SharedState,
    remove: RowSet,
    done: bool,
}

impl<'db> DifferenceOp<'db> {
    pub(crate) fn new(left: BoxOp<'db>, right: BoxOp<'db>, state: SharedState) -> Self {
        Self {
            left,
            right: Some(right),
            state,
            remove: RowSet::default(),
            done: false,
        }
    }
}

impl Operator for DifferenceOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch()? {
                self.remove.reserve(batch.len());
                let mut fresh = 0u64;
                let arity = batch.arity() as u64;
                for i in 0..batch.len() {
                    if self.remove.insert(&batch, i) {
                        fresh += 1;
                    }
                }
                let mut state = self.state.borrow_mut();
                state.stats.values_cloned += fresh * arity;
                state.acquire(fresh);
            }
        }
        let Some(batch) = self.left.next_batch()? else {
            self.done = true;
            let mut state = self.state.borrow_mut();
            state.release(self.remove.len());
            self.remove.clear();
            return Ok(None);
        };
        Ok(Some(batch.retain(|i| !self.remove.contains(&batch, i))))
    }
}

impl Drop for DifferenceOp<'_> {
    fn drop(&mut self) {
        if self.remove.len() > 0 {
            self.state.borrow_mut().release(self.remove.len());
            self.remove.clear();
        }
    }
}

/// Cartesian product: the right side is buffered in dense columns (durable state,
/// released on exhaustion), the left side streams. Emitted rows are accounted as
/// `product_rows_materialized`, matching the literal semantics' accounting, even though
/// the pipeline never holds more than a batch of them: output is chunked to
/// [`super::BATCH_SIZE`] rows per call, however large `|batch| · |right|` gets, so the
/// bounded-batch invariant (and the residency ledger's accuracy) survives products.
/// The buffered right-side columns and the per-call output gather columns are drawn
/// from the execution state's buffer pool; the buffered columns return to it when the
/// right side retires (output columns transfer into emitted batches).
pub(crate) struct ProductOp<'db> {
    left: BoxOp<'db>,
    right: Option<BoxOp<'db>>,
    state: SharedState,
    /// The buffered right side, as dense columns.
    buffered: Vec<Vec<Value>>,
    buffered_rows: usize,
    right_arity: usize,
    /// Left batch whose pairings are still being emitted, with the cursor position
    /// `(left row index, right row index)` of the next pair.
    pending: Option<Batch>,
    cursor: (usize, usize),
    done: bool,
}

impl<'db> ProductOp<'db> {
    pub(crate) fn new(left: BoxOp<'db>, right: BoxOp<'db>, state: SharedState) -> Self {
        Self {
            left,
            right: Some(right),
            state,
            buffered: Vec::new(),
            buffered_rows: 0,
            right_arity: 0,
            pending: None,
            cursor: (0, 0),
            done: false,
        }
    }
}

impl Operator for ProductOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch()? {
                let mut state = self.state.borrow_mut();
                if self.buffered.is_empty() {
                    self.right_arity = batch.arity();
                    self.buffered = (0..batch.arity())
                        .map(|_| state.pool.get_values())
                        .collect();
                }
                state.acquire(batch.len() as u64);
                state.stats.values_cloned += (batch.len() * batch.arity()) as u64;
                for i in 0..batch.len() {
                    batch.append_row_to(i, &mut self.buffered);
                }
                self.buffered_rows += batch.len();
            }
        }
        let mut out: Option<Vec<Vec<Value>>> = None;
        let mut out_rows = 0usize;
        let mut exhausted = false;
        while out_rows < super::BATCH_SIZE {
            let Some(pending) = &self.pending else {
                match self.left.next_batch()? {
                    Some(batch) => {
                        self.pending = Some(batch);
                        self.cursor = (0, 0);
                        continue;
                    }
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            };
            if self.cursor.0 >= pending.len() || self.buffered_rows == 0 {
                // Nothing (left) to pair, or an empty right side: consume the pending
                // batch without output.
                self.pending = None;
                self.cursor = (0, 0);
                continue;
            }
            if out.is_none() {
                let mut state = self.state.borrow_mut();
                out = Some(
                    (0..pending.arity() + self.right_arity)
                        .map(|_| state.pool.get_values())
                        .collect(),
                );
            }
            let sinks = out.as_mut().expect("initialized just above");
            let (li, ri) = self.cursor;
            let (left_cols, right_cols) = sinks.split_at_mut(pending.arity());
            pending.append_row_to(li, left_cols);
            for (column, sink) in self.buffered.iter().zip(right_cols) {
                sink.push(column[ri].clone());
            }
            out_rows += 1;
            self.cursor.1 += 1;
            if self.cursor.1 >= self.buffered_rows {
                self.cursor = (self.cursor.0 + 1, 0);
            }
        }
        let arity = out.as_ref().map_or(0, Vec::len) as u64;
        let mut state = self.state.borrow_mut();
        state.stats.product_rows_materialized += out_rows as u64;
        state.stats.values_cloned += out_rows as u64 * arity;
        if exhausted {
            self.done = true;
            state.release(self.buffered_rows as u64);
            for column in self.buffered.drain(..) {
                state.pool.put_values(column);
            }
            self.buffered_rows = 0;
            if out_rows == 0 {
                return Ok(None);
            }
        }
        Ok(Some(Batch::from_dense(out.unwrap_or_default(), out_rows)))
    }
}

impl Drop for ProductOp<'_> {
    fn drop(&mut self) {
        let mut state = self.state.borrow_mut();
        if self.buffered_rows > 0 {
            state.release(self.buffered_rows as u64);
            self.buffered_rows = 0;
        }
        for column in self.buffered.drain(..) {
            state.pool.put_values(column);
        }
    }
}

//! Streaming relational operators: filter, project, dedup, union, difference, product.

use super::{passes, BoxOp, Operator, SharedState};
use bea_core::error::Result;
use bea_core::plan::Predicate;
use bea_core::value::Row;
use std::collections::BTreeSet;

/// Streaming selection.
pub(crate) struct FilterOp<'db> {
    input: BoxOp<'db>,
    predicates: Vec<Predicate>,
}

impl<'db> FilterOp<'db> {
    pub(crate) fn new(input: BoxOp<'db>, predicates: Vec<Predicate>) -> Self {
        Self { input, predicates }
    }
}

impl Operator for FilterOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        let Some(mut batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        batch.retain(|row| passes(row, &self.predicates));
        Ok(Some(batch))
    }
}

/// Streaming projection (no dedup — lowering inserts a [`DedupOp`] where needed).
pub(crate) struct ProjectOp<'db> {
    input: BoxOp<'db>,
    cols: Vec<usize>,
}

impl<'db> ProjectOp<'db> {
    pub(crate) fn new(input: BoxOp<'db>, cols: Vec<usize>) -> Self {
        Self { input, cols }
    }
}

impl Operator for ProjectOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        let Some(batch) = self.input.next_batch()? else {
            return Ok(None);
        };
        Ok(Some(
            batch
                .into_iter()
                .map(|row| self.cols.iter().map(|&c| row[c].clone()).collect())
                .collect(),
        ))
    }
}

/// Streaming duplicate elimination. The set of rows seen so far is durable state,
/// released when the input is exhausted (or on drop).
pub(crate) struct DedupOp<'db> {
    input: BoxOp<'db>,
    state: SharedState,
    seen: BTreeSet<Row>,
    done: bool,
}

impl<'db> DedupOp<'db> {
    pub(crate) fn new(input: BoxOp<'db>, state: SharedState) -> Self {
        Self {
            input,
            state,
            seen: BTreeSet::new(),
            done: false,
        }
    }
}

impl Operator for DedupOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        let Some(batch) = self.input.next_batch()? else {
            self.done = true;
            let mut state = self.state.borrow_mut();
            state.release(self.seen.len() as u64);
            self.seen.clear();
            return Ok(None);
        };
        let mut out: Vec<Row> = Vec::new();
        let mut fresh = 0u64;
        for row in batch {
            if self.seen.insert(row.clone()) {
                fresh += 1;
                out.push(row);
            }
        }
        self.state.borrow_mut().acquire(fresh);
        Ok(Some(out))
    }
}

impl Drop for DedupOp<'_> {
    fn drop(&mut self) {
        if !self.seen.is_empty() {
            self.state.borrow_mut().release(self.seen.len() as u64);
            self.seen.clear();
        }
    }
}

/// Streaming concatenation: drains the left input, then the right.
pub(crate) struct UnionOp<'db> {
    left: Option<BoxOp<'db>>,
    right: Option<BoxOp<'db>>,
}

impl<'db> UnionOp<'db> {
    pub(crate) fn new(left: BoxOp<'db>, right: BoxOp<'db>) -> Self {
        Self {
            left: Some(left),
            right: Some(right),
        }
    }
}

impl Operator for UnionOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if let Some(left) = self.left.as_mut() {
            if let Some(batch) = left.next_batch()? {
                return Ok(Some(batch));
            }
            self.left = None;
        }
        if let Some(right) = self.right.as_mut() {
            if let Some(batch) = right.next_batch()? {
                return Ok(Some(batch));
            }
            self.right = None;
        }
        Ok(None)
    }
}

/// Anti-semijoin on whole rows: the right side is buffered as a set (durable state,
/// released on exhaustion or on drop), the left side streams through it.
pub(crate) struct DifferenceOp<'db> {
    left: BoxOp<'db>,
    right: Option<BoxOp<'db>>,
    state: SharedState,
    remove: BTreeSet<Row>,
    done: bool,
}

impl<'db> DifferenceOp<'db> {
    pub(crate) fn new(left: BoxOp<'db>, right: BoxOp<'db>, state: SharedState) -> Self {
        Self {
            left,
            right: Some(right),
            state,
            remove: BTreeSet::new(),
            done: false,
        }
    }
}

impl Operator for DifferenceOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch()? {
                let mut fresh = 0u64;
                for row in batch {
                    if self.remove.insert(row) {
                        fresh += 1;
                    }
                }
                self.state.borrow_mut().acquire(fresh);
            }
        }
        let Some(mut batch) = self.left.next_batch()? else {
            self.done = true;
            let mut state = self.state.borrow_mut();
            state.release(self.remove.len() as u64);
            self.remove.clear();
            return Ok(None);
        };
        batch.retain(|row| !self.remove.contains(row));
        Ok(Some(batch))
    }
}

impl Drop for DifferenceOp<'_> {
    fn drop(&mut self) {
        if !self.remove.is_empty() {
            self.state.borrow_mut().release(self.remove.len() as u64);
            self.remove.clear();
        }
    }
}

/// Cartesian product: the right side is buffered (durable state, released on
/// exhaustion), the left side streams. Emitted rows are accounted as
/// `product_rows_materialized`, matching the literal semantics' accounting, even though
/// the pipeline never holds more than a batch of them: output is chunked to
/// [`super::BATCH_SIZE`] rows per call, however large `|batch| · |right|` gets, so the
/// bounded-batch invariant (and the residency ledger's accuracy) survives products.
pub(crate) struct ProductOp<'db> {
    left: BoxOp<'db>,
    right: Option<BoxOp<'db>>,
    state: SharedState,
    buffered: Vec<Row>,
    /// Left rows whose pairings are still being emitted, with the cursor position
    /// `(left row index, right row index)` of the next pair.
    pending: Vec<Row>,
    cursor: (usize, usize),
    done: bool,
}

impl<'db> ProductOp<'db> {
    pub(crate) fn new(left: BoxOp<'db>, right: BoxOp<'db>, state: SharedState) -> Self {
        Self {
            left,
            right: Some(right),
            state,
            buffered: Vec::new(),
            pending: Vec::new(),
            cursor: (0, 0),
            done: false,
        }
    }
}

impl Operator for ProductOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch()? {
                self.state.borrow_mut().acquire(batch.len() as u64);
                self.buffered.extend(batch);
            }
        }
        let mut out: Vec<Row> = Vec::new();
        while out.len() < super::BATCH_SIZE {
            if self.cursor.0 >= self.pending.len() {
                let Some(batch) = self.left.next_batch()? else {
                    self.done = true;
                    let mut state = self.state.borrow_mut();
                    state.release(self.buffered.len() as u64);
                    self.buffered.clear();
                    state.stats.product_rows_materialized += out.len() as u64;
                    return if out.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(out))
                    };
                };
                self.pending = batch;
                self.cursor = (0, 0);
                continue;
            }
            if self.buffered.is_empty() {
                // Nothing to pair with: consume the pending rows without output.
                self.pending.clear();
                self.cursor = (0, 0);
                continue;
            }
            let lrow = &self.pending[self.cursor.0];
            let mut row = lrow.clone();
            row.extend(self.buffered[self.cursor.1].iter().cloned());
            out.push(row);
            self.cursor.1 += 1;
            if self.cursor.1 >= self.buffered.len() {
                self.cursor = (self.cursor.0 + 1, 0);
            }
        }
        self.state.borrow_mut().stats.product_rows_materialized += out.len() as u64;
        Ok(Some(out))
    }
}

impl Drop for ProductOp<'_> {
    fn drop(&mut self) {
        if !self.buffered.is_empty() {
            self.state.borrow_mut().release(self.buffered.len() as u64);
            self.buffered.clear();
        }
    }
}

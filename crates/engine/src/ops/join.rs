//! The generic hash join, used when a keyed-join pattern's fetch stays a shared step.

use super::batch::Batch;
use super::{BoxOp, Operator, SharedState};
use bea_core::error::Result;
use bea_core::plan::Predicate;
use bea_core::value::{Row, Value};
use std::collections::HashMap;

/// Hash join on column equalities: buffers the build (right) side in dense columns
/// plus hash buckets of row indices (durable state, released on exhaustion or on
/// drop) and streams the probe (left) side, gathering each match straight into the
/// output columns — one pass, no per-match row concatenation. An empty build side
/// skips the per-row probing while still draining the probe input — short-circuiting
/// the drain would change which index lookups run, and data access must stay identical
/// across execution strategies. Build-side and output gather columns are drawn from
/// the execution state's buffer pool; the build columns go back to it when the build
/// side retires (output columns transfer into emitted batches).
pub(crate) struct HashJoinOp<'db> {
    left: BoxOp<'db>,
    right: Option<BoxOp<'db>>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    residual: Vec<Predicate>,
    state: SharedState,
    /// The build side as dense columns; `buckets` holds row indices into them.
    build: Vec<Vec<Value>>,
    buckets: HashMap<Row, Vec<u32>>,
    built_rows: u64,
    right_arity: usize,
    done: bool,
}

impl<'db> HashJoinOp<'db> {
    /// `right_arity` is the build side's arity *from the plan*, so emitted batches
    /// (including the empty ones of a runtime-empty build side) always carry the
    /// correct column count — a downstream projection must never see a narrower batch
    /// just because no build rows showed up.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        left: BoxOp<'db>,
        right: BoxOp<'db>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Vec<Predicate>,
        right_arity: usize,
        state: SharedState,
    ) -> Self {
        let build = {
            let mut s = state.borrow_mut();
            (0..right_arity).map(|_| s.pool.get_values()).collect()
        };
        Self {
            left,
            right: Some(right),
            left_keys,
            right_keys,
            residual,
            state,
            build,
            buckets: HashMap::new(),
            built_rows: 0,
            right_arity,
            done: false,
        }
    }

    /// Return the build-side columns to the buffer pool (cleared by the pool).
    fn recycle_build(&mut self) {
        let mut state = self.state.borrow_mut();
        for column in self.build.drain(..) {
            state.pool.put_values(column);
        }
    }
}

impl Operator for HashJoinOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        if self.done {
            return Ok(None);
        }
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch()? {
                debug_assert_eq!(batch.arity(), self.right_arity);
                // Pre-size from the batch's row count instead of growing per row.
                self.buckets.reserve(batch.len());
                let mut state = self.state.borrow_mut();
                state.acquire(batch.len() as u64);
                state.stats.values_cloned +=
                    (batch.len() * (batch.arity() + self.right_keys.len())) as u64;
                for i in 0..batch.len() {
                    let key: Row = batch.gather(i, &self.right_keys);
                    self.buckets
                        .entry(key)
                        .or_default()
                        .push(self.built_rows as u32 + i as u32);
                    batch.append_row_to(i, &mut self.build);
                }
                self.built_rows += batch.len() as u64;
            }
        }
        let Some(batch) = self.left.next_batch()? else {
            self.done = true;
            self.state.borrow_mut().release(self.built_rows);
            self.built_rows = 0;
            self.recycle_build();
            self.buckets.clear();
            return Ok(None);
        };
        if self.buckets.is_empty() {
            // Empty build side: nothing can join. Keep draining the probe input (its
            // fetches must still run), but skip the per-row work.
            return Ok(Some(Batch::from_rows(
                batch.arity() + self.right_arity,
                Vec::new(),
            )));
        }
        let left_arity = batch.arity();
        let mut out: Vec<Vec<Value>> = {
            let mut state = self.state.borrow_mut();
            // One probe-key gather per probe row.
            state.stats.values_cloned += (batch.len() * self.left_keys.len()) as u64;
            (0..left_arity + self.right_arity)
                .map(|_| state.pool.get_values())
                .collect()
        };
        let mut out_rows = 0usize;
        let mut probe: Row = Vec::with_capacity(self.left_keys.len());
        for i in 0..batch.len() {
            probe.clear();
            probe.extend(self.left_keys.iter().map(|&c| batch.value(i, c).clone()));
            let Some(matches) = self.buckets.get(&probe) else {
                continue;
            };
            for &m in matches {
                if !passes_combined(&batch, i, &self.build, m as usize, &self.residual) {
                    continue;
                }
                let (left_cols, right_cols) = out.split_at_mut(left_arity);
                batch.append_row_to(i, left_cols);
                for (column, sink) in self.build.iter().zip(right_cols) {
                    sink.push(column[m as usize].clone());
                }
                out_rows += 1;
            }
        }
        self.state.borrow_mut().stats.values_cloned +=
            out_rows as u64 * (left_arity + self.right_arity) as u64;
        Ok(Some(Batch::from_dense(out, out_rows)))
    }
}

/// Evaluate the residual predicates over the concatenation of the probe batch's row
/// `i` and build row `m`, without materializing the combined row.
fn passes_combined(
    left: &Batch,
    i: usize,
    build: &[Vec<Value>],
    m: usize,
    predicates: &[Predicate],
) -> bool {
    let split = left.arity();
    let value = |col: usize| {
        if col < split {
            left.value(i, col)
        } else {
            &build[col - split][m]
        }
    };
    predicates.iter().all(|p| match p {
        Predicate::ColEqCol(a, b) => value(*a) == value(*b),
        Predicate::ColEqConst(a, c) => value(*a) == c,
    })
}

impl Drop for HashJoinOp<'_> {
    fn drop(&mut self) {
        if self.built_rows > 0 {
            self.state.borrow_mut().release(self.built_rows);
            self.built_rows = 0;
        }
        if !self.build.is_empty() {
            self.recycle_build();
        }
    }
}

//! The generic hash join, used when a keyed-join pattern's fetch stays a shared step.

use super::{passes, BoxOp, Operator, SharedState};
use bea_core::error::Result;
use bea_core::plan::Predicate;
use bea_core::value::Row;
use std::collections::HashMap;

/// Hash join on column equalities: buffers the build (right) side in hash buckets
/// (durable state, released on exhaustion or on drop) and streams the probe (left)
/// side. An empty build side skips the per-row probing while still draining the probe
/// input — short-circuiting the drain would change which index lookups run, and data
/// access must stay identical across execution strategies.
pub(crate) struct HashJoinOp<'db> {
    left: BoxOp<'db>,
    right: Option<BoxOp<'db>>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    residual: Vec<Predicate>,
    state: SharedState,
    buckets: HashMap<Row, Vec<Row>>,
    built_rows: u64,
    done: bool,
}

impl<'db> HashJoinOp<'db> {
    pub(crate) fn new(
        left: BoxOp<'db>,
        right: BoxOp<'db>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        residual: Vec<Predicate>,
        state: SharedState,
    ) -> Self {
        Self {
            left,
            right: Some(right),
            left_keys,
            right_keys,
            residual,
            state,
            buckets: HashMap::new(),
            built_rows: 0,
            done: false,
        }
    }
}

impl Operator for HashJoinOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.done {
            return Ok(None);
        }
        if let Some(mut right) = self.right.take() {
            while let Some(batch) = right.next_batch()? {
                self.state.borrow_mut().acquire(batch.len() as u64);
                self.built_rows += batch.len() as u64;
                for row in batch {
                    let key: Row = self.right_keys.iter().map(|&c| row[c].clone()).collect();
                    self.buckets.entry(key).or_default().push(row);
                }
            }
        }
        let Some(batch) = self.left.next_batch()? else {
            self.done = true;
            let mut state = self.state.borrow_mut();
            state.release(self.built_rows);
            self.built_rows = 0;
            self.buckets.clear();
            return Ok(None);
        };
        if self.buckets.is_empty() {
            // Empty build side: nothing can join. Keep draining the probe input (its
            // fetches must still run), but skip the per-row work.
            return Ok(Some(Vec::new()));
        }
        let mut out: Vec<Row> = Vec::new();
        for lrow in batch {
            let key: Row = self.left_keys.iter().map(|&c| lrow[c].clone()).collect();
            let Some(matches) = self.buckets.get(&key) else {
                continue;
            };
            for rrow in matches {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                if passes(&row, &self.residual) {
                    out.push(row);
                }
            }
        }
        Ok(Some(out))
    }
}

impl Drop for HashJoinOp<'_> {
    fn drop(&mut self) {
        if self.built_rows > 0 {
            self.state.borrow_mut().release(self.built_rows);
            self.built_rows = 0;
        }
    }
}

//! The parallel pipeline scheduler: runs independent pipelines of a physical plan on
//! scoped worker threads.
//!
//! The unit of work is one [`bea_core::plan::Pipeline`] — a materialization point plus
//! the streaming region feeding it. A pipeline is *ready* when every pipeline it scans
//! (its exchange edges) has completed; ready pipelines are handed to a pool of
//! `threads` scoped workers. Each worker executes its pipeline with a private
//! [`ExecState`] (operator trees never cross threads) against the shared
//! [`ResidencyLedger`], then merges its counters into the run's totals with
//! [`AccessStats::merge_concurrent`] — the merge whose peak rule is safe under
//! overlapping residency windows; the *exact* concurrent peak is read off the ledger by
//! the caller.
//!
//! # Shard affinity
//!
//! Pipelines carry the shard their region probes ([`bea_core::plan::Pipeline::shard`],
//! set on the per-shard branches of a sharded lowering). A worker that just completed
//! shard `k`'s pipeline prefers the next ready pipeline tagged `k` ([`pick_ready`]):
//! consecutive probes of the same index partition stay on the same worker, which keeps
//! that partition's buckets warm in the worker's cache (and is the policy hook for
//! pinning shards to NUMA nodes once placement is physical). Affinity only reorders
//! the ready queue — which pipelines run, and what they compute, is unchanged.
//!
//! Scheduling affects only timing: every pipeline computes a function of its completed
//! sources, so the output table, and every data-access counter, are identical at any
//! thread count and under any interleaving.

use super::{run_pipeline, ExecState, MatSlots, ResidencyLedger, SharedState};
use crate::stats::AccessStats;
use bea_core::error::{Error, Result};
use bea_core::plan::{PhysicalPlan, PipelineDag};
use bea_storage::Store;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};

/// Shared scheduler state, guarded by one mutex.
struct Sched {
    /// Pipelines whose dependencies are all complete, awaiting a worker.
    ready: VecDeque<usize>,
    /// Remaining incomplete dependencies per pipeline.
    deps_left: Vec<usize>,
    /// Number of completed pipelines.
    completed: usize,
    /// First error raised by a worker; set once, ends the run.
    error: Option<Error>,
    /// Concurrent merge of the per-pipeline access counters.
    stats: AccessStats,
}

/// Pop the next job for a worker whose previous pipeline probed shard `last`: the
/// first ready pipeline tagged with the same shard when there is one, the queue front
/// otherwise. Pure queue reordering — every ready pipeline still runs exactly once.
fn pick_ready(
    ready: &mut VecDeque<usize>,
    shards: &[Option<u32>],
    last: Option<u32>,
) -> Option<usize> {
    let position = last
        .and_then(|shard| ready.iter().position(|&job| shards[job] == Some(shard)))
        .unwrap_or(0);
    ready.remove(position)
}

/// Execute every pipeline of `dag` on up to `threads` scoped worker threads, in
/// dependency order. Returns the merged access statistics (whose
/// `peak_rows_resident` the caller overwrites with the ledger's exact peak).
pub(crate) fn run_parallel(
    plan: &PhysicalPlan,
    dag: &PipelineDag,
    store: Store<'_>,
    ledger: &Arc<ResidencyLedger>,
    mats: &MatSlots,
    threads: usize,
) -> Result<AccessStats> {
    let n = dag.len();
    let deps_left: Vec<usize> = (0..n).map(|i| dag.dependencies(i).len()).collect();
    let ready: VecDeque<usize> = (0..n).filter(|&i| deps_left[i] == 0).collect();
    let shards: Vec<Option<u32>> = dag.pipelines().iter().map(|p| p.shard).collect();
    let sched = Mutex::new(Sched {
        ready,
        deps_left,
        completed: 0,
        error: None,
        stats: AccessStats::default(),
    });
    let work_available = Condvar::new();
    let workers = threads.min(n).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // The shard of the pipeline this worker ran last — its affinity.
                let mut last_shard: Option<u32> = None;
                loop {
                    let job = {
                        let mut guard = sched.lock().expect("scheduler lock");
                        loop {
                            if guard.error.is_some() || guard.completed == n {
                                return;
                            }
                            if let Some(job) = pick_ready(&mut guard.ready, &shards, last_shard) {
                                break job;
                            }
                            guard = work_available.wait(guard).expect("scheduler lock");
                        }
                    };
                    last_shard = shards[job];
                    // A fresh per-pipeline state: counters stay private to this worker,
                    // residency goes through the shared ledger.
                    let state: SharedState = Rc::new(RefCell::new(ExecState::new(ledger.clone())));
                    let result = run_pipeline(plan, dag.pipelines()[job].sink, store, &state, mats);
                    let stats = Rc::try_unwrap(state)
                        .expect("pipeline operators are dropped before their stats are read")
                        .into_inner()
                        .stats;
                    let mut guard = sched.lock().expect("scheduler lock");
                    match result {
                        Ok(()) => {
                            guard.stats.merge_concurrent(stats);
                            guard.completed += 1;
                            for &dependent in dag.dependents(job) {
                                guard.deps_left[dependent] -= 1;
                                if guard.deps_left[dependent] == 0 {
                                    guard.ready.push_back(dependent);
                                }
                            }
                        }
                        Err(error) => {
                            // First failure wins; in-flight pipelines finish, waiting
                            // workers exit.
                            guard.error.get_or_insert(error);
                        }
                    }
                    drop(guard);
                    work_available.notify_all();
                }
            });
        }
    });

    let sched = sched.into_inner().expect("scheduler lock");
    match sched.error {
        Some(error) => Err(error),
        None => Ok(sched.stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_ready_prefers_the_affine_shard() {
        let shards = [Some(0), Some(1), Some(1), None];
        let mut ready: VecDeque<usize> = [0, 1, 2, 3].into_iter().collect();
        // A worker fresh off shard 1 jumps the queue to pipeline 1.
        assert_eq!(pick_ready(&mut ready, &shards, Some(1)), Some(1));
        // Same worker again: the other shard-1 pipeline.
        assert_eq!(pick_ready(&mut ready, &shards, Some(1)), Some(2));
        // No shard-1 work left: fall back to the queue front.
        assert_eq!(pick_ready(&mut ready, &shards, Some(1)), Some(0));
        // No affinity at all: plain FIFO.
        assert_eq!(pick_ready(&mut ready, &shards, None), Some(3));
        assert_eq!(pick_ready(&mut ready, &shards, None), None);
    }

    #[test]
    fn pick_ready_ignores_untagged_pipelines_for_affinity() {
        let shards = [None, Some(2)];
        let mut ready: VecDeque<usize> = [0, 1].into_iter().collect();
        // Affinity to shard 7 matches nothing; the front (untagged) pipeline runs.
        assert_eq!(pick_ready(&mut ready, &shards, Some(7)), Some(0));
        assert_eq!(pick_ready(&mut ready, &shards, Some(2)), Some(1));
    }
}

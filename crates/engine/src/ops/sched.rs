//! The parallel pipeline scheduler: runs independent pipelines of a physical plan on
//! scoped worker threads.
//!
//! The unit of work is one [`bea_core::plan::Pipeline`] — a materialization point plus
//! the streaming region feeding it. A pipeline is *ready* when every pipeline it scans
//! (its exchange edges) has completed; ready pipelines are handed to a pool of
//! `threads` scoped workers. Each worker executes its pipeline with a private
//! [`ExecState`] (operator trees never cross threads) against the shared
//! [`ResidencyLedger`], then merges its counters into the run's totals with
//! [`AccessStats::merge_concurrent`] — the merge whose peak rule is safe under
//! overlapping residency windows; the *exact* concurrent peak is read off the ledger by
//! the caller.
//!
//! # Shard affinity
//!
//! Pipelines carry the shard their region probes ([`bea_core::plan::Pipeline::shard`],
//! set on the per-shard branches of a sharded lowering). A worker that just completed
//! shard `k`'s pipeline prefers the next ready pipeline tagged `k` ([`pick_ready`]):
//! consecutive probes of the same index partition stay on the same worker, which keeps
//! that partition's buckets warm in the worker's cache (and is the policy hook for
//! pinning shards to NUMA nodes once placement is physical). Affinity only reorders
//! the ready queue — which pipelines run, and what they compute, is unchanged.
//!
//! Scheduling affects only timing: every pipeline computes a function of its completed
//! sources, so the output table, and every data-access counter, are identical at any
//! thread count and under any interleaving.

use super::{run_pipeline, ExecState, MatSlots, ResidencyLedger, SharedState};
use crate::stats::AccessStats;
use bea_core::error::{Error, Result};
use bea_core::plan::{PhysicalPlan, PipelineDag};
use bea_storage::Store;
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Shared scheduler state, guarded by one mutex.
struct Sched {
    /// Pipelines whose dependencies are all complete, awaiting a worker.
    ready: VecDeque<usize>,
    /// Remaining incomplete dependencies per pipeline.
    deps_left: Vec<usize>,
    /// Number of completed pipelines.
    completed: usize,
    /// First error raised by a worker; set once, ends the run.
    error: Option<Error>,
    /// First *panic* payload raised by a worker; set once, ends the run. Panics are
    /// caught on the worker (not left to kill the scoped thread, which would strand
    /// the others waiting on the condvar) and re-raised on the caller by
    /// [`run_parallel`], so the original panic message survives instead of a
    /// poisoned-mutex secondary panic.
    panic: Option<Box<dyn Any + Send>>,
    /// Concurrent merge of the per-pipeline access counters.
    stats: AccessStats,
}

/// Pop the next job for a worker whose previous pipeline probed shard `last`: the
/// first ready pipeline tagged with the same shard when there is one, the queue front
/// otherwise. Pure queue reordering — every ready pipeline still runs exactly once.
fn pick_ready(
    ready: &mut VecDeque<usize>,
    shards: &[Option<u32>],
    last: Option<u32>,
) -> Option<usize> {
    let position = last
        .and_then(|shard| ready.iter().position(|&job| shards[job] == Some(shard)))
        .unwrap_or(0);
    ready.remove(position)
}

/// Execute every pipeline of `dag` on up to `threads` scoped worker threads, in
/// dependency order. Returns the merged access statistics (whose
/// `peak_rows_resident` the caller overwrites with the ledger's exact peak).
pub(crate) fn run_parallel(
    plan: &PhysicalPlan,
    dag: &PipelineDag,
    store: Store<'_>,
    ledger: &Arc<ResidencyLedger>,
    mats: &MatSlots,
    threads: usize,
) -> Result<AccessStats> {
    let n = dag.len();
    let deps_left: Vec<usize> = (0..n).map(|i| dag.dependencies(i).len()).collect();
    let ready: VecDeque<usize> = (0..n).filter(|&i| deps_left[i] == 0).collect();
    let shards: Vec<Option<u32>> = dag.pipelines().iter().map(|p| p.shard).collect();
    let sched = Mutex::new(Sched {
        ready,
        deps_left,
        completed: 0,
        error: None,
        panic: None,
        stats: AccessStats::default(),
    });
    let work_available = Condvar::new();
    let workers = threads.min(n).max(1);
    // The scheduler mutex is only ever held around plain bookkeeping, but a panicking
    // worker may still have poisoned it between our catch and the next lock — the
    // bookkeeping it guards is never left half-done, so waiting workers just take the
    // guard and proceed to the shutdown check.
    let lock_sched = || sched.lock().unwrap_or_else(PoisonError::into_inner);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // The shard of the pipeline this worker ran last — its affinity.
                let mut last_shard: Option<u32> = None;
                loop {
                    let job = {
                        let mut guard = lock_sched();
                        loop {
                            if guard.error.is_some()
                                || guard.panic.is_some()
                                || guard.completed == n
                            {
                                return;
                            }
                            if let Some(job) = pick_ready(&mut guard.ready, &shards, last_shard) {
                                break job;
                            }
                            guard = work_available
                                .wait(guard)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    last_shard = shards[job];
                    // Catch panics on the worker: an uncaught panic would kill this
                    // scoped thread without a `notify_all`, deadlocking the workers
                    // still waiting on the condvar, and poison any `MatNode` lock it
                    // held — turning one bad operator into an opaque secondary panic
                    // elsewhere. The unwind still runs the operator drops inside the
                    // catch, so residency is released before the payload is recorded.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        // A fresh per-pipeline state: counters stay private to this
                        // worker, residency goes through the shared ledger.
                        let state: SharedState =
                            Rc::new(RefCell::new(ExecState::new(ledger.clone())));
                        let result =
                            run_pipeline(plan, dag.pipelines()[job].sink, store, &state, mats);
                        let stats = Rc::try_unwrap(state)
                            .expect("pipeline operators are dropped before their stats are read")
                            .into_inner()
                            .stats;
                        (result, stats)
                    }));
                    let mut guard = lock_sched();
                    match outcome {
                        Ok((Ok(()), stats)) => {
                            guard.stats.merge_concurrent(stats);
                            guard.completed += 1;
                            for &dependent in dag.dependents(job) {
                                guard.deps_left[dependent] -= 1;
                                if guard.deps_left[dependent] == 0 {
                                    guard.ready.push_back(dependent);
                                }
                            }
                        }
                        Ok((Err(error), _)) => {
                            // First failure wins; in-flight pipelines finish, waiting
                            // workers exit.
                            guard.error.get_or_insert(error);
                        }
                        Err(payload) => {
                            // First panic wins, same shutdown protocol as an error;
                            // the caller re-raises the original payload.
                            guard.panic.get_or_insert(payload);
                        }
                    }
                    drop(guard);
                    work_available.notify_all();
                }
            });
        }
    });

    let sched = sched.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(payload) = sched.panic {
        resume_unwind(payload);
    }
    match sched.error {
        Some(error) => Err(error),
        None => Ok(sched.stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_panic_propagates_cleanly_instead_of_deadlocking() {
        use crate::ops::{execute_inner, PANIC_RELATION};
        use bea_core::access::{AccessConstraint, AccessSchema};
        use bea_core::plan::{lower_plan_with, LowerOptions, PlanBuilder};
        use bea_core::value::Value;
        use bea_storage::{Database, IndexedDatabase};

        let mut c = bea_core::schema::Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare(PANIC_RELATION, ["a", "b"]).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap(),
            AccessConstraint::new(&c, PANIC_RELATION, &["a"], &["b"], 10).unwrap(),
        ]);
        let mut db = Database::new(c);
        db.extend("R", [vec![Value::int(1), Value::int(10)]])
            .unwrap();
        db.extend(PANIC_RELATION, [vec![Value::int(1), Value::int(10)]])
            .unwrap();
        let idb = IndexedDatabase::build(db, schema).unwrap();

        // Two independent branches, so several workers are live at once: a healthy
        // fetch of R, and a fetch of the injection relation whose operator panics on
        // its first pull.
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let healthy = b.fetch(
            k1,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let k2 = b.constant(Value::int(1), "k");
        let panicking = b.fetch(
            k2,
            vec![0],
            PANIC_RELATION,
            vec![0],
            vec![1],
            1,
            vec!["a".into(), "b".into()],
        );
        let out = b.union(healthy, panicking);
        let plan = b.finish("Q", out).unwrap();
        let phys =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        assert!(phys.pipeline_dag().len() >= 3);

        // Before the fix this deadlocked: the panicking worker died without a
        // `notify_all`, stranding the other workers in the condvar wait, and any
        // `MatNode` lock it poisoned resurfaced as an unrelated "materialization
        // lock" panic on whichever worker touched it next. Now the original payload
        // must reach the caller.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_inner(&phys, bea_storage::Store::Indexed(&idb), 4)
        }));
        let payload = outcome.expect_err("the injected panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("injected operator panic"),
            "expected the original panic payload, got: {message:?}"
        );
    }

    #[test]
    fn pick_ready_prefers_the_affine_shard() {
        let shards = [Some(0), Some(1), Some(1), None];
        let mut ready: VecDeque<usize> = [0, 1, 2, 3].into_iter().collect();
        // A worker fresh off shard 1 jumps the queue to pipeline 1.
        assert_eq!(pick_ready(&mut ready, &shards, Some(1)), Some(1));
        // Same worker again: the other shard-1 pipeline.
        assert_eq!(pick_ready(&mut ready, &shards, Some(1)), Some(2));
        // No shard-1 work left: fall back to the queue front.
        assert_eq!(pick_ready(&mut ready, &shards, Some(1)), Some(0));
        // No affinity at all: plain FIFO.
        assert_eq!(pick_ready(&mut ready, &shards, None), Some(3));
        assert_eq!(pick_ready(&mut ready, &shards, None), None);
    }

    #[test]
    fn pick_ready_ignores_untagged_pipelines_for_affinity() {
        let shards = [None, Some(2)];
        let mut ready: VecDeque<usize> = [0, 1].into_iter().collect();
        // Affinity to shard 7 matches nothing; the front (untagged) pipeline runs.
        assert_eq!(pick_ready(&mut ready, &shards, Some(7)), Some(0));
        assert_eq!(pick_ready(&mut ready, &shards, Some(2)), Some(1));
    }
}

//! The parallel pipeline scheduler: runs independent pipelines of a physical plan on
//! scoped worker threads.
//!
//! The unit of work is one [`bea_core::plan::Pipeline`] — a materialization point plus
//! the streaming region feeding it. A pipeline is *ready* when every pipeline it scans
//! (its exchange edges) has completed; ready pipelines are handed to a pool of
//! `threads` scoped workers. Each worker executes its pipeline with a private
//! [`ExecState`] (operator trees never cross threads) against the shared
//! [`ResidencyLedger`], then merges its counters into the run's totals with
//! [`AccessStats::merge_concurrent`] — the merge whose peak rule is safe under
//! overlapping residency windows; the *exact* concurrent peak is read off the ledger by
//! the caller.
//!
//! Scheduling affects only timing: every pipeline computes a function of its completed
//! sources, so the output table, and every data-access counter, are identical at any
//! thread count and under any interleaving.

use super::{run_pipeline, ExecState, MatSlots, ResidencyLedger, SharedState};
use crate::stats::AccessStats;
use bea_core::error::{Error, Result};
use bea_core::plan::{PhysicalPlan, PipelineDag};
use bea_storage::IndexedDatabase;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex};

/// Shared scheduler state, guarded by one mutex.
struct Sched {
    /// Pipelines whose dependencies are all complete, awaiting a worker.
    ready: VecDeque<usize>,
    /// Remaining incomplete dependencies per pipeline.
    deps_left: Vec<usize>,
    /// Number of completed pipelines.
    completed: usize,
    /// First error raised by a worker; set once, ends the run.
    error: Option<Error>,
    /// Concurrent merge of the per-pipeline access counters.
    stats: AccessStats,
}

/// Execute every pipeline of `dag` on up to `threads` scoped worker threads, in
/// dependency order. Returns the merged access statistics (whose
/// `peak_rows_resident` the caller overwrites with the ledger's exact peak).
pub(crate) fn run_parallel(
    plan: &PhysicalPlan,
    dag: &PipelineDag,
    database: &IndexedDatabase,
    ledger: &Arc<ResidencyLedger>,
    mats: &MatSlots,
    threads: usize,
) -> Result<AccessStats> {
    let n = dag.len();
    let deps_left: Vec<usize> = (0..n).map(|i| dag.dependencies(i).len()).collect();
    let ready: VecDeque<usize> = (0..n).filter(|&i| deps_left[i] == 0).collect();
    let sched = Mutex::new(Sched {
        ready,
        deps_left,
        completed: 0,
        error: None,
        stats: AccessStats::default(),
    });
    let work_available = Condvar::new();
    let workers = threads.min(n).max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = {
                    let mut guard = sched.lock().expect("scheduler lock");
                    loop {
                        if guard.error.is_some() || guard.completed == n {
                            return;
                        }
                        if let Some(job) = guard.ready.pop_front() {
                            break job;
                        }
                        guard = work_available.wait(guard).expect("scheduler lock");
                    }
                };
                // A fresh per-pipeline state: counters stay private to this worker,
                // residency goes through the shared ledger.
                let state: SharedState = Rc::new(RefCell::new(ExecState::new(ledger.clone())));
                let result = run_pipeline(plan, dag.pipelines()[job].sink, database, &state, mats);
                let stats = Rc::try_unwrap(state)
                    .expect("pipeline operators are dropped before their stats are read")
                    .into_inner()
                    .stats;
                let mut guard = sched.lock().expect("scheduler lock");
                match result {
                    Ok(()) => {
                        guard.stats.merge_concurrent(stats);
                        guard.completed += 1;
                        for &dependent in dag.dependents(job) {
                            guard.deps_left[dependent] -= 1;
                            if guard.deps_left[dependent] == 0 {
                                guard.ready.push_back(dependent);
                            }
                        }
                    }
                    Err(error) => {
                        // First failure wins; in-flight pipelines finish, waiting
                        // workers exit.
                        guard.error.get_or_insert(error);
                    }
                }
                drop(guard);
                work_available.notify_all();
            });
        }
    });

    let sched = sched.into_inner().expect("scheduler lock");
    match sched.error {
        Some(error) => Err(error),
        None => Ok(sched.stats),
    }
}

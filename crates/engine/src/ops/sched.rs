//! The parallel pipeline scheduler: runs independent pipelines — and, within a
//! splittable pipeline, independent **morsels** — on scoped worker threads.
//!
//! The unit of work is a [`Job`]: either one [`bea_core::plan::Pipeline`] (a
//! materialization point plus the streaming region feeding it) or one morsel of a
//! split pipeline. A pipeline is *ready* when every pipeline it scans (its exchange
//! edges) has completed; ready jobs are handed to a pool of `threads` scoped workers.
//! Each worker executes its job with a private [`ExecState`] (operator trees never
//! cross threads) against the shared [`ResidencyLedger`], then merges its counters
//! into the run's totals with [`AccessStats::merge_concurrent`] — the merge whose
//! peak rule is safe under overlapping residency windows; the *exact* concurrent peak
//! is read off the ledger by the caller.
//!
//! # Morsel splitting
//!
//! When a worker claims a pipeline whose region is morsel-splittable
//! ([`bea_core::plan::Pipeline::morsel_source`]), it first tries to cut the source
//! materialization into morsels — groups of consecutive whole batches totalling at
//! least the configured morsel size (see [`super::morsel`]). If more than one morsel
//! results, the worker registers the split, enqueues the other morsels (waking one
//! worker per extra job), and runs the first morsel itself. Each morsel re-instantiates
//! the pipeline's operator chain over its batch range; the split's keyed lookups share
//! per-step [`SharedLookupCache`]s so every distinct key is fetched exactly once. The
//! worker whose morsel completes the split *finalizes* it: the per-morsel outputs are
//! concatenated in morsel order (making the published materialization batch-for-batch
//! identical to the unsplit pipeline's), the shared caches' rows are released, and the
//! split's single consumer claim on the source materialization is retired — mirroring
//! [`super::source::ScanOp`]'s last-consumer protocol.
//!
//! # Shard affinity and wakeups
//!
//! Pipelines carry the shard their region probes ([`bea_core::plan::Pipeline::shard`],
//! set on the per-shard branches of a sharded lowering). [`pick_ready`] gives a worker
//! first a morsel of the pipeline it just worked on (its warmed split), then a job of
//! its last shard, then the queue front: morsel stealing respects shard affinity
//! before stealing cross-shard. Affinity only reorders the ready queue — which jobs
//! run, and what they compute, is unchanged.
//!
//! Completion wakeups are counted, not broadcast: a completion that readies `k` jobs
//! wakes `k - 1` waiters with `notify_one` (the completing worker loops around and
//! claims one itself); the broadcast `notify_all` is reserved for the shutdown paths
//! (error, panic, all pipelines complete), which must wake *every* waiter so it can
//! exit. Every state change that adds jobs or ends the run emits its wakeups before
//! the mutex is re-taken, so no worker is stranded in the condvar wait.
//!
//! Scheduling affects only timing: every pipeline computes a function of its completed
//! sources, so the output table, and every data-access counter, are identical at any
//! thread count, morsel size and interleaving.

use super::batch::Batch;
use super::morsel::{lookup_steps_in_region, morsel_ranges, MorselCtx, SharedLookupCache};
use super::{run_morsel, run_pipeline, ExecState, MatNode, MatSlots, ResidencyLedger, SharedState};
use crate::stats::AccessStats;
use bea_core::error::{Error, Result};
use bea_core::plan::{PhysicalPlan, PipelineDag};
use bea_storage::Store;
use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// The immutable description of one split pipeline, shared by its morsel jobs.
pub(crate) struct MorselWork {
    /// The pipeline's index in the DAG.
    pub(crate) pipeline: usize,
    /// The materialized source step whose batches the morsels replay.
    pub(crate) source: usize,
    /// Snapshot of the source's batches. Morsels are ranges of *whole* batches, so
    /// every per-batch charge the chain makes is identical under any grouping.
    pub(crate) batches: Arc<Vec<Batch>>,
    /// Disjoint `[start, end)` ranges over `batches`, one per morsel.
    pub(crate) ranges: Vec<(usize, usize)>,
    /// Per-lookup-step caches shared by all morsels of this split.
    pub(crate) caches: Arc<BTreeMap<usize, Arc<SharedLookupCache>>>,
}

/// Completion state of one split, guarded by the scheduler mutex.
pub(crate) struct SplitState {
    /// Per-morsel output batches, filled in as morsels land and concatenated in
    /// morsel order at finalize.
    pub(crate) results: Vec<Option<Vec<Batch>>>,
    /// Total output rows across the landed morsels.
    pub(crate) rows: u64,
    /// Morsels still in flight.
    pub(crate) remaining: usize,
}

impl SplitState {
    /// A fresh state expecting `morsels` results.
    pub(crate) fn new(morsels: usize) -> Self {
        SplitState {
            results: (0..morsels).map(|_| None).collect(),
            rows: 0,
            remaining: morsels,
        }
    }
}

/// One unit of work for a worker.
pub(crate) enum Job {
    /// A whole pipeline, run unsplit.
    Pipeline(usize),
    /// One morsel of a split pipeline; `split` indexes the owner's split table.
    Morsel {
        work: Arc<MorselWork>,
        split: usize,
        index: usize,
    },
}

/// The pipeline a job belongs to — the unit affinity reasons about.
pub(crate) fn job_pipeline(job: &Job) -> usize {
    match job {
        Job::Pipeline(pipeline) => *pipeline,
        Job::Morsel { work, .. } => work.pipeline,
    }
}

/// Shared scheduler state, guarded by one mutex.
struct Sched {
    /// Jobs whose dependencies are all complete, awaiting a worker.
    ready: VecDeque<Job>,
    /// Remaining incomplete dependencies per pipeline.
    deps_left: Vec<usize>,
    /// Completion state per registered split.
    splits: Vec<SplitState>,
    /// Number of completed pipelines.
    completed: usize,
    /// First error raised by a worker; set once, ends the run.
    error: Option<Error>,
    /// First *panic* payload raised by a worker; set once, ends the run. Panics are
    /// caught on the worker (not left to kill the scoped thread, which would strand
    /// the others waiting on the condvar) and re-raised on the caller by
    /// [`run_parallel`], so the original panic message survives instead of a
    /// poisoned-mutex secondary panic.
    panic: Option<Box<dyn Any + Send>>,
    /// Concurrent merge of the per-job access counters.
    stats: AccessStats,
}

/// Pop the next job for a worker whose previous job belonged to pipeline
/// `last_pipeline` on shard `last_shard`: first a morsel of the same pipeline (the
/// split whose cache and batches this worker has warm), then the first job tagged
/// with the same shard, then the queue front — morsel stealing respects shard
/// affinity before stealing cross-shard. Pure queue reordering — every ready job
/// still runs exactly once.
pub(crate) fn pick_ready(
    ready: &mut VecDeque<Job>,
    shards: &[Option<u32>],
    last_pipeline: Option<usize>,
    last_shard: Option<u32>,
) -> Option<Job> {
    let position = last_pipeline
        .and_then(|pipeline| ready.iter().position(|job| job_pipeline(job) == pipeline))
        .or_else(|| {
            last_shard.and_then(|shard| {
                ready
                    .iter()
                    .position(|job| shards[job_pipeline(job)] == Some(shard))
            })
        })
        .unwrap_or(0);
    ready.remove(position)
}

/// Cut pipeline `p`'s source materialization into morsels, when it is splittable and
/// worth it. Returns `None` — run the pipeline unsplit — when the pipeline has no
/// morsel source, splitting is disabled (`morsel_rows == usize::MAX`), or the source
/// holds at most one morsel's worth of batches.
pub(crate) fn try_split(
    plan: &PhysicalPlan,
    dag: &PipelineDag,
    p: usize,
    mats: &MatSlots,
    morsel_rows: usize,
) -> Option<MorselWork> {
    let pipeline = &dag.pipelines()[p];
    let source = pipeline.morsel_source?;
    if morsel_rows == usize::MAX {
        return None;
    }
    let batches: Vec<Batch> = {
        let node = mats[source]
            .get()
            .expect("the scheduler completes a pipeline's sources before starting it")
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        node.batches
            .as_ref()
            .expect("a source stays materialized while consumers remain")
            .clone()
    };
    let ranges = morsel_ranges(&batches, morsel_rows);
    if ranges.len() <= 1 {
        return None;
    }
    let caches: BTreeMap<usize, Arc<SharedLookupCache>> =
        lookup_steps_in_region(plan, pipeline.sink)
            .into_iter()
            .map(|step| (step, Arc::new(SharedLookupCache::new())))
            .collect();
    Some(MorselWork {
        pipeline: p,
        source,
        batches: Arc::new(batches),
        ranges,
        caches: Arc::new(caches),
    })
}

/// Decrement the dependency counts of `pipeline`'s dependents, enqueueing the ones
/// that became ready. Returns how many jobs were added.
fn unlock_dependents(guard: &mut Sched, dag: &PipelineDag, pipeline: usize) -> usize {
    let mut added = 0;
    for &dependent in dag.dependents(pipeline) {
        guard.deps_left[dependent] -= 1;
        if guard.deps_left[dependent] == 0 {
            guard.ready.push_back(Job::Pipeline(dependent));
            added += 1;
        }
    }
    added
}

/// The split's last morsel landed: publish the concatenated result as the pipeline's
/// materialization, release the shared caches' rows, and retire the split's single
/// consumer claim on the source materialization — exactly once for the whole split,
/// mirroring [`super::source::ScanOp`]'s last-consumer protocol.
pub(crate) fn finalize_split(
    plan: &PhysicalPlan,
    state: &mut SplitState,
    work: &MorselWork,
    sink: usize,
    mats: &MatSlots,
    ledger: &ResidencyLedger,
) {
    let mut batches: Vec<Batch> = Vec::new();
    for result in state.results.iter_mut() {
        batches.append(
            &mut result
                .take()
                .expect("every morsel stores its result before the split finalizes"),
        );
    }
    let node = Arc::new(Mutex::new(MatNode {
        batches: Some(batches),
        rows: state.rows,
        remaining: plan.steps()[sink].consumers,
    }));
    if mats[sink].set(node).is_err() {
        unreachable!("each pipeline is executed exactly once");
    }
    // The shared caches die with the split: their fills acquired these rows.
    for cache in work.caches.values() {
        ledger.release(cache.rows());
    }
    let mut source = mats[work.source]
        .get()
        .expect("the split's source completed before the split started")
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    source.remaining -= 1;
    if source.remaining == 0 {
        source.batches = None;
        ledger.release(source.rows);
    }
}

/// What one job produced: `None` for a whole pipeline (its result is published into
/// `mats` by the run), `Some((batches, rows))` for a morsel (buffered until its split
/// finalizes) — paired with the job's private access counters. The outer
/// [`std::thread::Result`] carries a caught worker panic.
pub(crate) type JobOutcome = std::thread::Result<(Result<Option<(Vec<Batch>, u64)>>, AccessStats)>;

/// Execute one [`Job`] with a fresh per-job [`ExecState`] — counters stay private to
/// the job, residency goes through the shared `ledger` — catching panics on the
/// worker. An uncaught panic would kill the worker thread without a wakeup,
/// deadlocking workers still waiting on the scheduler condvar, and poison any
/// `MatNode` lock it held — turning one bad operator into an opaque secondary panic
/// elsewhere. The unwind still runs the operator drops inside the catch, so residency
/// is released before the payload is returned. Shared by the single-query
/// [`run_parallel`] pool and the multi-query [`crate::session::Session`] pool —
/// only the latter ever passes a session `cache` for the job's operators to probe;
/// the solo pool always runs uncached.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_job(
    plan: &PhysicalPlan,
    dag: &PipelineDag,
    store: Store<'_>,
    ledger: &Arc<ResidencyLedger>,
    mats: &MatSlots,
    pool_cap: usize,
    cache: Option<&Arc<crate::cache::SessionFetchCache>>,
    job: &Job,
) -> JobOutcome {
    catch_unwind(AssertUnwindSafe(|| {
        let mut exec_state = ExecState::with_pool_cap(ledger.clone(), pool_cap);
        exec_state.cache = cache.cloned();
        let state: SharedState = Rc::new(RefCell::new(exec_state));
        let result = match job {
            Job::Pipeline(p) => {
                run_pipeline(plan, dag.pipelines()[*p].sink, store, &state, mats).map(|()| None)
            }
            Job::Morsel { work, index, .. } => {
                let ctx = MorselCtx {
                    source: work.source,
                    batches: Arc::clone(&work.batches),
                    range: work.ranges[*index],
                    caches: Arc::clone(&work.caches),
                    report: *index == 0,
                };
                run_morsel(
                    plan,
                    dag.pipelines()[work.pipeline].sink,
                    store,
                    &state,
                    mats,
                    &ctx,
                )
                .map(Some)
            }
        };
        let stats = Rc::try_unwrap(state)
            .expect("pipeline operators are dropped before their stats are read")
            .into_inner()
            .stats;
        (result, stats)
    }))
}

/// Execute every pipeline of `dag` on up to `threads` scoped worker threads, in
/// dependency order, splitting morsel-splittable pipelines into morsels of
/// `morsel_rows` rows (`usize::MAX` disables splitting). Returns the merged access
/// statistics (whose `peak_rows_resident` the caller overwrites with the ledger's
/// exact peak).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel(
    plan: &PhysicalPlan,
    dag: &PipelineDag,
    store: Store<'_>,
    ledger: &Arc<ResidencyLedger>,
    mats: &MatSlots,
    threads: usize,
    morsel_rows: usize,
    pool_cap: usize,
) -> Result<AccessStats> {
    let n = dag.len();
    let deps_left: Vec<usize> = (0..n).map(|i| dag.dependencies(i).len()).collect();
    let ready: VecDeque<Job> = (0..n)
        .filter(|&i| deps_left[i] == 0)
        .map(Job::Pipeline)
        .collect();
    let shards: Vec<Option<u32>> = dag.pipelines().iter().map(|p| p.shard).collect();
    let sched = Mutex::new(Sched {
        ready,
        deps_left,
        splits: Vec::new(),
        completed: 0,
        error: None,
        panic: None,
        stats: AccessStats::default(),
    });
    let work_available = Condvar::new();
    // One worker per pipeline is enough when nothing can split, but a splittable
    // pipeline fans out into more jobs than the DAG has nodes — give it the full
    // thread budget so its morsels actually run side by side.
    let splittable =
        morsel_rows != usize::MAX && dag.pipelines().iter().any(|p| p.morsel_source.is_some());
    let workers = if splittable { threads } else { threads.min(n) }.max(1);
    // The scheduler mutex is only ever held around plain bookkeeping, but a panicking
    // worker may still have poisoned it between our catch and the next lock — the
    // bookkeeping it guards is never left half-done, so waiting workers just take the
    // guard and proceed to the shutdown check.
    let lock_sched = || sched.lock().unwrap_or_else(PoisonError::into_inner);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // The pipeline and shard of this worker's previous job — its affinity.
                let mut last_pipeline: Option<usize> = None;
                let mut last_shard: Option<u32> = None;
                loop {
                    let job = {
                        let mut guard = lock_sched();
                        loop {
                            if guard.error.is_some()
                                || guard.panic.is_some()
                                || guard.completed == n
                            {
                                return;
                            }
                            if let Some(job) =
                                pick_ready(&mut guard.ready, &shards, last_pipeline, last_shard)
                            {
                                break job;
                            }
                            guard = work_available
                                .wait(guard)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    last_pipeline = Some(job_pipeline(&job));
                    last_shard = shards[job_pipeline(&job)];
                    // A freshly claimed pipeline may be splittable: cut it, enqueue
                    // the other morsels (waking one worker per extra job), and run
                    // the first morsel in this claim's place.
                    let job = match job {
                        Job::Pipeline(p) => match try_split(plan, dag, p, mats, morsel_rows) {
                            Some(work) => {
                                let work = Arc::new(work);
                                let morsels = work.ranges.len();
                                let split = {
                                    let mut guard = lock_sched();
                                    let split = guard.splits.len();
                                    guard.splits.push(SplitState::new(morsels));
                                    for index in 1..morsels {
                                        guard.ready.push_back(Job::Morsel {
                                            work: Arc::clone(&work),
                                            split,
                                            index,
                                        });
                                    }
                                    split
                                };
                                for _ in 1..morsels {
                                    work_available.notify_one();
                                }
                                Job::Morsel {
                                    work,
                                    split,
                                    index: 0,
                                }
                            }
                            None => Job::Pipeline(p),
                        },
                        morsel => morsel,
                    };
                    let outcome = execute_job(plan, dag, store, ledger, mats, pool_cap, None, &job);
                    let mut guard = lock_sched();
                    let mut newly_ready = 0usize;
                    let mut finalized_split = false;
                    match outcome {
                        Ok((Ok(output), stats)) => {
                            guard.stats.merge_concurrent(stats);
                            match (&job, output) {
                                (Job::Pipeline(p), _) => {
                                    guard.completed += 1;
                                    newly_ready += unlock_dependents(&mut guard, dag, *p);
                                }
                                (Job::Morsel { work, split, index }, Some((batches, rows))) => {
                                    let state = &mut guard.splits[*split];
                                    state.results[*index] = Some(batches);
                                    state.rows += rows;
                                    state.remaining -= 1;
                                    if state.remaining == 0 {
                                        let mut state = std::mem::replace(
                                            &mut guard.splits[*split],
                                            SplitState {
                                                results: Vec::new(),
                                                rows: 0,
                                                remaining: 0,
                                            },
                                        );
                                        finalize_split(
                                            plan,
                                            &mut state,
                                            work,
                                            dag.pipelines()[work.pipeline].sink,
                                            mats,
                                            ledger,
                                        );
                                        guard.completed += 1;
                                        newly_ready +=
                                            unlock_dependents(&mut guard, dag, work.pipeline);
                                        finalized_split = true;
                                    }
                                }
                                _ => unreachable!("job kinds and outputs always pair up"),
                            }
                        }
                        Ok((Err(error), _)) => {
                            // First failure wins; in-flight jobs finish, waiting
                            // workers exit.
                            guard.error.get_or_insert(error);
                        }
                        Err(payload) => {
                            // First panic wins, same shutdown protocol as an error;
                            // the caller re-raises the original payload.
                            guard.panic.get_or_insert(payload);
                        }
                    }
                    let shutdown =
                        guard.error.is_some() || guard.panic.is_some() || guard.completed == n;
                    drop(guard);
                    if shutdown {
                        // Every waiter must wake to observe the shutdown and exit.
                        work_available.notify_all();
                    } else {
                        // Counted wakeups: this worker loops around and claims one of
                        // the newly-ready jobs itself; wake one waiter per extra job.
                        // When this completion finalized a split, this worker still
                        // has to drop the last handle on the split's shared caches —
                        // for a large key set that teardown is six figures of small
                        // frees — so wake one extra waiter and let the dependent
                        // pipeline start elsewhere while the teardown runs here.
                        let wakeups = if finalized_split {
                            newly_ready
                        } else {
                            newly_ready.saturating_sub(1)
                        };
                        for _ in 0..wakeups {
                            work_available.notify_one();
                        }
                    }
                }
            });
        }
    });

    let sched = sched.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(payload) = sched.panic {
        resume_unwind(payload);
    }
    match sched.error {
        Some(error) => Err(error),
        None => Ok(sched.stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_panic_propagates_cleanly_instead_of_deadlocking() {
        use crate::ops::{execute_inner, PANIC_RELATION};
        use bea_core::access::{AccessConstraint, AccessSchema};
        use bea_core::plan::{lower_plan_with, LowerOptions, PlanBuilder};
        use bea_core::value::Value;
        use bea_storage::{Database, IndexedDatabase};

        let mut c = bea_core::schema::Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        c.declare(PANIC_RELATION, ["a", "b"]).unwrap();
        let schema = AccessSchema::from_constraints([
            AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap(),
            AccessConstraint::new(&c, PANIC_RELATION, &["a"], &["b"], 10).unwrap(),
        ]);
        let mut db = Database::new(c);
        db.extend("R", [vec![Value::int(1), Value::int(10)]])
            .unwrap();
        db.extend(PANIC_RELATION, [vec![Value::int(1), Value::int(10)]])
            .unwrap();
        let idb = IndexedDatabase::build(db, schema).unwrap();

        // Two independent branches, so several workers are live at once: a healthy
        // fetch of R, and a fetch of the injection relation whose operator panics on
        // its first pull.
        let mut b = PlanBuilder::new();
        let k1 = b.constant(Value::int(1), "k");
        let healthy = b.fetch(
            k1,
            vec![0],
            "R",
            vec![0],
            vec![1],
            0,
            vec!["a".into(), "b".into()],
        );
        let k2 = b.constant(Value::int(1), "k");
        let panicking = b.fetch(
            k2,
            vec![0],
            PANIC_RELATION,
            vec![0],
            vec![1],
            1,
            vec!["a".into(), "b".into()],
        );
        let out = b.union(healthy, panicking);
        let plan = b.finish("Q", out).unwrap();
        let phys =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        assert!(phys.pipeline_dag().len() >= 3);

        // Before the fix this deadlocked: the panicking worker died without a
        // wakeup, stranding the other workers in the condvar wait, and any
        // `MatNode` lock it poisoned resurfaced as an unrelated "materialization
        // lock" panic on whichever worker touched it next. Now the original payload
        // must reach the caller.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_inner(
                &phys,
                bea_storage::Store::Indexed(&idb),
                4,
                crate::exec::DEFAULT_MORSEL_ROWS,
            )
        }));
        let payload = outcome.expect_err("the injected panic must propagate to the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("injected operator panic"),
            "expected the original panic payload, got: {message:?}"
        );
    }

    /// A morsel job for pipeline `pipeline` with trivial (empty) work, for queue
    /// tests that only exercise [`pick_ready`]'s ordering.
    fn morsel_job(pipeline: usize, index: usize) -> Job {
        Job::Morsel {
            work: Arc::new(MorselWork {
                pipeline,
                source: 0,
                batches: Arc::new(Vec::new()),
                ranges: vec![(0, 1), (1, 2)],
                caches: Arc::new(BTreeMap::new()),
            }),
            split: 0,
            index,
        }
    }

    #[test]
    fn pick_ready_prefers_the_affine_shard() {
        let shards = [Some(0), Some(1), Some(1), None];
        let mut ready: VecDeque<Job> = [0, 1, 2, 3].into_iter().map(Job::Pipeline).collect();
        let pick = |ready: &mut VecDeque<Job>, shard: Option<u32>| {
            pick_ready(ready, &shards, None, shard).map(|job| job_pipeline(&job))
        };
        // A worker fresh off shard 1 jumps the queue to pipeline 1.
        assert_eq!(pick(&mut ready, Some(1)), Some(1));
        // Same worker again: the other shard-1 pipeline.
        assert_eq!(pick(&mut ready, Some(1)), Some(2));
        // No shard-1 work left: fall back to the queue front.
        assert_eq!(pick(&mut ready, Some(1)), Some(0));
        // No affinity at all: plain FIFO.
        assert_eq!(pick(&mut ready, None), Some(3));
        assert_eq!(pick(&mut ready, None), None);
    }

    #[test]
    fn pick_ready_ignores_untagged_pipelines_for_affinity() {
        let shards = [None, Some(2)];
        let mut ready: VecDeque<Job> = [0, 1].into_iter().map(Job::Pipeline).collect();
        // Affinity to shard 7 matches nothing; the front (untagged) pipeline runs.
        assert_eq!(
            pick_ready(&mut ready, &shards, None, Some(7)).map(|j| job_pipeline(&j)),
            Some(0)
        );
        assert_eq!(
            pick_ready(&mut ready, &shards, None, Some(2)).map(|j| job_pipeline(&j)),
            Some(1)
        );
    }

    #[test]
    fn morsel_stealing_respects_shard_affinity_before_cross_shard() {
        // Pipelines 0 and 1 are shard-0 and shard-1 branches, both split into
        // morsels; pipeline 2 is untagged.
        let shards = [Some(0), Some(1), None];
        let mut ready: VecDeque<Job> = VecDeque::new();
        ready.push_back(morsel_job(0, 0));
        ready.push_back(morsel_job(1, 0));
        ready.push_back(morsel_job(1, 1));
        ready.push_back(Job::Pipeline(2));

        // A worker fresh off pipeline 1 (shard 1) keeps eating its own split's
        // morsels first, even though a shard-0 morsel sits at the queue front.
        let job = pick_ready(&mut ready, &shards, Some(1), Some(1)).unwrap();
        assert!(matches!(&job, Job::Morsel { work, index: 0, .. } if work.pipeline == 1));
        let job = pick_ready(&mut ready, &shards, Some(1), Some(1)).unwrap();
        assert!(matches!(&job, Job::Morsel { work, index: 1, .. } if work.pipeline == 1));
        // Its split exhausted, and no other shard-1 job exists: only now does it
        // steal the cross-shard morsel at the front.
        let job = pick_ready(&mut ready, &shards, Some(1), Some(1)).unwrap();
        assert!(matches!(&job, Job::Morsel { work, .. } if work.pipeline == 0));
        // A worker with shard-1 affinity but no matching jobs takes the front.
        let job = pick_ready(&mut ready, &shards, None, Some(1)).unwrap();
        assert_eq!(job_pipeline(&job), 2);
    }

    #[test]
    fn no_worker_is_stranded_by_counted_wakeups() {
        // A fan-out of independent branches plus a dependent output pipeline, run
        // with more workers than initially-ready jobs, over and over: if a
        // completion ever under-notified, a worker would sleep forever with ready
        // jobs in the queue and this test would hang rather than fail.
        use crate::ops::execute_inner;
        use bea_core::access::{AccessConstraint, AccessSchema};
        use bea_core::plan::{lower_plan_with, LowerOptions, PlanBuilder, Predicate};
        use bea_core::value::Value;
        use bea_storage::{Database, IndexedDatabase};

        let mut c = bea_core::schema::Catalog::new();
        c.declare("R", ["a", "b"]).unwrap();
        let schema =
            AccessSchema::from_constraints([
                AccessConstraint::new(&c, "R", &["a"], &["b"], 10).unwrap()
            ]);
        let mut db = Database::new(c);
        db.extend(
            "R",
            (1..=4).map(|k| vec![Value::int(k), Value::int(10 * k)]),
        )
        .unwrap();
        let idb = IndexedDatabase::build(db, schema).unwrap();

        let mut b = PlanBuilder::new();
        let mut acc = None;
        for key in 1..=4 {
            let k = b.constant(Value::int(key), "k");
            let f = b.fetch(
                k,
                vec![0],
                "R",
                vec![0],
                vec![1],
                0,
                vec!["a".into(), "b".into()],
            );
            let p = b.product(k, f);
            let s = b.select(p, vec![Predicate::ColEqCol(0, 1)]);
            acc = Some(match acc {
                None => s,
                Some(prev) => b.union(prev, s),
            });
        }
        let plan = b.finish("Q", acc.unwrap()).unwrap();
        let phys =
            lower_plan_with(&plan, &LowerOptions::new().with_exchange_parallelism(true)).unwrap();
        assert!(phys.pipeline_dag().len() >= 5);

        let mut baseline = None;
        for _ in 0..25 {
            let (table, stats, ledger) = execute_inner(
                &phys,
                bea_storage::Store::Indexed(&idb),
                8,
                crate::exec::DEFAULT_MORSEL_ROWS,
            )
            .unwrap();
            assert_eq!(ledger.resident(), 0);
            let fingerprint = (table.rows().to_vec(), stats.tuples_fetched);
            match &baseline {
                None => baseline = Some(fingerprint),
                Some(expected) => assert_eq!(&fingerprint, expected),
            }
        }
    }
}
